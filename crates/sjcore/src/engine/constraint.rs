//! The constraint-negotiation planner (ROADMAP item 1).
//!
//! The legacy §5.2 search saturates *every* catalog dataset before it
//! can pick a seed — O(catalog) per query, which goes blind on the
//! thousands-of-datasets catalogs a sharded fleet accumulates. This
//! module re-poses planning in the style of the Atreides worst-case-
//! optimal join family: every catalog dataset and every registered
//! derivation rule becomes a [`Constraint`] over *semantic variables*
//! (the queried domain dimensions and the transitively-needed value
//! dimensions), exposing four operations:
//!
//! - [`Constraint::estimate`] — an upper bound on how many suppliers
//!   this constraint can contribute for a variable (weighted by row
//!   statistics when [`crate::catalog::Catalog::analyze`] has run);
//! - [`Constraint::propose`] — enumerate the candidate datasets it can
//!   supply for a variable;
//! - [`Constraint::confirm`] — check a proposed dataset actually covers
//!   the variable (against the lazily *saturated* schema for value
//!   variables; raw schemas suffice for domain variables, since neither
//!   combinations nor rules ever invent a domain dimension);
//! - [`Constraint::influence`] — report which sibling variables' cached
//!   estimates a binding for this variable invalidates.
//!
//! Negotiation is a guided depth-first pass that binds the cheapest
//! (most selective) variable first, using per-variable cached estimates
//! that are only recomputed after an `influence` invalidation. Because
//! proposals come from inverted dimension indexes built once per engine
//! ([`CatalogIndex`]), the planner only ever *saturates* datasets
//! reachable from the query's dimensions — far fewer than the catalog
//! on realistic workloads — and each variable's confirmed supplier set
//! doubles as the planner's coverage universe.
//!
//! Unlike Atreides proper, this is a *covering* problem, not a join:
//! a variable is satisfiable by **any** constraint that supplies it, so
//! proposals union, confirmation is existential, and a variable's
//! estimate is the **sum** (not minimum) of its constraints' bounds —
//! the count of distinct suppliers remaining. Combinable-pair choices
//! are resolved by the fold itself, whose memoized `combine_pair` tests
//! act as confirmation for pair variables.
//!
//! **Parity guarantee.** Plan *construction* from the confirmed
//! supplier sets reuses the legacy ordering machinery — greedy cover
//! restricted to the covering universe, the same widening key, the same
//! fold — and the restriction provably preserves every legacy choice:
//! any candidate the legacy argmax could pick covers at least one
//! target, hence appears in the restricted universe in the same
//! relative order. Both planners therefore emit byte-identical plans on
//! any catalog where the legacy search succeeds (asserted corpus-wide
//! by `tests/planner_parity.rs`); statistics sharpen *estimates* only
//! and never reorder construction.

use super::plan::Plan;
use super::search::{addition_order, greedy_cover, Cand, QueryEngine};
use super::Query;
use crate::catalog::Catalog;
use crate::error::{Result, SjError};
use crate::schema::Schema;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Inverted dimension indexes over a catalog's raw schemas, built once
/// per engine and shared by every query ([`QueryEngine`] holds one in a
/// `OnceLock`). Dataset indices follow catalog name order, matching the
/// legacy planner's candidate numbering.
pub struct CatalogIndex {
    pub(super) names: Vec<String>,
    /// domain dimension -> dataset indices carrying it (ascending).
    domain: HashMap<String, Vec<usize>>,
    /// value dimension -> dataset indices recording it (ascending).
    value: HashMap<String, Vec<usize>>,
}

impl CatalogIndex {
    /// One pass over raw schemas — no saturation, no data access.
    pub(super) fn build(catalog: &Catalog) -> Self {
        let mut names = Vec::new();
        let mut domain: HashMap<String, Vec<usize>> = HashMap::new();
        let mut value: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, (name, ds)) in catalog.datasets().enumerate() {
            names.push(name.to_string());
            for f in ds.schema().domain_fields() {
                let slot = domain.entry(f.semantics.dimension.clone()).or_default();
                if slot.last() != Some(&i) {
                    slot.push(i);
                }
            }
            for f in ds.schema().value_fields() {
                let slot = value.entry(f.semantics.dimension.clone()).or_default();
                if slot.last() != Some(&i) {
                    slot.push(i);
                }
            }
        }
        CatalogIndex {
            names,
            domain,
            value,
        }
    }

    /// Number of datasets indexed.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog had no datasets.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn domain_sets(&self, dim: &str) -> &[usize] {
        self.domain.get(dim).map(Vec::as_slice).unwrap_or(&[])
    }

    fn value_sets(&self, dim: &str) -> &[usize] {
        self.value.get(dim).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A semantic variable the planner must bind: a queried domain
/// dimension, or a value dimension in the query's transitive needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Variable {
    /// A domain dimension the result must be defined over.
    Domain(String),
    /// A value dimension the result (transitively) needs.
    Value(String),
}

/// Per-query planning context shared by every constraint: the engine,
/// the catalog index, the needed-dimension closure, and a lazy cache of
/// saturated candidates. Datasets outside `support` (those recording no
/// value dimension in any rule chain's transitive needs) saturate to
/// themselves, so the expensive rule-fixpoint only runs on datasets
/// that can actually gain columns.
pub struct PlanCtx<'a, 'c> {
    engine: &'a QueryEngine<'c>,
    index: &'a CatalogIndex,
    vars: Vec<Variable>,
    needed: BTreeSet<String>,
    support: BTreeSet<usize>,
    sat: RefCell<HashMap<usize, Cand>>,
}

impl<'a, 'c> PlanCtx<'a, 'c> {
    /// The variable at a given id.
    pub fn variable(&self, var: usize) -> &Variable {
        &self.vars[var]
    }

    /// The dataset name at a given index.
    pub fn dataset_name(&self, i: usize) -> &str {
        &self.index.names[i]
    }

    /// Estimated per-dataset scan cost: measured row count when the
    /// catalog was analyzed, else a uniform 1. The uniform default
    /// keeps routers (which plan against zero-row schema stubs) and
    /// workers producing identical estimates.
    pub fn cost(&self, i: usize) -> u64 {
        self.engine
            .catalog()
            .stats(&self.index.names[i])
            .map(|s| s.rows.max(1))
            .unwrap_or(1)
    }

    /// Estimated cost of binding `var` with dataset `i`. Defaults to the
    /// row-count [`cost`](PlanCtx::cost); when the engine's
    /// `use_domain_cardinality` flag is on and [`Catalog::analyze`]
    /// measured a distinct count for the variable's domain dimension,
    /// that cardinality is used instead — a dataset with a handful of
    /// distinct nodes is a cheaper binding anchor than its raw row count
    /// suggests. Estimates only order variable binding; they never change
    /// which plan is constructed (see `tests/planner_cardinality.rs`).
    pub fn binding_cost(&self, i: usize, var: usize) -> u64 {
        if self.engine.config().use_domain_cardinality {
            if let Variable::Domain(d) = &self.vars[var] {
                if let Some(card) = self
                    .engine
                    .catalog()
                    .stats(&self.index.names[i])
                    .and_then(|s| s.domain_cardinality.get(d))
                {
                    self.engine.bump_stats(|s| s.cardinality_estimates += 1);
                    return (*card).max(1);
                }
            }
        }
        self.cost(i)
    }

    /// The dataset's schema after rule saturation (lazily computed).
    pub fn saturated_schema(&self, i: usize) -> Schema {
        self.sat(i).schema
    }

    fn sat(&self, i: usize) -> Cand {
        if let Some(c) = self.sat.borrow().get(&i) {
            return c.clone();
        }
        let name = &self.index.names[i];
        let ds = self
            .engine
            .catalog()
            .dataset(name)
            .expect("indexed dataset exists");
        let mut cand = Cand {
            plan: Plan::load(name),
            schema: ds.schema().clone(),
        };
        if self.support.contains(&i) {
            cand = self.engine.saturate(cand, &self.needed);
        }
        self.engine.bump_stats(|s| s.datasets_considered += 1);
        self.sat.borrow_mut().insert(i, cand.clone());
        cand
    }
}

/// One constraint in the negotiation: something that can supply
/// datasets for semantic variables. See the module docs for the
/// covering (rather than joining) semantics of the four operations.
pub trait Constraint {
    /// Diagnostic name.
    fn describe(&self) -> String;
    /// Whether this constraint can ever supply `var` (structural, no
    /// context needed — used to build the variable -> constraint map).
    fn touches(&self, var: usize) -> bool;
    /// Upper bound on the suppliers this constraint can contribute for
    /// `var` (0 when it does not touch the variable).
    fn estimate(&self, var: usize, ctx: &PlanCtx) -> u64;
    /// Enumerate candidate dataset indices for `var`.
    fn propose(&self, var: usize, ctx: &PlanCtx, out: &mut BTreeSet<usize>);
    /// Whether `candidate` actually covers `var`.
    fn confirm(&self, var: usize, candidate: usize, ctx: &PlanCtx) -> bool;
    /// Sibling variables whose cached estimates a binding of `var`
    /// through this constraint invalidates.
    fn influence(&self, var: usize) -> Vec<usize>;
}

/// A catalog dataset as a constraint: it can supply itself for every
/// variable its raw schema covers.
pub struct DatasetConstraint {
    dataset: usize,
    /// Variable ids this dataset's raw schema covers.
    covers: Vec<usize>,
}

impl Constraint for DatasetConstraint {
    fn describe(&self) -> String {
        format!("dataset#{}", self.dataset)
    }

    fn touches(&self, var: usize) -> bool {
        self.covers.contains(&var)
    }

    fn estimate(&self, var: usize, ctx: &PlanCtx) -> u64 {
        if self.covers.contains(&var) {
            ctx.binding_cost(self.dataset, var)
        } else {
            0
        }
    }

    fn propose(&self, var: usize, _ctx: &PlanCtx, out: &mut BTreeSet<usize>) {
        if self.covers.contains(&var) {
            out.insert(self.dataset);
        }
    }

    fn confirm(&self, var: usize, candidate: usize, ctx: &PlanCtx) -> bool {
        match ctx.variable(var) {
            // Nothing ever adds a domain dimension, so the raw index is
            // exact for domain variables — no saturation needed.
            Variable::Domain(d) => ctx.index.domain_sets(d).binary_search(&candidate).is_ok(),
            Variable::Value(d) => ctx.sat(candidate).schema.value_field_on(d).is_some(),
        }
    }

    fn influence(&self, var: usize) -> Vec<usize> {
        self.covers.iter().copied().filter(|&v| v != var).collect()
    }
}

/// A registered derivation rule as a constraint: for the value
/// dimensions it yields, it proposes the datasets recording any value
/// dimension in its transitive needs (the only datasets on which
/// saturation can manufacture the yield).
pub struct RuleConstraint {
    name: String,
    /// Variable ids (value variables) this rule can produce.
    serves: Vec<usize>,
    /// Dataset indices recording some dimension in the rule's
    /// transitive needs closure.
    hosts: Vec<usize>,
}

impl Constraint for RuleConstraint {
    fn describe(&self) -> String {
        format!("rule:{}", self.name)
    }

    fn touches(&self, var: usize) -> bool {
        self.serves.contains(&var)
    }

    fn estimate(&self, var: usize, ctx: &PlanCtx) -> u64 {
        if self.serves.contains(&var) {
            self.hosts.iter().map(|&i| ctx.cost(i)).sum()
        } else {
            0
        }
    }

    fn propose(&self, var: usize, _ctx: &PlanCtx, out: &mut BTreeSet<usize>) {
        if self.serves.contains(&var) {
            out.extend(self.hosts.iter().copied());
        }
    }

    fn confirm(&self, var: usize, candidate: usize, ctx: &PlanCtx) -> bool {
        match ctx.variable(var) {
            Variable::Domain(_) => false,
            Variable::Value(d) => ctx.sat(candidate).schema.value_field_on(d).is_some(),
        }
    }

    fn influence(&self, var: usize) -> Vec<usize> {
        self.serves.iter().copied().filter(|&v| v != var).collect()
    }
}

/// Guided depth-first negotiation: repeatedly bind the unbound variable
/// with the lowest cached estimate (ties broken by variable id),
/// confirming each union-of-proposals candidate, then invalidate the
/// estimates `influence` reports. Returns each variable's confirmed
/// supplier set.
fn negotiate(
    ctx: &PlanCtx,
    constraints: &[Box<dyn Constraint + '_>],
    touching: &[Vec<usize>],
) -> Vec<BTreeSet<usize>> {
    let nv = ctx.vars.len();
    let mut confirmed: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nv];
    let mut est: Vec<Option<u64>> = vec![None; nv];
    let mut ever_estimated = vec![false; nv];
    let mut unbound: BTreeSet<usize> = (0..nv).collect();
    while !unbound.is_empty() {
        let mut refreshes = 0u64;
        for &v in &unbound {
            if est[v].is_none() {
                let e: u64 = touching[v]
                    .iter()
                    .map(|&c| constraints[c].estimate(v, ctx))
                    .sum();
                if ever_estimated[v] {
                    refreshes += 1;
                }
                est[v] = Some(e);
                ever_estimated[v] = true;
            }
        }
        if refreshes > 0 {
            ctx.engine.bump_stats(|s| s.estimate_refreshes += refreshes);
        }
        let v = unbound
            .iter()
            .copied()
            .min_by_key(|&v| (est[v].unwrap_or(u64::MAX), v))
            .expect("unbound is non-empty");
        unbound.remove(&v);
        let mut proposals = BTreeSet::new();
        for &c in &touching[v] {
            constraints[c].propose(v, ctx, &mut proposals);
        }
        let ok: BTreeSet<usize> = proposals
            .into_iter()
            .filter(|&cand| {
                touching[v]
                    .iter()
                    .any(|&c| constraints[c].confirm(v, cand, ctx))
            })
            .collect();
        if !ok.is_empty() {
            ctx.engine.bump_stats(|s| s.vars_bound += 1);
            for &c in &touching[v] {
                for w in constraints[c].influence(v) {
                    if unbound.contains(&w) {
                        est[w] = None;
                    }
                }
            }
        }
        confirmed[v] = ok;
    }
    confirmed
}

/// Feasibility screen equivalent to the legacy raw-schema scan, but
/// answered from the index (same error messages, O(query) lookups).
fn check_feasibility(index: &CatalogIndex, catalog: &Catalog, query: &Query) -> Result<()> {
    if index.is_empty() {
        return Err(SjError::NoSolution("catalog is empty".into()));
    }
    for d in &query.domains {
        if index.domain_sets(d).is_empty() {
            return Err(SjError::NoSolution(format!(
                "domain dimension `{d}` exists in no dataset \
                 (combinations cannot infer new domain dimensions)"
            )));
        }
    }
    for v in &query.values {
        let present = !index.value_sets(&v.dimension).is_empty();
        let derivable = catalog
            .rules()
            .iter()
            .any(|r| r.yields.contains(&v.dimension));
        if !present && !derivable {
            return Err(SjError::NoSolution(format!(
                "value dimension `{}` is neither recorded nor derivable",
                v.dimension
            )));
        }
    }
    Ok(())
}

/// Transitive needs closure of one rule: its direct needs plus the
/// needs of every rule that can yield one of them (cycle-safe — rules
/// whose yields equal their needs, like counter rates, fixpoint).
fn rule_needs_closure(catalog: &Catalog, rule_idx: usize) -> BTreeSet<String> {
    let mut needs: BTreeSet<String> = catalog.rules()[rule_idx].needs.iter().cloned().collect();
    loop {
        let before = needs.len();
        for r in catalog.rules() {
            if r.yields.iter().any(|y| needs.contains(y)) {
                needs.extend(r.needs.iter().cloned());
            }
        }
        if needs.len() == before {
            break;
        }
    }
    needs
}

/// Solve a (canonical) query with the constraint planner.
pub(super) fn solve(engine: &QueryEngine<'_>, query: &Query) -> Result<Plan> {
    let catalog = engine.catalog();
    let dict = catalog.dict();
    let index = engine.index.get_or_init(|| CatalogIndex::build(catalog));
    check_feasibility(index, catalog, query)?;
    let needed = engine.needed_closure(query);

    // --- Variables: queried domains, then the needed value closure. ---
    let mut vars: Vec<Variable> = Vec::new();
    for d in &query.domains {
        vars.push(Variable::Domain(d.clone()));
    }
    let value_var_base = vars.len();
    let needed_sorted: Vec<&String> = needed.iter().collect();
    for dim in &needed_sorted {
        vars.push(Variable::Value((*dim).clone()));
    }
    let value_var_of = |dim: &str| -> Option<usize> {
        needed_sorted
            .iter()
            .position(|d| d.as_str() == dim)
            .map(|p| value_var_base + p)
    };

    // --- Constraints: relevant datasets + rules yielding needed dims. ---
    let mut constraints: Vec<Box<dyn Constraint + '_>> = Vec::new();
    let mut relevant: BTreeSet<usize> = BTreeSet::new();
    for d in &query.domains {
        relevant.extend(index.domain_sets(d).iter().copied());
    }
    for dim in &needed {
        relevant.extend(index.value_sets(dim).iter().copied());
    }
    let mut support: BTreeSet<usize> = needed
        .iter()
        .flat_map(|dim| index.value_sets(dim).iter().copied())
        .collect();
    for (ri, rule) in catalog.rules().iter().enumerate() {
        let serves: Vec<usize> = rule.yields.iter().filter_map(|y| value_var_of(y)).collect();
        if serves.is_empty() {
            continue;
        }
        let hosts: Vec<usize> = rule_needs_closure(catalog, ri)
            .iter()
            .flat_map(|dim| index.value_sets(dim).iter().copied())
            .collect::<BTreeSet<usize>>()
            .into_iter()
            .collect();
        relevant.extend(hosts.iter().copied());
        support.extend(hosts.iter().copied());
        constraints.push(Box::new(RuleConstraint {
            name: rule.name.clone(),
            serves,
            hosts,
        }));
    }
    for &i in &relevant {
        let covers: Vec<usize> = vars
            .iter()
            .enumerate()
            .filter(|(_, v)| match v {
                Variable::Domain(d) => index.domain_sets(d).binary_search(&i).is_ok(),
                Variable::Value(d) => index.value_sets(d).binary_search(&i).is_ok(),
            })
            .map(|(vi, _)| vi)
            .collect();
        if !covers.is_empty() {
            constraints.push(Box::new(DatasetConstraint { dataset: i, covers }));
        }
    }
    let touching: Vec<Vec<usize>> = (0..vars.len())
        .map(|v| {
            (0..constraints.len())
                .filter(|&c| constraints[c].touches(v))
                .collect()
        })
        .collect();

    let ctx = PlanCtx {
        engine,
        index,
        vars,
        needed: needed.clone(),
        support,
        sat: RefCell::new(HashMap::new()),
    };

    // --- Guided negotiation: bind cheapest variable first. ---
    let confirmed = negotiate(&ctx, &constraints, &touching);

    // --- Single-candidate shortcut (legacy-identical ascending scan,
    //     restricted to the intersection of the query's supplier sets,
    //     which contains every possibly-satisfying dataset). ---
    let mut base: Option<BTreeSet<usize>> = None;
    let intersect = |base: &mut Option<BTreeSet<usize>>, set: BTreeSet<usize>| {
        *base = Some(match base.take() {
            None => set,
            Some(b) => b.intersection(&set).copied().collect(),
        });
    };
    for d in &query.domains {
        intersect(&mut base, index.domain_sets(d).iter().copied().collect());
    }
    for v in &query.values {
        if let Some(vi) = value_var_of(&v.dimension) {
            intersect(&mut base, confirmed[vi].clone());
        }
    }
    let shortlist: Vec<usize> = match base {
        Some(b) => b.into_iter().collect(),
        None => (0..index.len()).collect(),
    };
    for i in shortlist {
        let c = ctx.sat(i);
        if query.satisfied_by(&c.schema, dict) {
            return Ok(engine.finalize(c, query));
        }
    }

    // --- Coverage targets and seed, legacy-identical but restricted to
    //     the confirmed supplier universe. ---
    let mut targets: Vec<(String, bool)> =
        query.domains.iter().map(|d| (d.clone(), true)).collect();
    for (pos, dim) in needed_sorted.iter().enumerate() {
        if !confirmed[value_var_base + pos].is_empty() {
            targets.push(((*dim).clone(), false));
        }
    }
    let universe: Vec<usize> = confirmed
        .iter()
        .flat_map(|s| s.iter().copied())
        .collect::<BTreeSet<usize>>()
        .into_iter()
        .collect();
    let schema_of = |i: usize| ctx.sat(i).schema;
    let seed = greedy_cover(&schema_of, &targets, &universe);

    // --- Widening universe, ring by ring. Ring 1: datasets sharing a
    //     domain dimension with the seed, under the legacy widening key
    //     (shared count desc, index asc). Ring 2 (built only if ring 1
    //     exhausts): everything else in index order — identical to the
    //     tail of the legacy addition order. ---
    let mut seed_dims: BTreeSet<String> = BTreeSet::new();
    for &i in &seed {
        seed_dims.extend(
            ctx.sat(i)
                .schema
                .domain_dimensions()
                .into_iter()
                .map(String::from),
        );
    }
    let ring1_raw: BTreeSet<usize> = seed_dims
        .iter()
        .flat_map(|d| index.domain_sets(d).iter().copied())
        .filter(|i| !seed.contains(i))
        .collect();
    let ring1: Vec<usize> = {
        let members: Vec<usize> = ring1_raw.iter().copied().collect();
        addition_order(&schema_of, &seed, &members)
            .into_iter()
            .filter(|&i| {
                // Demote raw matches whose saturated schema lost the
                // shared dimension to ring 2 (index order there).
                ctx.sat(i)
                    .schema
                    .domain_dimensions()
                    .iter()
                    .any(|d| seed_dims.contains(*d))
            })
            .collect()
    };

    let mut order = ring1;
    let mut ring2_built = false;
    let mut truncated = false;
    for anchored_only in [true, false] {
        if !anchored_only && !engine.config().allow_unanchored {
            break;
        }
        let mut df: Vec<usize> = seed.clone();
        loop {
            if let Some(result) = combine_set(engine, &ctx, &df, anchored_only) {
                if query.satisfied_by(&result.schema, dict) {
                    return Ok(engine.finalize(result, query));
                }
            }
            let mut next = order.iter().copied().find(|i| !df.contains(i));
            if next.is_none() && !ring2_built {
                let present: BTreeSet<usize> = order.iter().chain(seed.iter()).copied().collect();
                order.extend((0..index.len()).filter(|i| !present.contains(i)));
                ring2_built = true;
                next = order.iter().copied().find(|i| !df.contains(i));
            }
            match next {
                Some(next) if df.len() < engine.config().max_datasets => df.push(next),
                Some(_) => {
                    truncated = true;
                    break;
                }
                None => break,
            }
        }
    }
    if truncated {
        Err(SjError::SearchTruncated {
            query: query.describe(),
            max_datasets: engine.config().max_datasets,
        })
    } else {
        Err(SjError::NoSolution(query.describe()))
    }
}

/// Fold a dataset set into one combined candidate — the legacy
/// `combine_set` greedy-partner loop over the lazy candidate store.
fn combine_set(
    engine: &QueryEngine<'_>,
    ctx: &PlanCtx,
    df: &[usize],
    anchored_only: bool,
) -> Option<Cand> {
    if df.is_empty() {
        return None;
    }
    let mut remaining: Vec<usize> = df.to_vec();
    let mut acc = ctx.sat(remaining.remove(0));
    while !remaining.is_empty() {
        let mut advanced = false;
        for pos in 0..remaining.len() {
            let idx = remaining[pos];
            if let Some(next) = engine.combine_pair(&acc, &ctx.sat(idx), anchored_only) {
                acc = engine.saturate(next, &ctx.needed);
                remaining.remove(pos);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return None;
        }
    }
    Some(acc)
}
