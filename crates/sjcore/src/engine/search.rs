//! The derivation search (§5.2, Algorithm 1).
//!
//! The engine formulates query satisfaction as a constraint-satisfaction
//! search over *data semantics only*: derivations are first applied to
//! schemas (constant-time per step), never to data, so the search runs at
//! interactive rates. The strategy follows the paper:
//!
//! 1. Find the smallest set `DF` of catalog datasets containing the
//!    queried domain dimensions (plus the datasets providing value
//!    dimensions the query needs, found by backward-chaining through the
//!    registered derivation rules). If a queried domain dimension exists
//!    nowhere, there is no solution — combinations never invent domain
//!    dimensions.
//! 2. Try to combine `DF` (`combine_set`, folding `combine_pair`); on
//!    failure add one more dataset at a time. Shorter sequences are
//!    preferred — interpolation and aggregation lose precision, so fewer
//!    derivations mean higher-precision results.
//! 3. `combine_pair` aligns two schemas (exploding compound domain
//!    columns) and picks the combination their semantics allow: a natural
//!    join when all shared domains are discrete, an interpolation join
//!    when exactly one shared domain is ordered and continuous.
//! 4. Results of `combine_pair`/`combine_set` are memoized on schema
//!    fingerprints; at each iteration `combine_set` receives a superset of
//!    its previous arguments, so most recursive calls hit the memo.
//!
//! Combinations are *anchored* when at least one shared domain is an
//! identifier (two measurements relate through a shared resource, not
//! merely a shared instant). The search prefers anchored combinations and
//! only falls back to time-only joins when no anchored path exists — this
//! is what pulls the node-layout dataset into the paper's Figure 5 plan.

use crate::catalog::Catalog;
use crate::derivations::combine::SharedDomains;
use crate::derivations::DerivationSpec;
use crate::engine::{Plan, Query};
use crate::error::{Result, SjError};
use crate::schema::Schema;
use crate::units::UnitKind;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};

/// Which planning strategy `solve()` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerKind {
    /// The original shortest-sequence backward-chaining search above
    /// (greedy cover seed + fixed widening order). Kept as the
    /// reference implementation for the parity harness and for
    /// ablation benchmarks.
    Legacy,
    /// The constraint-negotiation planner ([`crate::engine::constraint`]):
    /// a guided depth-first search that binds one semantic variable at
    /// a time under live cardinality estimates. Scales to catalogs with
    /// thousands of datasets because it only touches datasets reachable
    /// from the query's dimensions.
    #[default]
    Constraint,
}

/// Tuning knobs for the search and the plans it emits.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Step used when exploding time spans into instants (seconds).
    pub explode_step_secs: f64,
    /// Window `W` for interpolation joins (seconds).
    pub interp_window_secs: f64,
    /// Memoize `combine_pair`/`combine_set` results (§5.2). Disable only
    /// for ablation studies.
    pub memoize: bool,
    /// Allow combinations whose only shared domain is ordered/continuous
    /// (e.g. time-only joins) when no anchored plan exists.
    pub allow_unanchored: bool,
    /// Hard cap on candidate datasets considered in one query. When the
    /// cap stops a search that still had untried datasets, `solve()`
    /// returns [`SjError::SearchTruncated`] instead of
    /// [`SjError::NoSolution`].
    pub max_datasets: usize,
    /// The planning strategy. Both planners produce byte-identical
    /// results on any catalog where they select the same dataset sets
    /// (see the parity harness in `tests/planner_parity.rs`).
    pub planner: PlannerKind,
    /// Let the constraint planner's `DatasetConstraint::estimate` use the
    /// per-domain distinct counts measured by [`Catalog::analyze`]
    /// (`DatasetStats::domain_cardinality`) instead of raw row counts
    /// when estimating the cost of binding a *domain* variable.
    /// Statistics sharpen estimates only — binding order — and never
    /// change which plan is constructed, so flipping this flag leaves
    /// plans unchanged (see `tests/planner_cardinality.rs`).
    pub use_domain_cardinality: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            explode_step_secs: 60.0,
            interp_window_secs: 120.0,
            memoize: true,
            allow_unanchored: true,
            max_datasets: 32,
            planner: PlannerKind::default(),
            use_domain_cardinality: false,
        }
    }
}

/// Counters describing search effort, accumulated across every
/// `solve()` on the engine (all fields are cumulative).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `combine_pair` invocations that ran the full alignment logic.
    pub pair_tests: u64,
    /// `combine_pair` invocations answered from the memo (including
    /// mirrored hits: a `(right, left)` test answered from the
    /// `(left, right)` entry).
    pub memo_hits: u64,
    /// Derivation rules applied during saturation.
    pub rules_applied: u64,
    /// Candidate datasets considered (saturated and examined by a
    /// planner). The constraint planner only counts datasets reachable
    /// from the query, so this stays far below catalog size on large
    /// catalogs.
    pub datasets_considered: usize,
    /// Semantic variables bound by the constraint planner (0 under the
    /// legacy planner).
    pub vars_bound: u64,
    /// Per-variable cardinality estimates recomputed after `influence`
    /// invalidation (0 under the legacy planner).
    pub estimate_refreshes: u64,
    /// Estimates answered from measured domain cardinalities rather than
    /// row counts (0 unless `use_domain_cardinality` is on and stats are
    /// present).
    pub cardinality_estimates: u64,
}

/// One candidate in the search: a plan and the schema it would produce.
#[derive(Debug, Clone)]
pub(super) struct Cand {
    pub(super) plan: Plan,
    pub(super) schema: Schema,
}

/// Memoized outcome of a `combine_pair` test (schemas only — plans are
/// reattached by the caller). The post-alignment schemas are kept so a
/// mirrored lookup can re-derive the combined column order without
/// re-running the alignment logic.
#[derive(Debug, Clone)]
struct PairOutcome {
    left_steps: Vec<DerivationSpec>,
    right_steps: Vec<DerivationSpec>,
    combine: DerivationSpec,
    left_aligned: Schema,
    right_aligned: Schema,
    schema: Schema,
}

/// Memo slot under one canonical `(lo_fp, hi_fp, anchored)` key:
/// outcomes for both orientations of the pair. Combinability is
/// symmetric, so either orientation's result answers the other — only
/// the combined column order differs, which `flip_outcome` re-derives
/// from the stored aligned schemas.
#[derive(Debug, Clone, Default)]
struct PairEntry {
    /// Index 0: the `(lo, hi)` orientation; index 1: `(hi, lo)`.
    by_dir: [Option<Option<PairOutcome>>; 2],
}

/// The derivation engine: answers queries with reproducible plans.
pub struct QueryEngine<'c> {
    catalog: &'c Catalog,
    config: EngineConfig,
    pair_memo: Mutex<HashMap<(u64, u64, bool), PairEntry>>,
    stats: Mutex<EngineStats>,
    /// Inverted dimension indexes over the catalog's raw schemas, built
    /// once on the constraint planner's first solve and shared by every
    /// subsequent query (the catalog is borrowed immutably, so the
    /// index can never go stale).
    pub(super) index: std::sync::OnceLock<super::constraint::CatalogIndex>,
}

impl<'c> QueryEngine<'c> {
    /// Engine over a catalog with default configuration.
    pub fn new(catalog: &'c Catalog) -> Self {
        QueryEngine::with_config(catalog, EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(catalog: &'c Catalog, config: EngineConfig) -> Self {
        QueryEngine {
            catalog,
            config,
            pair_memo: Mutex::new(HashMap::new()),
            stats: Mutex::new(EngineStats::default()),
            index: std::sync::OnceLock::new(),
        }
    }

    /// Search effort counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        *self.stats.lock()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The catalog this engine plans against.
    pub(super) fn catalog(&self) -> &'c Catalog {
        self.catalog
    }

    /// Apply a mutation under the stats lock (one acquisition).
    pub(super) fn bump_stats(&self, f: impl FnOnce(&mut EngineStats)) {
        f(&mut self.stats.lock());
    }

    /// Find a derivation sequence satisfying `query`, or fail with
    /// [`SjError::NoSolution`] (provably unsatisfiable) or
    /// [`SjError::SearchTruncated`] (dataset budget hit first).
    pub fn solve(&self, query: &Query) -> Result<Plan> {
        let query = query.canonicalize(self.catalog.dict())?;
        match self.config.planner {
            PlannerKind::Legacy => self.solve_legacy(&query),
            PlannerKind::Constraint => super::constraint::solve(self, &query),
        }
    }

    /// Shared feasibility screen over *raw* schemas: queried domain
    /// dimensions must exist somewhere (combinations never invent domain
    /// dimensions — and no registered rule yields one either), and
    /// queried value dimensions must be recorded or claimed by a rule.
    pub(super) fn check_feasibility(&self, query: &Query) -> Result<()> {
        if self.catalog.datasets().next().is_none() {
            return Err(SjError::NoSolution("catalog is empty".into()));
        }
        for d in &query.domains {
            if !self
                .catalog
                .datasets()
                .any(|(_, ds)| ds.schema().domain_field_on(d).is_some())
            {
                return Err(SjError::NoSolution(format!(
                    "domain dimension `{d}` exists in no dataset \
                     (combinations cannot infer new domain dimensions)"
                )));
            }
        }
        for v in &query.values {
            let present = self
                .catalog
                .datasets()
                .any(|(_, ds)| ds.schema().value_field_on(&v.dimension).is_some());
            let derivable = self
                .catalog
                .rules()
                .iter()
                .any(|r| r.yields.contains(&v.dimension));
            if !present && !derivable {
                return Err(SjError::NoSolution(format!(
                    "value dimension `{}` is neither recorded nor derivable",
                    v.dimension
                )));
            }
        }
        Ok(())
    }

    /// The original §5.2 search: greedy cover seed + fixed widening
    /// order. `query` must already be canonical.
    fn solve_legacy(&self, query: &Query) -> Result<Plan> {
        let dict = self.catalog.dict();
        self.check_feasibility(query)?;

        // Backward-chain through the rules to find every value dimension
        // the query (transitively) needs.
        let needed = self.needed_closure(query);

        // Initial candidates: each dataset, saturated with the rules that
        // yield needed dimensions.
        let mut candidates: Vec<Cand> = Vec::new();
        for (name, ds) in self.catalog.datasets() {
            let cand = self.saturate(
                Cand {
                    plan: Plan::load(name),
                    schema: ds.schema().clone(),
                },
                &needed,
            );
            candidates.push(cand);
        }
        self.stats.lock().datasets_considered += candidates.len();

        // A single candidate may already satisfy the query.
        for c in &candidates {
            if query.satisfied_by(&c.schema, dict) {
                return Ok(self.finalize(c.clone(), query));
            }
        }

        // Algorithm 1: seed with the minimal cover, then grow.
        let targets = self.coverage_targets(query, &candidates);
        let all: Vec<usize> = (0..candidates.len()).collect();
        let schema_of = |i: usize| candidates[i].schema.clone();
        let seed = greedy_cover(&schema_of, &targets, &all);
        let order = addition_order(&schema_of, &seed, &all);

        let mut truncated = false;
        for anchored_only in [true, false] {
            if !anchored_only && !self.config.allow_unanchored {
                break;
            }
            let mut df: Vec<usize> = seed.clone();
            loop {
                if let Some(result) = self.combine_set(&candidates, &df, &needed, anchored_only) {
                    if query.satisfied_by(&result.schema, dict) {
                        return Ok(self.finalize(result, query));
                    }
                }
                // Add one more dataset (Algorithm 1's widening step).
                let next = order.iter().find(|i| !df.contains(i));
                match next {
                    Some(&next) if df.len() < self.config.max_datasets => df.push(next),
                    // Datasets remained untried: the budget, not the
                    // search space, ended this pass.
                    Some(_) => {
                        truncated = true;
                        break;
                    }
                    None => break,
                }
            }
        }
        if truncated {
            Err(SjError::SearchTruncated {
                query: query.describe(),
                max_datasets: self.config.max_datasets,
            })
        } else {
            Err(SjError::NoSolution(query.describe()))
        }
    }

    /// Value dimensions transitively required: the queried value dims plus
    /// the inputs of every rule that can produce a needed dim.
    pub(super) fn needed_closure(&self, query: &Query) -> BTreeSet<String> {
        let mut needed: BTreeSet<String> =
            query.values.iter().map(|v| v.dimension.clone()).collect();
        loop {
            let before = needed.len();
            for rule in self.catalog.rules() {
                if rule.yields.iter().any(|y| needed.contains(y)) {
                    needed.extend(rule.needs.iter().cloned());
                }
            }
            if needed.len() == before {
                break;
            }
        }
        needed
    }

    /// Dimensions the seed set must cover: queried domains plus needed
    /// value dimensions that exist as recorded values somewhere.
    pub(super) fn coverage_targets(
        &self,
        query: &Query,
        candidates: &[Cand],
    ) -> Vec<(String, bool)> {
        let mut targets: Vec<(String, bool)> =
            query.domains.iter().map(|d| (d.clone(), true)).collect();
        for dim in self.needed_closure(query) {
            if candidates
                .iter()
                .any(|c| c.schema.value_field_on(&dim).is_some())
            {
                targets.push((dim, false));
            }
        }
        targets
    }

    /// Fold a set of candidates into one combined candidate, greedily
    /// picking a combinable partner at each step (memoized pair tests).
    pub(super) fn combine_set(
        &self,
        candidates: &[Cand],
        df: &[usize],
        needed: &BTreeSet<String>,
        anchored_only: bool,
    ) -> Option<Cand> {
        if df.is_empty() {
            return None;
        }
        let mut remaining: Vec<usize> = df.to_vec();
        let mut acc = candidates[remaining.remove(0)].clone();
        while !remaining.is_empty() {
            let mut advanced = false;
            for pos in 0..remaining.len() {
                let idx = remaining[pos];
                if let Some(next) = self.combine_pair(&acc, &candidates[idx], anchored_only) {
                    acc = self.saturate(next, needed);
                    remaining.remove(pos);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return None;
            }
        }
        Some(acc)
    }

    /// Test whether two candidates can be combined (via a short sequence
    /// of alignment transformations and a single combination), and build
    /// the resulting candidate if so.
    ///
    /// Pair tests are memoized under a canonical `(lo_fp, hi_fp)` key
    /// with a direction bit, so a `(right, left)` test hits the entry a
    /// `(left, right)` test populated: combinability is symmetric, and a
    /// successful mirrored outcome only needs its combined column order
    /// re-derived from the stored aligned schemas.
    pub(super) fn combine_pair(
        &self,
        left: &Cand,
        right: &Cand,
        anchored_only: bool,
    ) -> Option<Cand> {
        let (lf, rf) = (left.schema.fingerprint(), right.schema.fingerprint());
        let dir = usize::from(lf > rf);
        let key = (lf.min(rf), lf.max(rf), anchored_only);
        let (outcome, memo_hit) = 'memo: {
            if self.config.memoize {
                let mut memo = self.pair_memo.lock();
                if let Some(entry) = memo.get_mut(&key) {
                    if let Some(hit) = entry.by_dir[dir].clone() {
                        break 'memo (hit, true);
                    }
                    if let Some(mirror) = entry.by_dir[1 - dir].clone() {
                        // The mirrored orientation was tested. Failure
                        // transfers as-is; success transfers by swapping
                        // sides and re-deriving only the combined schema.
                        let flipped = mirror.and_then(|o| self.flip_outcome(&o));
                        entry.by_dir[dir] = Some(flipped.clone());
                        break 'memo (flipped, true);
                    }
                }
                drop(memo);
            }
            let outcome = self.pair_outcome(&left.schema, &right.schema, anchored_only);
            if self.config.memoize {
                self.pair_memo.lock().entry(key).or_default().by_dir[dir] = Some(outcome.clone());
            }
            (outcome, false)
        };
        // Single stats-lock acquisition per pair test, hit or miss.
        let mut stats = self.stats.lock();
        if memo_hit {
            stats.memo_hits += 1;
        } else {
            stats.pair_tests += 1;
        }
        drop(stats);
        outcome.map(|o| attach_outcome(left, right, &o))
    }

    /// Reverse a memoized pair outcome: swap the per-side alignment
    /// steps and re-derive the combined schema with the sides exchanged
    /// (column order is the only asymmetry in a combination).
    fn flip_outcome(&self, o: &PairOutcome) -> Option<PairOutcome> {
        let schema = o
            .combine
            .as_combination()?
            .derive_schema(&o.right_aligned, &o.left_aligned, self.catalog.dict())
            .ok()?;
        Some(PairOutcome {
            left_steps: o.right_steps.clone(),
            right_steps: o.left_steps.clone(),
            combine: o.combine.clone(),
            left_aligned: o.right_aligned.clone(),
            right_aligned: o.left_aligned.clone(),
            schema,
        })
    }

    /// The semantics-only pair test: alignment steps + combination choice.
    fn pair_outcome(
        &self,
        left: &Schema,
        right: &Schema,
        anchored_only: bool,
    ) -> Option<PairOutcome> {
        let dict = self.catalog.dict();
        // Alignment: explode compound (list/span) columns on shared domain
        // dimensions so elements become comparable.
        let mut lschema = left.clone();
        let mut rschema = right.clone();
        let mut left_steps = Vec::new();
        let mut right_steps = Vec::new();
        let shared_dims = lschema.shared_domain_dimensions(&rschema);
        if shared_dims.is_empty() {
            return None;
        }
        for dim in &shared_dims {
            for (schema, steps) in [
                (&mut lschema, &mut left_steps),
                (&mut rschema, &mut right_steps),
            ] {
                while let Some(field) = schema.domain_field_on(dim) {
                    let units = dict.units(&field.semantics.units).ok()?;
                    let spec = match &units.kind {
                        UnitKind::ListOf { .. } => DerivationSpec::ExplodeDiscrete {
                            column: field.name.clone(),
                        },
                        UnitKind::TimeSpanKind => DerivationSpec::ExplodeContinuous {
                            column: field.name.clone(),
                            step_secs: self.config.explode_step_secs,
                        },
                        _ => break,
                    };
                    let t = spec.as_transformation()?;
                    *schema = t.derive_schema(schema, dict).ok()?;
                    steps.push(spec);
                }
            }
        }

        // Classify shared domains and choose the combination.
        let shared = SharedDomains::analyze(&lschema, &rschema, dict).ok()?;
        let anchored = !shared.exact.is_empty();
        if anchored_only && !anchored {
            return None;
        }
        let combine = match shared.continuous.len() {
            0 => DerivationSpec::NaturalJoin,
            1 => DerivationSpec::InterpolationJoin {
                window_secs: self.config.interp_window_secs,
            },
            _ => return None,
        };
        let schema = combine
            .as_combination()?
            .derive_schema(&lschema, &rschema, dict)
            .ok()?;
        Some(PairOutcome {
            left_steps,
            right_steps,
            combine,
            left_aligned: lschema,
            right_aligned: rschema,
            schema,
        })
    }

    /// Apply every registered rule that yields a needed dimension, to a
    /// fixpoint (this derives heat on the rack-temperature dataset and
    /// rates/active frequency on the counter datasets).
    pub(super) fn saturate(&self, mut cand: Cand, needed: &BTreeSet<String>) -> Cand {
        let dict = self.catalog.dict();
        for _ in 0..16 {
            let mut progressed = false;
            for rule in self.catalog.rules() {
                if !rule.yields.iter().any(|y| needed.contains(y)) {
                    continue;
                }
                if let Some(t) = (rule.build)(&cand.schema, dict) {
                    if let Ok(schema) = t.derive_schema(&cand.schema, dict) {
                        if schema != cand.schema {
                            cand = Cand {
                                plan: cand.plan.then(t.spec()),
                                schema,
                            };
                            self.stats.lock().rules_applied += 1;
                            progressed = true;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        cand
    }

    /// Append unit conversions for value requests whose units differ from
    /// what the solution carries, then return the plan.
    pub(super) fn finalize(&self, cand: Cand, query: &Query) -> Plan {
        let dict = self.catalog.dict();
        let mut plan = cand.plan;
        let mut schema = cand.schema;
        for v in &query.values {
            let Some(want) = &v.units else { continue };
            let Some(field) = schema.value_field_on(&v.dimension) else {
                continue;
            };
            if &field.semantics.units == want {
                continue;
            }
            let spec = DerivationSpec::ConvertUnits {
                column: field.name.clone(),
                to: want.clone(),
            };
            if let Some(t) = spec.as_transformation() {
                if let Ok(s) = t.derive_schema(&schema, dict) {
                    schema = s;
                    plan = plan.then(spec);
                }
            }
        }
        plan
    }

    /// Dry-run a query: the schema its plan would produce (semantics only,
    /// no data touched).
    pub fn solution_schema(&self, query: &Query) -> Result<Schema> {
        let plan = self.solve(query)?;
        plan_schema(&plan, self.catalog)
    }
}

/// Compute the schema a plan produces, without executing data operations.
pub(crate) fn plan_schema(plan: &Plan, catalog: &Catalog) -> Result<Schema> {
    match plan {
        Plan::Load { dataset } => Ok(catalog.dataset(dataset)?.schema().clone()),
        Plan::Transform { spec, input } => {
            let s = plan_schema(input, catalog)?;
            spec.as_transformation()
                .ok_or_else(|| SjError::SemanticsInvalid("not a transformation".into()))?
                .derive_schema(&s, catalog.dict())
        }
        Plan::Combine { spec, left, right } => {
            let l = plan_schema(left, catalog)?;
            let r = plan_schema(right, catalog)?;
            spec.as_combination()
                .ok_or_else(|| SjError::SemanticsInvalid("not a combination".into()))?
                .derive_schema(&l, &r, catalog.dict())
        }
    }
}

/// Attach a memoized pair outcome to two concrete candidate plans.
fn attach_outcome(left: &Cand, right: &Cand, o: &PairOutcome) -> Cand {
    let mut lplan = left.plan.clone();
    for s in &o.left_steps {
        lplan = lplan.then(s.clone());
    }
    let mut rplan = right.plan.clone();
    for s in &o.right_steps {
        rplan = rplan.then(s.clone());
    }
    Cand {
        plan: lplan.combine(o.combine.clone(), rplan),
        schema: o.schema.clone(),
    }
}

/// Greedy set cover over the `allowed` candidate indices: pick candidates
/// covering the most uncovered targets until all targets are covered
/// (ties: fewer columns first, then lower index — `allowed` must be
/// ascending for deterministic results).
///
/// Restricting to a subset `S` of the catalog is plan-preserving: when
/// `S` contains every index the unrestricted cover would pick, the
/// argmax over `S` sees the same maxima in the same order, so the picks
/// are identical. This is what lets the constraint planner reuse the
/// legacy fold shape on the dataset set it selects.
pub(super) fn greedy_cover(
    schema_of: &dyn Fn(usize) -> Schema,
    targets: &[(String, bool)],
    allowed: &[usize],
) -> Vec<usize> {
    let covers = |s: &Schema, t: &(String, bool)| -> bool {
        if t.1 {
            s.domain_field_on(&t.0).is_some()
        } else {
            s.value_field_on(&t.0).is_some()
        }
    };
    let mut uncovered: Vec<&(String, bool)> = targets.iter().collect();
    let mut picked = Vec::new();
    while !uncovered.is_empty() {
        let best = allowed
            .iter()
            .copied()
            .filter(|i| !picked.contains(i))
            .max_by_key(|&i| {
                let s = schema_of(i);
                let n = uncovered.iter().filter(|t| covers(&s, t)).count();
                (n, std::cmp::Reverse(s.len()))
            });
        let Some(best) = best else { break };
        let s = schema_of(best);
        let n = uncovered.iter().filter(|t| covers(&s, t)).count();
        if n == 0 {
            break;
        }
        uncovered.retain(|t| !covers(&s, t));
        picked.push(best);
    }
    picked
}

/// The widening order (Algorithm 1's "add one more dataset" step):
/// candidates from `allowed` not in the seed, sorted by how many domain
/// dimensions they share with the seed's combined domain (descending;
/// the sort is stable, so ties stay in ascending-index order).
///
/// Like [`greedy_cover`], restricting `allowed` to a superset of what
/// the legacy search would actually append preserves the append order.
pub(super) fn addition_order(
    schema_of: &dyn Fn(usize) -> Schema,
    seed: &[usize],
    allowed: &[usize],
) -> Vec<usize> {
    let mut seed_dims: BTreeSet<String> = BTreeSet::new();
    for &i in seed {
        seed_dims.extend(
            schema_of(i)
                .domain_dimensions()
                .into_iter()
                .map(String::from),
        );
    }
    let mut order: Vec<usize> = allowed
        .iter()
        .copied()
        .filter(|i| !seed.contains(i))
        .collect();
    order.sort_by_key(|&i| {
        let shared = schema_of(i)
            .domain_dimensions()
            .iter()
            .filter(|&&d| seed_dims.contains(d))
            .count();
        std::cmp::Reverse(shared)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryValue;
    use crate::row::Row;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::units::time::{TimeSpan, Timestamp};
    use crate::value::Value;
    use crate::SjDataset;
    use sjdf::ExecCtx;

    /// A small catalog shaped like the paper's first DAT (§7.1): a job
    /// queue log, the node/rack layout, and rack temperature sensors.
    fn dat1_catalog(ctx: &ExecCtx) -> Catalog {
        let mut c = Catalog::default_hpc();

        let joblog_schema = Schema::new(vec![
            FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
            FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
            FieldDef::new(
                "nodelist",
                FieldSemantics::domain("compute-node", "node-list"),
            ),
            FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
            FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
        ])
        .unwrap();
        let joblog_rows = vec![Row::new(vec![
            Value::str("1001"),
            Value::str("AMG"),
            Value::list([Value::str("cab1"), Value::str("cab2")]),
            Value::Float(240.0),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(240),
            )),
        ])];
        c.register_dataset(
            "job_queue_log",
            SjDataset::from_rows(ctx, joblog_rows, joblog_schema, "job_queue_log", 1),
        )
        .unwrap();

        let layout_schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let layout_rows = vec![
            Row::new(vec![Value::str("cab1"), Value::str("rack17")]),
            Row::new(vec![Value::str("cab2"), Value::str("rack17")]),
        ];
        c.register_dataset(
            "node_layout",
            SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 1),
        )
        .unwrap();

        let temps_schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new(
                "location",
                FieldSemantics::domain("rack-location", "location-name"),
            ),
            FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mut temps_rows = Vec::new();
        for t in [0i64, 120, 240] {
            for (aisle, base) in [("hot", 35.0), ("cold", 18.0)] {
                temps_rows.push(Row::new(vec![
                    Value::str("rack17"),
                    Value::str("top"),
                    Value::str(aisle),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(base + t as f64 / 100.0),
                ]));
            }
        }
        c.register_dataset(
            "rack_temps",
            SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 1),
        )
        .unwrap();
        c
    }

    fn rack_heat_query() -> Query {
        Query::new(
            ["job", "rack"],
            vec![QueryValue::dim("application"), QueryValue::dim("heat")],
        )
    }

    #[test]
    fn solves_the_figure5_query_with_the_figure5_shape() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let plan = engine.solve(&rack_heat_query()).unwrap();

        let ops: Vec<&str> = plan.ops().iter().map(|s| s.op_name()).collect();
        // The Figure 5 sequence: explode discrete + explode continuous on
        // the job log, natural join with the layout, derive heat on the
        // rack temps, interpolation join at the top.
        assert!(ops.contains(&"explode_discrete"), "{ops:?}");
        assert!(ops.contains(&"explode_continuous"), "{ops:?}");
        assert!(ops.contains(&"natural_join"), "{ops:?}");
        assert!(ops.contains(&"derive_heat"), "{ops:?}");
        assert_eq!(*ops.last().unwrap(), "interpolation_join", "{ops:?}");
        // All three datasets participate.
        let mut loads = plan.loads();
        loads.sort();
        assert_eq!(loads, vec!["job_queue_log", "node_layout", "rack_temps"]);
    }

    #[test]
    fn solution_schema_satisfies_the_query() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let q = rack_heat_query().canonicalize(cat.dict()).unwrap();
        let schema = engine.solution_schema(&rack_heat_query()).unwrap();
        assert!(q.satisfied_by(&schema, cat.dict()));
    }

    #[test]
    fn executing_the_plan_produces_job_heat_relations() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let plan = engine.solve(&rack_heat_query()).unwrap();
        let ds = plan.execute(&cat, None).unwrap();
        let rows = ds.collect().unwrap();
        assert!(!rows.is_empty());
        let app_idx = ds.schema().index_of("job_name").unwrap();
        let heat_idx = ds.schema().index_of("heat").unwrap();
        for r in &rows {
            assert_eq!(r.get(app_idx).as_str(), Some("AMG"));
            let heat = r.get(heat_idx).as_f64().unwrap();
            assert!((16.0..=18.5).contains(&heat), "heat={heat}");
        }
    }

    #[test]
    fn single_dataset_queries_short_circuit() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let q = Query::new(["rack"], vec![QueryValue::dim("temperature")]);
        let plan = engine.solve(&q).unwrap();
        assert_eq!(plan.loads(), vec!["rack_temps"]);
        assert_eq!(plan.num_combines(), 0);
    }

    #[test]
    fn unknown_domain_dimension_has_no_solution() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let q = Query::new(["cpu"], vec![QueryValue::dim("temperature")]);
        assert!(matches!(
            engine.solve(&q).unwrap_err(),
            SjError::NoSolution(_)
        ));
    }

    #[test]
    fn unrecorded_underivable_value_has_no_solution() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let q = Query::new(["rack"], vec![QueryValue::dim("power")]);
        assert!(matches!(
            engine.solve(&q).unwrap_err(),
            SjError::NoSolution(_)
        ));
    }

    #[test]
    fn memoization_reduces_pair_tests() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        engine.solve(&rack_heat_query()).unwrap();
        let first = engine.stats();
        engine.solve(&rack_heat_query()).unwrap();
        let second = engine.stats();
        assert!(second.memo_hits > first.memo_hits);
        assert_eq!(second.pair_tests, first.pair_tests);

        let no_memo = QueryEngine::with_config(
            &cat,
            EngineConfig {
                memoize: false,
                ..EngineConfig::default()
            },
        );
        no_memo.solve(&rack_heat_query()).unwrap();
        no_memo.solve(&rack_heat_query()).unwrap();
        assert!(no_memo.stats().pair_tests > first.pair_tests);
        assert_eq!(no_memo.stats().memo_hits, 0);
    }

    #[test]
    fn mirrored_pair_test_hits_the_memo() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let mk = |name: &str| {
            let ds = cat.dataset(name).unwrap();
            Cand {
                plan: Plan::load(name),
                schema: ds.schema().clone(),
            }
        };
        let layout = mk("node_layout");
        let temps = mk("rack_temps");

        let fwd = engine.combine_pair(&layout, &temps, true).unwrap();
        let s1 = engine.stats();
        assert_eq!(s1.pair_tests, 1);
        assert_eq!(s1.memo_hits, 0);

        // The reversed orientation must answer from the memo, not re-run
        // the alignment logic.
        let rev = engine.combine_pair(&temps, &layout, true).unwrap();
        let s2 = engine.stats();
        assert_eq!(s2.pair_tests, 1, "reversed test re-ran the pair logic");
        assert_eq!(s2.memo_hits, 1);

        // The mirrored outcome is a real combination over the same
        // dimensions, with the sides exchanged.
        assert_eq!(
            fwd.schema.domain_dimensions(),
            rev.schema.domain_dimensions()
        );
        assert_eq!(rev.plan.loads().first(), Some(&"rack_temps"));

        // A second reversed call hits the now-materialized direction slot.
        let _ = engine.combine_pair(&temps, &layout, true).unwrap();
        let s3 = engine.stats();
        assert_eq!(s3.pair_tests, 1);
        assert_eq!(s3.memo_hits, 2);
    }

    #[test]
    fn budget_stop_reports_truncation_not_unsatisfiability() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        for planner in [PlannerKind::Legacy, PlannerKind::Constraint] {
            let engine = QueryEngine::with_config(
                &cat,
                EngineConfig {
                    max_datasets: 2,
                    allow_unanchored: false,
                    planner,
                    ..EngineConfig::default()
                },
            );
            // Needs all three datasets, but the budget allows only two.
            let err = engine.solve(&rack_heat_query()).unwrap_err();
            assert!(
                matches!(
                    err,
                    SjError::SearchTruncated {
                        max_datasets: 2,
                        ..
                    }
                ),
                "{planner:?}: {err:?}"
            );
        }
    }

    #[test]
    fn stats_accumulate_across_solves() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        engine.solve(&rack_heat_query()).unwrap();
        let first = engine.stats().datasets_considered;
        assert!(first > 0);
        engine.solve(&rack_heat_query()).unwrap();
        assert!(
            engine.stats().datasets_considered > first,
            "datasets_considered must accumulate, not reset per solve"
        );
    }

    #[test]
    fn unit_conversion_is_appended_when_requested() {
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let q = Query::new(
            ["rack"],
            vec![QueryValue::with_units("temperature", "fahrenheit")],
        );
        let plan = engine.solve(&q).unwrap();
        let ops: Vec<&str> = plan.ops().iter().map(|s| s.op_name()).collect();
        assert_eq!(ops, vec!["convert_units"]);
        let ds = plan.execute(&cat, None).unwrap();
        let f = ds.schema().field("temp").unwrap();
        assert_eq!(f.semantics.units, "fahrenheit");
    }

    #[test]
    fn anchored_paths_are_preferred_over_time_only_joins() {
        // Even though job_queue_log and rack_temps share `time`, the plan
        // must route through node_layout (anchored joins only).
        let ctx = ExecCtx::local();
        let cat = dat1_catalog(&ctx);
        let engine = QueryEngine::new(&cat);
        let plan = engine.solve(&rack_heat_query()).unwrap();
        assert!(plan.loads().contains(&"node_layout"));
        assert_eq!(plan.num_combines(), 2);
    }
}
