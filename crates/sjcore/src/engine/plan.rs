//! Reproducible derivation plans (§5.4).
//!
//! A [`Plan`] is the serializable tree of derivation operations the engine
//! found for a query: data loading at the leaves, transformations and
//! combinations above. Plans serialize to JSON, are human-readable and
//! editable, and execute against a catalog — optionally through the
//! intermediate-result cache.

use crate::cache::{ResultCache, TieredCache};
use crate::catalog::Catalog;
use crate::dataset::SjDataset;
use crate::derivations::DerivationSpec;
use crate::error::{Result, SjError};
use crate::row::Row;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// Anything that can memoize plan-node materializations. Implemented by
/// the flat LRU [`ResultCache`] and the two-tier [`TieredCache`].
pub trait PlanCache {
    /// Look up a materialization by plan fingerprint.
    fn cache_get(&self, key: u64) -> Option<(Schema, Vec<Row>)>;
    /// Store a materialization.
    fn cache_put(&self, key: u64, schema: Schema, rows: Vec<Row>);
}

impl PlanCache for ResultCache {
    fn cache_get(&self, key: u64) -> Option<(Schema, Vec<Row>)> {
        self.get(key)
    }
    fn cache_put(&self, key: u64, schema: Schema, rows: Vec<Row>) {
        self.put(key, schema, rows)
    }
}

impl PlanCache for TieredCache {
    fn cache_get(&self, key: u64) -> Option<(Schema, Vec<Row>)> {
        self.get(key)
    }
    fn cache_put(&self, key: u64, schema: Schema, rows: Vec<Row>) {
        self.put(key, schema, rows)
    }
}

/// A derivation sequence, represented as an operator tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "node", rename_all = "snake_case")]
pub enum Plan {
    /// Load a named dataset from the catalog.
    Load {
        /// Registered dataset name.
        dataset: String,
    },
    /// Apply a transformation to a sub-plan's result.
    Transform {
        /// The transformation to apply.
        spec: DerivationSpec,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Combine two sub-plans' results.
    Combine {
        /// The combination to apply.
        spec: DerivationSpec,
        /// Left input plan.
        left: Box<Plan>,
        /// Right input plan.
        right: Box<Plan>,
    },
}

impl Plan {
    /// Load a named dataset.
    pub fn load(dataset: &str) -> Plan {
        Plan::Load {
            dataset: dataset.into(),
        }
    }

    /// Wrap this plan in a transformation.
    pub fn then(self, spec: DerivationSpec) -> Plan {
        Plan::Transform {
            spec,
            input: Box::new(self),
        }
    }

    /// Combine this plan with another.
    pub fn combine(self, spec: DerivationSpec, right: Plan) -> Plan {
        Plan::Combine {
            spec,
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plans always serialize")
    }

    /// Parse from JSON.
    pub fn from_json(text: &str) -> Result<Plan> {
        serde_json::from_str(text).map_err(|e| SjError::ParseError(e.to_string()))
    }

    /// Stable fingerprint of this plan subtree (the result-cache key).
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        serde_json::to_string(self)
            .expect("plans always serialize")
            .hash(&mut h);
        h.finish()
    }

    /// All operation specs in execution (post-)order.
    pub fn ops(&self) -> Vec<&DerivationSpec> {
        let mut out = Vec::new();
        self.visit(&mut |p| match p {
            Plan::Transform { spec, .. } | Plan::Combine { spec, .. } => out.push(spec),
            Plan::Load { .. } => {}
        });
        out
    }

    /// Names of all loaded datasets in execution order.
    pub fn loads(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Load { dataset } = p {
                out.push(dataset.as_str());
            }
        });
        out
    }

    /// Number of combinations in the plan.
    pub fn num_combines(&self) -> usize {
        self.ops()
            .iter()
            .filter(|s| s.as_combination().is_some())
            .count()
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Plan)) {
        match self {
            Plan::Load { .. } => f(self),
            Plan::Transform { input, .. } => {
                input.visit(f);
                f(self);
            }
            Plan::Combine { left, right, .. } => {
                left.visit(f);
                right.visit(f);
                f(self);
            }
        }
    }

    /// Execute the plan against a catalog, optionally reusing and storing
    /// intermediate results in the flat LRU cache.
    pub fn execute(&self, catalog: &Catalog, cache: Option<&ResultCache>) -> Result<SjDataset> {
        match cache {
            Some(c) => self.execute_cached(catalog, Some(c)),
            None => self.execute_cached(catalog, Option::<&ResultCache>::None),
        }
    }

    /// Execute the plan through any [`PlanCache`] implementation (the
    /// flat LRU or the tiered hot/cold cache).
    pub fn execute_cached<C: PlanCache + ?Sized>(
        &self,
        catalog: &Catalog,
        cache: Option<&C>,
    ) -> Result<SjDataset> {
        match self {
            Plan::Load { dataset } => Ok(catalog.dataset(dataset)?.clone()),
            Plan::Transform { spec, input } => {
                if let Some(hit) = self.cached(catalog, cache)? {
                    return Ok(hit);
                }
                let in_ds = input.execute_cached(catalog, cache)?;
                let t = spec.as_transformation().ok_or_else(|| {
                    SjError::SemanticsInvalid(format!(
                        "`{}` is not a transformation",
                        spec.op_name()
                    ))
                })?;
                let out = t.apply(&in_ds, catalog.dict())?;
                self.store(catalog, cache, &out)?;
                Ok(out)
            }
            Plan::Combine { spec, left, right } => {
                if let Some(hit) = self.cached(catalog, cache)? {
                    return Ok(hit);
                }
                let l = left.execute_cached(catalog, cache)?;
                let r = right.execute_cached(catalog, cache)?;
                let c = spec.as_combination().ok_or_else(|| {
                    SjError::SemanticsInvalid(format!("`{}` is not a combination", spec.op_name()))
                })?;
                let out = c.apply(&l, &r, catalog.dict())?;
                self.store(catalog, cache, &out)?;
                Ok(out)
            }
        }
    }

    fn cached<C: PlanCache + ?Sized>(
        &self,
        catalog: &Catalog,
        cache: Option<&C>,
    ) -> Result<Option<SjDataset>> {
        let Some(cache) = cache else { return Ok(None) };
        let Some((schema, rows)) = cache.cache_get(self.fingerprint()) else {
            return Ok(None);
        };
        // Rebuild a dataset on the execution context of any catalog
        // dataset (they all share one).
        let ctx = catalog
            .datasets()
            .next()
            .map(|(_, d)| d.rdd().ctx().clone())
            .unwrap_or_default();
        let parts = ctx.cluster.default_partitions().min(rows.len().max(1));
        Ok(Some(SjDataset::from_rows(
            &ctx,
            rows,
            schema,
            format!("cached({})", self.fingerprint()),
            parts,
        )))
    }

    fn store<C: PlanCache + ?Sized>(
        &self,
        _catalog: &Catalog,
        cache: Option<&C>,
        ds: &SjDataset,
    ) -> Result<()> {
        if let Some(cache) = cache {
            let rows = ds.collect()?;
            cache.cache_put(self.fingerprint(), ds.schema().clone(), rows);
        }
        Ok(())
    }

    /// Render as an indented tree (the shape of the paper's Figures 5/7).
    pub fn describe(&self) -> String {
        fn spec_label(spec: &DerivationSpec) -> String {
            match spec {
                DerivationSpec::ExplodeDiscrete { column } => {
                    format!("explode_discrete({column})")
                }
                DerivationSpec::ExplodeContinuous { column, step_secs } => {
                    format!("explode_continuous({column}, step={step_secs}s)")
                }
                DerivationSpec::ConvertUnits { column, to } => {
                    format!("convert_units({column} -> {to})")
                }
                DerivationSpec::DeriveRate { per_secs } => {
                    format!("derive_count_rate(per {per_secs}s)")
                }
                DerivationSpec::DeriveRatio { new_column, .. } => {
                    format!("derive_ratio({new_column})")
                }
                DerivationSpec::DeriveHeat => "derive_heat".into(),
                DerivationSpec::DeriveActiveFrequency => "derive_active_frequency".into(),
                DerivationSpec::NaturalJoin => "natural_join".into(),
                DerivationSpec::InterpolationJoin { window_secs } => {
                    format!("interpolation_join(W={window_secs}s)")
                }
            }
        }
        fn walk(plan: &Plan, prefix: &str, is_last: bool, out: &mut String, is_root: bool) {
            let (label, children): (String, Vec<&Plan>) = match plan {
                Plan::Load { dataset } => (format!("load({dataset})"), vec![]),
                Plan::Transform { spec, input } => (spec_label(spec), vec![input]),
                Plan::Combine { spec, left, right } => {
                    (spec_label(spec), vec![left.as_ref(), right.as_ref()])
                }
            };
            if is_root {
                out.push_str(&label);
                out.push('\n');
            } else {
                out.push_str(prefix);
                out.push_str(if is_last { "└─ " } else { "├─ " });
                out.push_str(&label);
                out.push('\n');
            }
            let child_prefix = if is_root {
                String::new()
            } else {
                format!("{prefix}{}", if is_last { "   " } else { "│  " })
            };
            let n = children.len();
            for (i, c) in children.into_iter().enumerate() {
                walk(c, &child_prefix, i + 1 == n, out, false);
            }
        }
        let mut out = String::new();
        walk(self, "", true, &mut out, true);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::{FieldDef, Schema};
    use crate::semantics::FieldSemantics;
    use crate::value::Value;
    use sjdf::ExecCtx;

    fn catalog(ctx: &ExecCtx) -> Catalog {
        let mut c = Catalog::default_hpc();
        let schema = Schema::new(vec![
            FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
            FieldDef::new(
                "nodelist",
                FieldSemantics::domain("compute-node", "node-list"),
            ),
        ])
        .unwrap();
        let rows = vec![Row::new(vec![
            Value::str("j1"),
            Value::list([Value::str("n1"), Value::str("n2")]),
        ])];
        c.register_dataset(
            "joblog",
            SjDataset::from_rows(ctx, rows, schema, "joblog", 1),
        )
        .unwrap();

        let layout = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("n1"), Value::str("r1")]),
            Row::new(vec![Value::str("n2"), Value::str("r2")]),
        ];
        c.register_dataset(
            "layout",
            SjDataset::from_rows(ctx, rows, layout, "layout", 1),
        )
        .unwrap();
        c
    }

    fn sample_plan() -> Plan {
        Plan::load("joblog")
            .then(DerivationSpec::ExplodeDiscrete {
                column: "nodelist".into(),
            })
            .combine(DerivationSpec::NaturalJoin, Plan::load("layout"))
    }

    #[test]
    fn json_round_trip() {
        let p = sample_plan();
        let json = p.to_json();
        let back = Plan::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert!(json.contains("natural_join"));
        assert!(Plan::from_json("{not json").is_err());
    }

    #[test]
    fn execute_runs_the_sequence() {
        let ctx = ExecCtx::local();
        let cat = catalog(&ctx);
        let out = sample_plan().execute(&cat, None).unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| r.get(1).as_str().unwrap().to_string());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(2).as_str(), Some("r1"));
        assert_eq!(rows[1].get(2).as_str(), Some("r2"));
    }

    #[test]
    fn execute_missing_dataset_errors() {
        let ctx = ExecCtx::local();
        let cat = catalog(&ctx);
        assert!(Plan::load("nope").execute(&cat, None).is_err());
    }

    #[test]
    fn cache_round_trip_gives_same_rows() {
        let ctx = ExecCtx::local();
        let cat = catalog(&ctx);
        let cache = ResultCache::new(1 << 20);
        let p = sample_plan();
        let first = p.execute(&cat, Some(&cache)).unwrap();
        let mut a = first.collect().unwrap();
        let second = p.execute(&cat, Some(&cache)).unwrap();
        let mut b = second.collect().unwrap();
        let key = |r: &Row| r.get(0).as_str().unwrap().to_string() + r.get(1).as_str().unwrap();
        a.sort_by_key(&key);
        b.sort_by_key(&key);
        assert_eq!(a, b);
        assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn introspection_lists_ops_and_loads() {
        let p = sample_plan();
        assert_eq!(p.loads(), vec!["joblog", "layout"]);
        let ops: Vec<&str> = p.ops().iter().map(|s| s.op_name()).collect();
        assert_eq!(ops, vec!["explode_discrete", "natural_join"]);
        assert_eq!(p.num_combines(), 1);
    }

    #[test]
    fn fingerprints_differ_for_different_plans() {
        assert_ne!(
            sample_plan().fingerprint(),
            Plan::load("joblog").fingerprint()
        );
        assert_eq!(sample_plan().fingerprint(), sample_plan().fingerprint());
    }

    #[test]
    fn describe_draws_a_tree() {
        let d = sample_plan().describe();
        assert!(d.starts_with("natural_join"));
        assert!(d.contains("├─ explode_discrete(nodelist)"));
        assert!(d.contains("└─ load(layout)"));
        assert!(d.contains("│  └─ load(joblog)"));
    }
}
