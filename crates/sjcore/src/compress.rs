//! A small, self-contained LZSS byte compressor.
//!
//! The paper's conclusion (§9) envisions a storage cache hierarchy where
//! old intermediate-result entries "may be compressed and stored in
//! separate long-term storage devices". The cold tier of
//! [`crate::cache::TieredCache`] uses this codec. Serialized row sets are
//! highly repetitive (JSON keys, repeated identifiers), so even a simple
//! greedy LZSS with a hash-chained 64 KiB window compresses them well.
//!
//! Format: a stream of tagged tokens. A control byte holds 8 flags
//! (LSB first); flag 0 = literal byte follows, flag 1 = a match follows
//! as a 2-byte little-endian `offset` (1..=65535) and 1-byte
//! `length - MIN_MATCH` (match lengths 4..=259).

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress a byte slice. The output always round-trips through
/// [`decompress`]; it may be larger than the input for incompressible
/// data (callers should keep whichever is smaller).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];

    let mut i = 0usize;
    let mut ctrl_pos = usize::MAX;
    let mut ctrl_bit = 8u8;
    let mut push_flag = |out: &mut Vec<u8>, flag: bool| {
        if ctrl_bit == 8 {
            ctrl_pos = out.len();
            out.push(0);
            ctrl_bit = 0;
        }
        if flag {
            out[ctrl_pos] |= 1 << ctrl_bit;
        }
        ctrl_bit += 1;
    };

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut tries = 32;
            while cand != usize::MAX && i - cand <= WINDOW && tries > 0 {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == limit {
                        break;
                    }
                }
                cand = prev[cand];
                tries -= 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            push_flag(&mut out, true);
            out.extend_from_slice(&(best_off as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for skipped positions to keep the
            // chains useful.
            let end = i + best_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= data.len() && j < end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            push_flag(&mut out, false);
            out.push(data[i]);
            i += 1;
        }
    }
    out
}

/// Decompress a [`compress`]-produced buffer.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    if data.len() < 8 {
        return None;
    }
    let expected = u64::from_le_bytes(data[..8].try_into().ok()?) as usize;
    let mut out = Vec::with_capacity(expected);
    let mut i = 8usize;
    let mut ctrl = 0u8;
    let mut ctrl_bit = 8u8;
    while out.len() < expected {
        if ctrl_bit == 8 {
            ctrl = *data.get(i)?;
            i += 1;
            ctrl_bit = 0;
        }
        let is_match = (ctrl >> ctrl_bit) & 1 == 1;
        ctrl_bit += 1;
        if is_match {
            let off = u16::from_le_bytes([*data.get(i)?, *data.get(i + 1)?]) as usize;
            let len = *data.get(i + 2)? as usize + MIN_MATCH;
            i += 3;
            if off == 0 || off > out.len() {
                return None;
            }
            let start = out.len() - off;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            out.push(*data.get(i)?);
            i += 1;
        }
    }
    (out.len() == expected).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_round_trips() {
        let c = compress(b"");
        assert_eq!(decompress(&c).unwrap(), b"");
    }

    #[test]
    fn short_data_round_trips() {
        for input in [&b"a"[..], b"ab", b"abc", b"abcd", b"hello world"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let json: String = (0..200)
            .map(|i| {
                format!(
                    "{{\"node\":\"cab{}\",\"rack\":\"rack17\",\"temp\":6{}.4}}",
                    i % 12,
                    i % 10
                )
            })
            .collect();
        let data = json.as_bytes();
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() * 3 < data.len(),
            "expected >3x compression, got {} -> {}",
            data.len(),
            c.len()
        );
    }

    #[test]
    fn overlapping_matches_round_trip() {
        // "aaaa..." forces matches that overlap their own output.
        let data = vec![b'a'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn random_like_data_round_trips() {
        // Deterministic pseudo-random bytes (incompressible).
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..5_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        assert!(decompress(b"").is_none());
        assert!(decompress(b"1234567").is_none());
        // Claimed length with truncated body.
        let mut c = compress(b"some data that compresses");
        c.truncate(c.len() - 3);
        assert!(decompress(&c).is_none());
        // A match reaching before the start of output.
        let mut bad = Vec::new();
        bad.extend_from_slice(&100u64.to_le_bytes());
        bad.push(0b0000_0001); // first token is a match
        bad.extend_from_slice(&5u16.to_le_bytes()); // offset 5 into empty output
        bad.push(0);
        assert!(decompress(&bad).is_none());
    }
}
