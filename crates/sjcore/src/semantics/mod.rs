//! Data semantics (§4.2): relation types, dimensions, and field semantics.
//!
//! Semantics are ScrubJay's common language for describing what a column
//! *is*: whether it describes the resource being measured (a **domain**)
//! or the measurement itself (a **value**), which **dimension** it lies on,
//! and in which **units** it was recorded. Derivations are constrained by
//! these semantics — two datasets combine only when all their shared
//! domain dimensions can be matched.

pub mod dictionary;
pub mod dimension;

pub use dictionary::SemanticDictionary;
pub use dimension::DimensionDef;

use serde::{Deserialize, Serialize};

/// Whether a column describes the measured resource or the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationType {
    /// A descriptor of the resource being measured (CPU id, rack, time of
    /// recording). Combinations match datasets on shared domain
    /// dimensions.
    Domain,
    /// The measurement itself (temperature, instruction rate). Elapsed
    /// time of an execution is a value even though its dimension is time.
    Value,
}

/// The semantic annotation of one column: relation type, dimension, units.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldSemantics {
    /// Domain or value.
    pub relation: RelationType,
    /// Dictionary keyword of the dimension (e.g. `time`, `compute-node`).
    pub dimension: String,
    /// Dictionary keyword of the units (e.g. `datetime`, `celsius`).
    pub units: String,
}

impl FieldSemantics {
    /// A domain column.
    pub fn domain(dimension: &str, units: &str) -> Self {
        FieldSemantics {
            relation: RelationType::Domain,
            dimension: dimension.into(),
            units: units.into(),
        }
    }

    /// A value column.
    pub fn value(dimension: &str, units: &str) -> Self {
        FieldSemantics {
            relation: RelationType::Value,
            dimension: dimension.into(),
            units: units.into(),
        }
    }

    /// True if this column is a domain descriptor.
    pub fn is_domain(&self) -> bool {
        self.relation == RelationType::Domain
    }

    /// True if this column is a measurement value.
    pub fn is_value(&self) -> bool {
        self.relation == RelationType::Value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_relation() {
        let d = FieldSemantics::domain("time", "datetime");
        assert!(d.is_domain());
        assert!(!d.is_value());
        let v = FieldSemantics::value("temperature", "celsius");
        assert!(v.is_value());
        assert_eq!(v.dimension, "temperature");
    }

    #[test]
    fn same_dimension_different_relation_are_distinct() {
        // Elapsed time is a value over the time dimension; recording time
        // is a domain over the time dimension (§4.2).
        let elapsed = FieldSemantics::value("time", "t-seconds");
        let recorded = FieldSemantics::domain("time", "datetime");
        assert_ne!(elapsed, recorded);
        assert_eq!(elapsed.dimension, recorded.dimension);
    }

    #[test]
    fn serde_round_trip() {
        let s = FieldSemantics::domain("compute-node", "node-id");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<FieldSemantics>(&json).unwrap(), s);
    }
}
