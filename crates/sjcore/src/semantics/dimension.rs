//! Dimension definitions.
//!
//! A dimension is an aspect of something: physical (time, temperature) or
//! conceptual (the identity of a CPU). Dimensions are **continuous** or
//! **discrete** (can values along them be halved indefinitely?) and
//! **ordered** or **unordered** (can values be compared?). These two flags
//! determine which operations are valid: time interpolates by averaging
//! neighbours, node identifiers never do (§4.2).

use serde::{Deserialize, Serialize};

/// A named dimension in the semantic dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimensionDef {
    /// Dictionary keyword (unique; no homonyms).
    pub name: String,
    /// Whether values along this dimension can be subdivided indefinitely.
    pub continuous: bool,
    /// Whether values along this dimension can be compared with `<`.
    pub ordered: bool,
}

impl DimensionDef {
    /// A continuous, ordered dimension (time, temperature, power).
    pub fn continuous(name: &str) -> Self {
        DimensionDef {
            name: name.into(),
            continuous: true,
            ordered: true,
        }
    }

    /// A discrete, ordered dimension (event counts).
    pub fn discrete_ordered(name: &str) -> Self {
        DimensionDef {
            name: name.into(),
            continuous: false,
            ordered: true,
        }
    }

    /// A discrete, unordered dimension (identifiers: nodes, CPUs, racks).
    pub fn identifier(name: &str) -> Self {
        DimensionDef {
            name: name.into(),
            continuous: false,
            ordered: false,
        }
    }

    /// Values on this dimension may be interpolated between neighbours.
    /// Requires both continuity (fractional positions exist) and order
    /// (neighbours are defined).
    pub fn interpolatable(&self) -> bool {
        self.continuous && self.ordered
    }

    /// Exact equality is the only valid comparison on this dimension.
    pub fn exact_match_only(&self) -> bool {
        !self.ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_is_continuous_and_ordered() {
        let d = DimensionDef::continuous("temperature");
        assert!(d.continuous && d.ordered);
        assert!(d.interpolatable());
        assert!(!d.exact_match_only());
    }

    #[test]
    fn event_counts_are_discrete_and_ordered() {
        let d = DimensionDef::discrete_ordered("event-count");
        assert!(!d.continuous && d.ordered);
        assert!(!d.interpolatable());
    }

    #[test]
    fn identifiers_are_discrete_and_unordered() {
        let d = DimensionDef::identifier("compute-node");
        assert!(!d.continuous && !d.ordered);
        assert!(d.exact_match_only());
        assert!(!d.interpolatable());
    }
}
