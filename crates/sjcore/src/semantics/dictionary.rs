//! The semantic dictionary (§4.2).
//!
//! Problems arise when multiple keywords mean the same thing (synonyms) or
//! one keyword means different things (homonyms). The dictionary is the
//! single authority for dimension and units keywords: homonyms are
//! rejected at registration, and synonyms are handled by explicit alias
//! entries that map alternative spellings (`NODEID`, `node`) to one
//! canonical keyword. Every loaded dataset is validated against the active
//! dictionary.

use crate::error::{Result, SjError};
use crate::semantics::{DimensionDef, FieldSemantics};
use crate::units::{UnitKind, UnitsDef};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dictionary of dimension and units keywords, with synonym aliases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SemanticDictionary {
    dimensions: HashMap<String, DimensionDef>,
    units: HashMap<String, UnitsDef>,
    aliases: HashMap<String, String>,
}

impl SemanticDictionary {
    /// An empty dictionary.
    pub fn empty() -> Self {
        SemanticDictionary::default()
    }

    /// Register a dimension. Re-registering an identical definition is a
    /// no-op; a conflicting definition under the same name is a homonym
    /// and is rejected.
    pub fn register_dimension(&mut self, def: DimensionDef) -> Result<()> {
        if let Some(existing) = self.dimensions.get(&def.name) {
            if *existing != def {
                return Err(SjError::HomonymConflict(def.name));
            }
            return Ok(());
        }
        if self.aliases.contains_key(&def.name) || self.units.contains_key(&def.name) {
            return Err(SjError::HomonymConflict(def.name));
        }
        self.dimensions.insert(def.name.clone(), def);
        Ok(())
    }

    /// Register a units definition. The referenced dimension must already
    /// exist; homonyms are rejected.
    pub fn register_units(&mut self, def: UnitsDef) -> Result<()> {
        if !self.dimensions.contains_key(&def.dimension) {
            return Err(SjError::UnknownKeyword(def.dimension));
        }
        if let Some(existing) = self.units.get(&def.name) {
            if *existing != def {
                return Err(SjError::HomonymConflict(def.name));
            }
            return Ok(());
        }
        if self.aliases.contains_key(&def.name) || self.dimensions.contains_key(&def.name) {
            return Err(SjError::HomonymConflict(def.name));
        }
        self.units.insert(def.name.clone(), def);
        Ok(())
    }

    /// Declare `synonym` as an alternative spelling of the existing
    /// keyword `canonical` (either a dimension or a units keyword).
    pub fn register_alias(&mut self, synonym: &str, canonical: &str) -> Result<()> {
        if !self.dimensions.contains_key(canonical) && !self.units.contains_key(canonical) {
            return Err(SjError::UnknownKeyword(canonical.into()));
        }
        if self.dimensions.contains_key(synonym)
            || self.units.contains_key(synonym)
            || self.aliases.get(synonym).is_some_and(|c| c != canonical)
        {
            return Err(SjError::HomonymConflict(synonym.into()));
        }
        self.aliases.insert(synonym.into(), canonical.into());
        Ok(())
    }

    /// Resolve a keyword through the alias table to its canonical form.
    pub fn resolve<'a>(&'a self, keyword: &'a str) -> &'a str {
        self.aliases.get(keyword).map_or(keyword, String::as_str)
    }

    /// Look up a dimension definition (aliases resolved).
    pub fn dimension(&self, name: &str) -> Result<&DimensionDef> {
        self.dimensions
            .get(self.resolve(name))
            .ok_or_else(|| SjError::UnknownKeyword(name.into()))
    }

    /// Look up a units definition (aliases resolved).
    pub fn units(&self, name: &str) -> Result<&UnitsDef> {
        self.units
            .get(self.resolve(name))
            .ok_or_else(|| SjError::UnknownKeyword(name.into()))
    }

    /// All units defined on a dimension.
    pub fn units_of_dimension(&self, dimension: &str) -> Vec<&UnitsDef> {
        let dim = self.resolve(dimension);
        let mut out: Vec<&UnitsDef> = self.units.values().filter(|u| u.dimension == dim).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Validate one column's semantics: dimension and units must exist and
    /// the units must lie on the declared dimension.
    pub fn validate(&self, sem: &FieldSemantics) -> Result<()> {
        let dim = self.dimension(&sem.dimension)?;
        let units = self.units(&sem.units)?;
        if units.dimension != dim.name {
            return Err(SjError::SemanticsInvalid(format!(
                "units `{}` lie on dimension `{}`, not `{}`",
                sem.units, units.dimension, sem.dimension
            )));
        }
        Ok(())
    }

    /// Number of registered dimensions.
    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }

    /// Number of registered units.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// The default dictionary: every dimension and unit used by the HPC
    /// data sources in the paper's case studies (§7).
    pub fn default_hpc() -> Self {
        let mut d = SemanticDictionary::empty();
        let scalar = |factor: f64| UnitKind::Scalar {
            factor,
            offset: 0.0,
        };

        // --- dimensions -----------------------------------------------
        for dim in [
            DimensionDef::continuous("time"),
            DimensionDef::continuous("temperature"),
            DimensionDef::continuous("humidity"),
            DimensionDef::continuous("heat"),
            DimensionDef::continuous("power"),
            DimensionDef::continuous("frequency"),
            DimensionDef::continuous("base-frequency"),
            DimensionDef::continuous("thermal-margin"),
            DimensionDef::continuous("utilization"),
            DimensionDef::continuous("memory"),
            DimensionDef::discrete_ordered("sample-count"),
            DimensionDef::discrete_ordered("instructions"),
            DimensionDef::discrete_ordered("cycles"),
            DimensionDef::discrete_ordered("memory-reads"),
            DimensionDef::discrete_ordered("memory-writes"),
            DimensionDef::discrete_ordered("aperf"),
            DimensionDef::discrete_ordered("mperf"),
            DimensionDef::identifier("compute-node"),
            DimensionDef::identifier("cpu"),
            DimensionDef::identifier("rack"),
            DimensionDef::identifier("rack-location"),
            DimensionDef::identifier("aisle"),
            DimensionDef::identifier("job"),
            DimensionDef::identifier("application"),
            DimensionDef::identifier("socket"),
        ] {
            d.register_dimension(dim).expect("default dimension");
        }

        // --- units ----------------------------------------------------
        let units = [
            UnitsDef::new("datetime", "time", UnitKind::DateTime),
            UnitsDef::new("timespan", "time", UnitKind::TimeSpanKind),
            UnitsDef::new("t-seconds", "time", scalar(1.0)),
            UnitsDef::new("t-minutes", "time", scalar(60.0)),
            UnitsDef::new("t-hours", "time", scalar(3600.0)),
            UnitsDef::new("celsius", "temperature", scalar(1.0)),
            UnitsDef::new(
                "fahrenheit",
                "temperature",
                UnitKind::Scalar {
                    factor: 5.0 / 9.0,
                    offset: -160.0 / 9.0,
                },
            ),
            UnitsDef::new("percent-rh", "humidity", scalar(1.0)),
            UnitsDef::new("delta-celsius", "heat", scalar(1.0)),
            UnitsDef::new("watts", "power", scalar(1.0)),
            UnitsDef::new("kilowatts", "power", scalar(1000.0)),
            UnitsDef::new("megahertz", "frequency", scalar(1.0)),
            UnitsDef::new("gigahertz", "frequency", scalar(1000.0)),
            UnitsDef::new("base-megahertz", "base-frequency", scalar(1.0)),
            UnitsDef::new("margin-celsius", "thermal-margin", scalar(1.0)),
            UnitsDef::new("node-id", "compute-node", UnitKind::Identifier),
            UnitsDef::new(
                "node-list",
                "compute-node",
                UnitKind::ListOf {
                    element: "node-id".into(),
                },
            ),
            UnitsDef::new("cpu-id", "cpu", UnitKind::Identifier),
            UnitsDef::new("rack-id", "rack", UnitKind::Identifier),
            UnitsDef::new("location-name", "rack-location", UnitKind::Identifier),
            UnitsDef::new("aisle-name", "aisle", UnitKind::Identifier),
            UnitsDef::new("job-id", "job", UnitKind::Identifier),
            UnitsDef::new("app-name", "application", UnitKind::Identifier),
            UnitsDef::new("socket-id", "socket", UnitKind::Identifier),
            UnitsDef::new("samples", "sample-count", scalar(1.0)),
            UnitsDef::new("percent-util", "utilization", scalar(1.0)),
            UnitsDef::new("megabytes", "memory", scalar(1.0)),
            UnitsDef::new("gigabytes", "memory", scalar(1024.0)),
        ];
        for u in units {
            d.register_units(u).expect("default units");
        }

        // Cumulative counters and their derived rates (§7.3).
        for counter in [
            "instructions",
            "cycles",
            "memory-reads",
            "memory-writes",
            "aperf",
            "mperf",
        ] {
            d.register_units(UnitsDef::new(
                &format!("{counter}-count"),
                counter,
                UnitKind::CumulativeCount,
            ))
            .expect("counter units");
            d.register_units(UnitsDef::new(
                &format!("{counter}-per-ms"),
                counter,
                UnitKind::Rate { per_secs: 0.001 },
            ))
            .expect("rate units");
            d.register_units(UnitsDef::new(
                &format!("{counter}-per-sec"),
                counter,
                UnitKind::Rate { per_secs: 1.0 },
            ))
            .expect("rate units");
        }

        // Synonyms seen in real monitoring exports.
        d.register_alias("NODEID", "node-id").expect("alias");
        d.register_alias("node", "compute-node").expect("alias");
        d.register_alias("degrees-celsius", "celsius")
            .expect("alias");
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::RelationType;

    #[test]
    fn default_dictionary_is_consistent() {
        let d = SemanticDictionary::default_hpc();
        assert!(d.num_dimensions() >= 20);
        assert!(d.num_units() >= 30);
        // Every unit's dimension exists.
        for dim in ["time", "temperature", "compute-node"] {
            assert!(d.dimension(dim).is_ok());
        }
    }

    #[test]
    fn homonym_dimension_rejected() {
        let mut d = SemanticDictionary::empty();
        d.register_dimension(DimensionDef::continuous("time"))
            .unwrap();
        // Identical re-registration is fine.
        d.register_dimension(DimensionDef::continuous("time"))
            .unwrap();
        // Conflicting definition is a homonym.
        let e = d
            .register_dimension(DimensionDef::identifier("time"))
            .unwrap_err();
        assert!(matches!(e, SjError::HomonymConflict(_)));
    }

    #[test]
    fn units_require_existing_dimension() {
        let mut d = SemanticDictionary::empty();
        let e = d
            .register_units(UnitsDef::new(
                "celsius",
                "temperature",
                UnitKind::Identifier,
            ))
            .unwrap_err();
        assert!(matches!(e, SjError::UnknownKeyword(_)));
    }

    #[test]
    fn units_and_dimension_namespaces_do_not_collide() {
        let mut d = SemanticDictionary::empty();
        d.register_dimension(DimensionDef::continuous("temperature"))
            .unwrap();
        // A units keyword equal to a dimension keyword is a homonym.
        let e = d
            .register_units(UnitsDef::new(
                "temperature",
                "temperature",
                UnitKind::Identifier,
            ))
            .unwrap_err();
        assert!(matches!(e, SjError::HomonymConflict(_)));
    }

    #[test]
    fn aliases_resolve_synonyms() {
        let d = SemanticDictionary::default_hpc();
        assert_eq!(d.resolve("NODEID"), "node-id");
        assert!(d.units("NODEID").is_ok());
        assert_eq!(d.units("NODEID").unwrap().name, "node-id");
        assert!(d.dimension("node").is_ok());
    }

    #[test]
    fn alias_to_unknown_canonical_rejected() {
        let mut d = SemanticDictionary::empty();
        assert!(d.register_alias("x", "missing").is_err());
    }

    #[test]
    fn conflicting_alias_rejected() {
        let mut d = SemanticDictionary::default_hpc();
        // NODEID already aliases node-id; re-aliasing identically is fine.
        d.register_alias("NODEID", "node-id").unwrap();
        // Re-aliasing to something else is a homonym.
        assert!(d.register_alias("NODEID", "cpu-id").is_err());
        // Aliasing an existing keyword name is a homonym.
        assert!(d.register_alias("celsius", "fahrenheit").is_err());
    }

    #[test]
    fn validate_accepts_consistent_semantics() {
        let d = SemanticDictionary::default_hpc();
        d.validate(&FieldSemantics::domain("time", "datetime"))
            .unwrap();
        d.validate(&FieldSemantics::value("temperature", "celsius"))
            .unwrap();
    }

    #[test]
    fn validate_rejects_units_on_wrong_dimension() {
        let d = SemanticDictionary::default_hpc();
        let bad = FieldSemantics {
            relation: RelationType::Value,
            dimension: "temperature".into(),
            units: "watts".into(),
        };
        assert!(matches!(
            d.validate(&bad).unwrap_err(),
            SjError::SemanticsInvalid(_)
        ));
    }

    #[test]
    fn validate_rejects_unknown_keywords() {
        let d = SemanticDictionary::default_hpc();
        assert!(d
            .validate(&FieldSemantics::domain("flux-capacitance", "jigawatts"))
            .is_err());
    }

    #[test]
    fn units_of_dimension_lists_all() {
        let d = SemanticDictionary::default_hpc();
        let temps: Vec<&str> = d
            .units_of_dimension("temperature")
            .iter()
            .map(|u| u.name.as_str())
            .collect();
        assert_eq!(temps, vec!["celsius", "fahrenheit"]);
    }

    #[test]
    fn counter_units_exist_for_all_counters() {
        let d = SemanticDictionary::default_hpc();
        for c in ["instructions", "aperf", "mperf", "memory-reads"] {
            assert!(d.units(&format!("{c}-count")).is_ok());
            assert!(d.units(&format!("{c}-per-ms")).is_ok());
        }
    }
}
