//! The knowledge base: named datasets, the active dictionary, and
//! expert-registered derivation rules.
//!
//! Administrators and tool experts register datasets (with semantics) and
//! reusable derivation rules once; analysts then query the catalog through
//! the derivation engine without knowing how the raw tables connect (§3).

use crate::dataset::SjDataset;
use crate::derivations::transform::{DeriveActiveFrequency, DeriveHeat, DeriveRate};
use crate::derivations::Transformation;
use crate::error::{Result, SjError};
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builder signature: given a schema, produce the transformation this rule
/// applies — or `None` when the rule's semantic requirements are not met.
pub type RuleBuilder =
    Arc<dyn Fn(&Schema, &SemanticDictionary) -> Option<Box<dyn Transformation>> + Send + Sync>;

/// An expert-registered derivation rule the engine may use to infer new
/// value columns (e.g. heat from temperatures, rates from counters).
#[derive(Clone)]
pub struct DeriveRule {
    /// Rule name (for plans and diagnostics).
    pub name: String,
    /// Value dimensions this rule can produce.
    pub yields: Vec<String>,
    /// Value dimensions this rule consumes (used by the engine's backward
    /// chaining to pull in the datasets that provide them).
    pub needs: Vec<String>,
    /// Instantiate the transformation for a concrete schema.
    pub build: RuleBuilder,
}

impl std::fmt::Debug for DeriveRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DeriveRule({}: needs {:?} yields {:?})",
            self.name, self.needs, self.yields
        )
    }
}

/// Measured statistics for one registered dataset, consumed by the
/// constraint planner's `estimate` step to order candidate datasets by
/// cost. Collected lazily by [`Catalog::analyze`] — never at
/// registration time, which must stay evaluation-free — or supplied
/// externally through [`Catalog::set_stats`] (e.g. by a router that
/// plans against zero-row schema stubs but knows worker-side counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total row count.
    pub rows: u64,
    /// Distinct-value count per domain *dimension* (canonical dimension
    /// keyword, not column name).
    pub domain_cardinality: BTreeMap<String, u64>,
}

/// The ScrubJay knowledge base.
#[derive(Debug, Clone)]
pub struct Catalog {
    dict: SemanticDictionary,
    datasets: BTreeMap<String, SjDataset>,
    rules: Vec<DeriveRule>,
    stats: BTreeMap<String, DatasetStats>,
}

impl Catalog {
    /// An empty catalog over a dictionary.
    pub fn new(dict: SemanticDictionary) -> Self {
        Catalog {
            dict,
            datasets: BTreeMap::new(),
            rules: Vec::new(),
            stats: BTreeMap::new(),
        }
    }

    /// A catalog over the default HPC dictionary with the paper's default
    /// derivation rules registered.
    pub fn default_hpc() -> Self {
        let mut c = Catalog::new(SemanticDictionary::default_hpc());
        for r in default_rules() {
            c.register_rule(r);
        }
        c
    }

    /// The active semantic dictionary.
    pub fn dict(&self) -> &SemanticDictionary {
        &self.dict
    }

    /// Mutable access to the dictionary (to register new keywords).
    pub fn dict_mut(&mut self) -> &mut SemanticDictionary {
        &mut self.dict
    }

    /// Register a dataset under a unique name, validating its semantics
    /// against the dictionary.
    pub fn register_dataset(&mut self, name: &str, ds: SjDataset) -> Result<()> {
        ds.validate(&self.dict)?;
        if self.datasets.contains_key(name) {
            return Err(SjError::SemanticsInvalid(format!(
                "dataset `{name}` is already registered"
            )));
        }
        self.datasets.insert(name.to_string(), ds);
        Ok(())
    }

    /// Replace the contents of an already-registered dataset, validating
    /// the new version's semantics. Used by streaming ingestion to swap an
    /// epoch-versioned snapshot in for the previous one; any stats for the
    /// name are dropped since they described the old contents.
    pub fn replace_dataset(&mut self, name: &str, ds: SjDataset) -> Result<()> {
        ds.validate(&self.dict)?;
        if !self.datasets.contains_key(name) {
            return Err(SjError::UnknownKeyword(format!("dataset `{name}`")));
        }
        self.datasets.insert(name.to_string(), ds);
        self.stats.remove(name);
        Ok(())
    }

    /// Look up a registered dataset.
    pub fn dataset(&self, name: &str) -> Result<&SjDataset> {
        self.datasets
            .get(name)
            .ok_or_else(|| SjError::UnknownKeyword(format!("dataset `{name}`")))
    }

    /// Names of all registered datasets (sorted).
    pub fn dataset_names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Iterate over (name, dataset) pairs in name order.
    pub fn datasets(&self) -> impl Iterator<Item = (&str, &SjDataset)> {
        self.datasets.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// Register a derivation rule.
    pub fn register_rule(&mut self, rule: DeriveRule) {
        self.rules.push(rule);
    }

    /// All registered rules.
    pub fn rules(&self) -> &[DeriveRule] {
        &self.rules
    }

    /// Statistics for a dataset, if measured or supplied.
    pub fn stats(&self, name: &str) -> Option<&DatasetStats> {
        self.stats.get(name)
    }

    /// Supply statistics for a dataset without evaluating it (the name
    /// need not be registered yet — a router can seed stats for schema
    /// stubs whose rows live on workers).
    pub fn set_stats(&mut self, name: &str, stats: DatasetStats) {
        self.stats.insert(name.to_string(), stats);
    }

    /// Measure statistics for every registered dataset that has none
    /// yet, by evaluating each once (row count + per-domain-dimension
    /// distinct counts). Returns how many datasets were analyzed.
    ///
    /// This is the only catalog operation that touches data; planners
    /// work purely from schemas and whatever stats are present, so
    /// calling this is optional — it sharpens the constraint planner's
    /// estimates but never changes which plans are *found*.
    pub fn analyze(&mut self) -> Result<usize> {
        let mut analyzed = 0;
        for (name, ds) in &self.datasets {
            if self.stats.contains_key(name) {
                continue;
            }
            let rows = ds.collect()?;
            let mut domain_cardinality = BTreeMap::new();
            for field in ds.schema().domain_fields() {
                let idx = ds.schema().index_of(&field.name)?;
                let distinct: std::collections::BTreeSet<String> =
                    rows.iter().map(|r| format!("{:?}", r.get(idx))).collect();
                domain_cardinality.insert(field.semantics.dimension.clone(), distinct.len() as u64);
            }
            self.stats.insert(
                name.clone(),
                DatasetStats {
                    rows: rows.len() as u64,
                    domain_cardinality,
                },
            );
            analyzed += 1;
        }
        Ok(analyzed)
    }
}

/// The default rule set: counter rates, rack heat, and active frequency.
pub fn default_rules() -> Vec<DeriveRule> {
    let counter_dims: Vec<String> = [
        "instructions",
        "cycles",
        "memory-reads",
        "memory-writes",
        "aperf",
        "mperf",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    vec![
        DeriveRule {
            name: "derive_count_rate".into(),
            yields: counter_dims.clone(),
            needs: counter_dims,
            build: Arc::new(|schema, dict| {
                let t = DeriveRate::new(0.001);
                t.derive_schema(schema, dict)
                    .ok()
                    .map(|_| Box::new(DeriveRate::new(0.001)) as Box<dyn Transformation>)
            }),
        },
        DeriveRule {
            name: "derive_heat".into(),
            yields: vec!["heat".into()],
            needs: vec!["temperature".into()],
            build: Arc::new(|schema, dict| {
                DeriveHeat
                    .derive_schema(schema, dict)
                    .ok()
                    .map(|_| Box::new(DeriveHeat) as Box<dyn Transformation>)
            }),
        },
        DeriveRule {
            name: "derive_active_frequency".into(),
            yields: vec!["frequency".into()],
            needs: vec!["aperf".into(), "mperf".into(), "base-frequency".into()],
            build: Arc::new(|schema, dict| {
                DeriveActiveFrequency
                    .derive_schema(schema, dict)
                    .ok()
                    .map(|_| Box::new(DeriveActiveFrequency) as Box<dyn Transformation>)
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::value::Value;
    use sjdf::ExecCtx;

    fn sample(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        SjDataset::from_rows(
            ctx,
            vec![Row::new(vec![Value::str("n1"), Value::str("r1")])],
            schema,
            "layout",
            1,
        )
    }

    #[test]
    fn register_and_lookup_datasets() {
        let ctx = ExecCtx::local();
        let mut c = Catalog::default_hpc();
        c.register_dataset("layout", sample(&ctx)).unwrap();
        assert!(c.dataset("layout").is_ok());
        assert!(c.dataset("missing").is_err());
        assert_eq!(c.dataset_names(), vec!["layout"]);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let ctx = ExecCtx::local();
        let mut c = Catalog::default_hpc();
        c.register_dataset("layout", sample(&ctx)).unwrap();
        assert!(c.register_dataset("layout", sample(&ctx)).is_err());
    }

    #[test]
    fn registration_validates_semantics() {
        let ctx = ExecCtx::local();
        let mut c = Catalog::new(SemanticDictionary::empty());
        assert!(c.register_dataset("layout", sample(&ctx)).is_err());
    }

    #[test]
    fn default_rules_cover_case_studies() {
        let c = Catalog::default_hpc();
        let names: Vec<&str> = c.rules().iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"derive_heat"));
        assert!(names.contains(&"derive_active_frequency"));
        assert!(names.contains(&"derive_count_rate"));
    }

    #[test]
    fn heat_rule_builds_only_on_matching_schema() {
        let ctx = ExecCtx::local();
        let c = Catalog::default_hpc();
        let heat = c.rules().iter().find(|r| r.name == "derive_heat").unwrap();
        assert!((heat.build)(sample(&ctx).schema(), c.dict()).is_none());
    }
}
