//! An embedded NoSQL-style key-value table store.
//!
//! Stands in for the Cassandra cluster the paper's deployment ingests
//! monitoring streams into: tables of string-keyed documents with a
//! wrap/unwrap path into ScrubJay datasets. Only the ingestion-facing
//! behaviour matters to ScrubJay, so the store is in-process and
//! append-oriented with per-table scans.

use crate::dataset::SjDataset;
use crate::error::{Result, SjError};
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::units::time::{TimeSpan, Timestamp};
use crate::units::UnitKind;
use crate::value::Value;
use parking_lot::RwLock;
use sjdf::ExecCtx;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One table: an append-ordered list of string-keyed documents.
#[derive(Debug, Clone, Default)]
pub struct KvTable {
    docs: Vec<BTreeMap<String, String>>,
}

impl KvTable {
    /// Append a document.
    pub fn insert(&mut self, doc: BTreeMap<String, String>) {
        self.docs.push(doc);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if the table holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Iterate documents in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &BTreeMap<String, String>> {
        self.docs.iter()
    }

    /// The union of keys appearing in any document (the implicit schema).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.docs.iter().flat_map(|d| d.keys().cloned()).collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// A thread-safe store of named tables.
#[derive(Debug, Clone, Default)]
pub struct KvStore {
    tables: Arc<RwLock<BTreeMap<String, KvTable>>>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Append a document to a table, creating the table on first use.
    pub fn insert(&self, table: &str, doc: BTreeMap<String, String>) {
        self.tables
            .write()
            .entry(table.to_string())
            .or_default()
            .insert(doc);
    }

    /// Snapshot a table's contents.
    pub fn table(&self, name: &str) -> Result<KvTable> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SjError::UnknownKeyword(format!("table `{name}`")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Wrap a table into a dataset: each schema column is read from the
    /// document field of the same name and parsed according to its units.
    /// Missing fields become nulls (NoSQL documents are sparse).
    pub fn wrap(
        &self,
        ctx: &ExecCtx,
        table: &str,
        schema: Schema,
        dict: &SemanticDictionary,
        partitions: usize,
    ) -> Result<SjDataset> {
        schema.validate(dict)?;
        let t = self.table(table)?;
        let kinds: Vec<UnitKind> = schema
            .fields()
            .iter()
            .map(|f| dict.units(&f.semantics.units).map(|u| u.kind.clone()))
            .collect::<Result<_>>()?;
        let mut rows = Vec::with_capacity(t.len());
        for doc in t.scan() {
            let mut values = Vec::with_capacity(schema.len());
            for (f, kind) in schema.fields().iter().zip(&kinds) {
                match doc.get(&f.name) {
                    None => values.push(Value::Null),
                    Some(raw) => values.push(parse_doc_value(raw, kind, dict)?),
                }
            }
            rows.push(Row::new(values));
        }
        Ok(SjDataset::from_rows(ctx, rows, schema, table, partitions))
    }

    /// Unwrap a dataset into a (new or existing) table, one document per
    /// row, skipping null cells.
    pub fn unwrap(&self, table: &str, ds: &SjDataset) -> Result<usize> {
        let rows = ds.collect()?;
        let names: Vec<String> = ds
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let n = rows.len();
        for row in rows {
            let mut doc = BTreeMap::new();
            for (name, v) in names.iter().zip(row.values()) {
                if !v.is_null() {
                    doc.insert(name.clone(), render_doc_value(v));
                }
            }
            self.insert(table, doc);
        }
        Ok(n)
    }
}

fn parse_doc_value(raw: &str, kind: &UnitKind, dict: &SemanticDictionary) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    match kind {
        UnitKind::Identifier => Ok(Value::str(raw)),
        UnitKind::DateTime => Timestamp::parse(raw)
            .map(Value::Time)
            .ok_or_else(|| SjError::ParseError(format!("bad datetime `{raw}`"))),
        UnitKind::TimeSpanKind => {
            let (a, b) = raw
                .split_once("..")
                .ok_or_else(|| SjError::ParseError(format!("bad span `{raw}`")))?;
            match (Timestamp::parse(a.trim()), Timestamp::parse(b.trim())) {
                (Some(s), Some(e)) => Ok(Value::Span(TimeSpan::new(s, e))),
                _ => Err(SjError::ParseError(format!("bad span `{raw}`"))),
            }
        }
        UnitKind::ListOf { element } => {
            let elem = dict.units(element)?;
            let items: Result<Vec<Value>> = raw
                .split('|')
                .map(|i| parse_doc_value(i, &elem.kind, dict))
                .collect();
            Ok(Value::list(items?))
        }
        UnitKind::CumulativeCount => raw
            .parse::<i64>()
            .map(Value::Int)
            .or_else(|_| raw.parse::<f64>().map(Value::Float))
            .map_err(|_| SjError::ParseError(format!("bad count `{raw}`"))),
        UnitKind::Scalar { .. } | UnitKind::Rate { .. } => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SjError::ParseError(format!("bad number `{raw}`"))),
    }
}

fn render_doc_value(v: &Value) -> String {
    match v {
        Value::Span(s) => format!("{} .. {}", s.start, s.end),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("watts", FieldSemantics::value("power", "watts")),
        ])
        .unwrap()
    }

    fn doc(time: &str, node: &str, watts: &str) -> BTreeMap<String, String> {
        let mut d = BTreeMap::new();
        d.insert("time".into(), time.into());
        d.insert("node".into(), node.into());
        if !watts.is_empty() {
            d.insert("watts".into(), watts.into());
        }
        d
    }

    #[test]
    fn insert_scan_round_trip() {
        let store = KvStore::new();
        store.insert("ldms", doc("2017-01-01 00:00:00", "n1", "250"));
        store.insert("ldms", doc("2017-01-01 00:00:01", "n2", "260"));
        let t = store.table("ldms").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.keys(), vec!["node", "time", "watts"]);
        assert!(store.table("missing").is_err());
    }

    #[test]
    fn wrap_parses_by_units_and_handles_sparse_docs() {
        let ctx = ExecCtx::local();
        let store = KvStore::new();
        store.insert("ldms", doc("2017-01-01 00:00:00", "n1", "250"));
        store.insert("ldms", doc("2017-01-01 00:00:01", "n2", ""));
        let ds = store.wrap(&ctx, "ldms", schema(), &dict(), 2).unwrap();
        let rows = ds.collect().unwrap();
        assert_eq!(rows[0].get(2).as_f64(), Some(250.0));
        assert!(rows[1].get(2).is_null());
    }

    #[test]
    fn unwrap_then_wrap_round_trips() {
        let ctx = ExecCtx::local();
        let store = KvStore::new();
        store.insert("ldms", doc("2017-01-01 00:00:00", "n1", "250"));
        let ds = store.wrap(&ctx, "ldms", schema(), &dict(), 1).unwrap();
        let n = store.unwrap("copy", &ds).unwrap();
        assert_eq!(n, 1);
        let ds2 = store.wrap(&ctx, "copy", schema(), &dict(), 1).unwrap();
        assert_eq!(ds.collect().unwrap(), ds2.collect().unwrap());
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let store = KvStore::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for j in 0..50 {
                        store.insert("t", doc("2017-01-01 00:00:00", &format!("n{i}-{j}"), "1"));
                    }
                });
            }
        });
        assert_eq!(store.table("t").unwrap().len(), 200);
    }

    #[test]
    fn bad_values_error_with_context() {
        let ctx = ExecCtx::local();
        let store = KvStore::new();
        store.insert("ldms", doc("yesterday-ish", "n1", "250"));
        assert!(store.wrap(&ctx, "ldms", schema(), &dict(), 1).is_err());
    }
}
