//! Data wrappers and unwrappers (§4.1, §5.4).
//!
//! Wrappers parse data stored in some external format into a ScrubJayRDD;
//! unwrappers convert a derived dataset back into a storage format for
//! sharing or analysis with other tools. ScrubJay provides wrappers for
//! CSV files and NoSQL-style key-value tables; tool experts can add custom
//! wrappers by producing an [`crate::SjDataset`] from any source.

mod csv;
mod kvstore;

pub use csv::{unwrap_csv, wrap_csv, write_csv_file, CsvOptions};
pub use kvstore::{KvStore, KvTable};
