//! CSV wrapper and unwrapper.
//!
//! A minimal, dependency-free CSV dialect: comma separation, double-quote
//! quoting with `""` escapes, and `\n`/`\r\n` record separators. Cell
//! parsing is driven by the column's *units* looked up in the semantic
//! dictionary — datetimes parse as `YYYY-MM-DD HH:MM:SS`, spans as
//! `start .. end`, lists as `a|b|c`, scalars as numbers, identifiers as
//! text — so the same wrapper handles every tabular source.

use crate::dataset::SjDataset;
use crate::error::{Result, SjError};
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::units::time::{TimeSpan, Timestamp};
use crate::units::UnitKind;
use crate::value::Value;
use sjdf::ExecCtx;

/// Wrapping options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Whether the first record is a header naming the columns. When true
    /// the header order may differ from the schema order.
    pub has_header: bool,
    /// Number of partitions for the wrapped dataset.
    pub partitions: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            has_header: true,
            partitions: 4,
        }
    }
}

/// Split a CSV text into records of fields (quote-aware).
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(SjError::ParseError("quote inside unquoted field".into()));
                    }
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(SjError::ParseError("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parse one cell according to its units.
fn parse_cell(raw: &str, kind: &UnitKind, dict: &SemanticDictionary) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    match kind {
        UnitKind::Identifier => Ok(Value::str(raw)),
        UnitKind::DateTime => Timestamp::parse(raw)
            .map(Value::Time)
            .ok_or_else(|| SjError::ParseError(format!("bad datetime `{raw}`"))),
        UnitKind::TimeSpanKind => {
            let (a, b) = raw
                .split_once("..")
                .ok_or_else(|| SjError::ParseError(format!("bad span `{raw}`")))?;
            let start = Timestamp::parse(a.trim())
                .ok_or_else(|| SjError::ParseError(format!("bad span start `{a}`")))?;
            let end = Timestamp::parse(b.trim())
                .ok_or_else(|| SjError::ParseError(format!("bad span end `{b}`")))?;
            Ok(Value::Span(TimeSpan::new(start, end)))
        }
        UnitKind::ListOf { element } => {
            let elem_units = dict.units(element)?;
            let items: Result<Vec<Value>> = raw
                .split('|')
                .map(|item| parse_cell(item, &elem_units.kind, dict))
                .collect();
            Ok(Value::list(items?))
        }
        UnitKind::CumulativeCount => raw
            .parse::<i64>()
            .map(Value::Int)
            .or_else(|_| raw.parse::<f64>().map(Value::Float))
            .map_err(|_| SjError::ParseError(format!("bad count `{raw}`"))),
        UnitKind::Scalar { .. } | UnitKind::Rate { .. } => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SjError::ParseError(format!("bad number `{raw}`"))),
    }
}

/// Wrap a CSV text into a dataset with the given schema.
pub fn wrap_csv(
    ctx: &ExecCtx,
    text: &str,
    schema: Schema,
    dict: &SemanticDictionary,
    name: &str,
    opts: &CsvOptions,
) -> Result<SjDataset> {
    schema.validate(dict)?;
    let mut records = parse_records(text)?;
    // Map CSV column positions to schema positions.
    let order: Vec<usize> = if opts.has_header {
        if records.is_empty() {
            return Err(SjError::ParseError("missing header record".into()));
        }
        let header = records.remove(0);
        let mut order = Vec::with_capacity(schema.len());
        for f in schema.fields() {
            let pos = header
                .iter()
                .position(|h| h.trim() == f.name)
                .ok_or_else(|| {
                    SjError::ParseError(format!("header is missing column `{}`", f.name))
                })?;
            order.push(pos);
        }
        order
    } else {
        (0..schema.len()).collect()
    };

    let kinds: Vec<UnitKind> = schema
        .fields()
        .iter()
        .map(|f| dict.units(&f.semantics.units).map(|u| u.kind.clone()))
        .collect::<Result<_>>()?;

    let mut rows = Vec::with_capacity(records.len());
    for (lineno, rec) in records.iter().enumerate() {
        let mut values = Vec::with_capacity(schema.len());
        for (slot, &pos) in order.iter().enumerate() {
            let raw = rec.get(pos).ok_or_else(|| {
                SjError::ParseError(format!(
                    "record {} has {} fields, expected at least {}",
                    lineno + 1,
                    rec.len(),
                    pos + 1
                ))
            })?;
            values.push(
                parse_cell(raw, &kinds[slot], dict)
                    .map_err(|e| SjError::ParseError(format!("record {}: {e}", lineno + 1)))?,
            );
        }
        rows.push(Row::new(values));
    }
    Ok(SjDataset::from_rows(
        ctx,
        rows,
        schema,
        name,
        opts.partitions,
    ))
}

fn escape_cell(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Span(s) => format!("{} .. {}", s.start, s.end),
        other => other.to_string(),
    }
}

/// Unwrap a dataset into CSV text (with header).
pub fn unwrap_csv(ds: &SjDataset) -> Result<String> {
    let mut out = String::new();
    let header: Vec<String> = ds
        .schema()
        .fields()
        .iter()
        .map(|f| escape_cell(&f.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in ds.collect()? {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| escape_cell(&render_cell(v)))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    Ok(out)
}

/// Unwrap a dataset into a CSV file on disk.
pub fn write_csv_file(ds: &SjDataset, path: impl AsRef<std::path::Path>) -> Result<()> {
    let text = unwrap_csv(ds)?;
    std::fs::write(path, text).map_err(|e| SjError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn temp_schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("timestamp", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("node_id", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("node_temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap()
    }

    #[test]
    fn wraps_basic_csv_with_header() {
        let ctx = ExecCtx::local();
        let text = "timestamp,node_id,node_temp\n\
                    2017-03-27 16:43:27,cab5,67.4\n\
                    2017-03-27 16:45:27,cab6,61.2\n";
        let ds = wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "temps",
            &CsvOptions::default(),
        )
        .unwrap();
        let rows = ds.collect().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1).as_str(), Some("cab5"));
        assert_eq!(rows[0].get(2).as_f64(), Some(67.4));
        assert_eq!(
            rows[0].get(0).as_time(),
            Timestamp::parse("2017-03-27 16:43:27")
        );
    }

    #[test]
    fn header_order_may_differ_from_schema() {
        let ctx = ExecCtx::local();
        let text = "node_temp,timestamp,node_id\n67.4,2017-03-27 16:43:27,cab5\n";
        let ds = wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "t",
            &CsvOptions::default(),
        )
        .unwrap();
        let rows = ds.collect().unwrap();
        assert_eq!(rows[0].get(1).as_str(), Some("cab5"));
        assert_eq!(rows[0].get(2).as_f64(), Some(67.4));
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let recs = parse_records("a,\"b,c\",\"d\"\"e\"\nf,,\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], vec!["a", "b,c", "d\"e"]);
        assert_eq!(recs[1], vec!["f", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(parse_records("a,\"bc\n").is_err());
    }

    #[test]
    fn lists_and_spans_parse() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![
            FieldDef::new(
                "nodelist",
                FieldSemantics::domain("compute-node", "node-list"),
            ),
            FieldDef::new("window", FieldSemantics::domain("time", "timespan")),
        ])
        .unwrap();
        let text = "nodelist,window\n\
                    cab1|cab2|cab3,2017-03-27 10:00:00 .. 2017-03-27 11:00:00\n";
        let ds = wrap_csv(&ctx, text, schema, &dict(), "jobs", &CsvOptions::default()).unwrap();
        let rows = ds.collect().unwrap();
        assert_eq!(rows[0].get(0).as_list().unwrap().len(), 3);
        let span = rows[0].get(1).as_span().unwrap();
        assert_eq!(span.duration_secs(), 3600.0);
    }

    #[test]
    fn empty_cells_become_null() {
        let ctx = ExecCtx::local();
        let text = "timestamp,node_id,node_temp\n2017-01-01 00:00:00,cab5,\n";
        let ds = wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "t",
            &CsvOptions::default(),
        )
        .unwrap();
        assert!(ds.collect().unwrap()[0].get(2).is_null());
    }

    #[test]
    fn malformed_cells_report_record_number() {
        let ctx = ExecCtx::local();
        let text = "timestamp,node_id,node_temp\n2017-01-01 00:00:00,cab5,not-a-number\n";
        let e = wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "t",
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("record 1"));
    }

    #[test]
    fn missing_header_column_is_an_error() {
        let ctx = ExecCtx::local();
        let text = "timestamp,node_temp\n2017-01-01 00:00:00,4.2\n";
        assert!(wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "t",
            &CsvOptions::default()
        )
        .is_err());
    }

    #[test]
    fn unwrap_round_trips() {
        let ctx = ExecCtx::local();
        let text = "timestamp,node_id,node_temp\n\
                    2017-03-27 16:43:27,cab5,67.4\n\
                    2017-03-27 16:45:27,\"we,ird\",61.2\n";
        let ds = wrap_csv(
            &ctx,
            text,
            temp_schema(),
            &dict(),
            "t",
            &CsvOptions::default(),
        )
        .unwrap();
        let csv = unwrap_csv(&ds).unwrap();
        let ds2 = wrap_csv(
            &ctx,
            &csv,
            temp_schema(),
            &dict(),
            "t2",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(ds.collect().unwrap(), ds2.collect().unwrap());
    }

    #[test]
    fn headerless_mode_uses_schema_order() {
        let ctx = ExecCtx::local();
        let text = "2017-03-27 16:43:27,cab5,67.4\n";
        let opts = CsvOptions {
            has_header: false,
            partitions: 1,
        };
        let ds = wrap_csv(&ctx, text, temp_schema(), &dict(), "t", &opts).unwrap();
        assert_eq!(ds.count().unwrap(), 1);
    }
}
