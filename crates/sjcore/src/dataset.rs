//! `SjDataset`: the ScrubJayRDD — a distributed dataset plus its semantic
//! schema and provenance name.
//!
//! The dataset carries one of two physical representations:
//!
//! * **Rows** — the original `Rdd<Row>` layout. Selected when the
//!   execution context runs in rowwise mode
//!   ([`sjdf::ExecCtx::set_rowwise`]); kept intact as the reference
//!   baseline the columnar path is benchmarked and byte-identity-checked
//!   against.
//! * **Batches** — the columnar layout (default): an
//!   `Rdd<ColumnarPartition>` of typed column vectors, plus a queue of
//!   *pending* narrow kernels ([`ColKernel`]) accumulated at
//!   lineage-build time and fused into a single per-partition pass when
//!   the data is finally needed.
//!
//! Either way the logical contents are rows; [`SjDataset::rdd`] always
//! yields the row view, so representation-agnostic consumers (natural
//! join, custom derivations, CSV export) work unchanged.

use crate::column::ColumnarPartition;
use crate::error::Result;
use crate::fuse::{apply_kernels, ColKernel};
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::value::Value;
use sjdf::{ExecCtx, Rdd};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Rows(Rdd<Row>),
    Batches {
        rdd: Rdd<ColumnarPartition>,
        pending: Arc<Vec<ColKernel>>,
    },
}

/// A semantically annotated, distributed, lazy dataset (the paper's
/// ScrubJayRDD).
#[derive(Clone)]
pub struct SjDataset {
    repr: Repr,
    schema: Schema,
    name: String,
    /// Monotonic ingest version. Batch datasets stay at 0; streaming
    /// ingestion bumps the epoch on every accepted append so cached
    /// evaluations can be keyed on (epoch, window id).
    epoch: u64,
}

impl SjDataset {
    /// Wrap an existing row RDD with a schema and a provenance name. In
    /// columnar mode the rows are re-batched lazily (one typed batch per
    /// partition); in rowwise mode they are kept as-is.
    pub fn new(rdd: Rdd<Row>, schema: Schema, name: impl Into<String>) -> Self {
        let repr = if rdd.ctx().columnar() {
            Repr::Batches {
                rdd: rows_to_batches(&rdd),
                pending: Arc::new(Vec::new()),
            }
        } else {
            Repr::Rows(rdd)
        };
        SjDataset {
            repr,
            schema,
            name: name.into(),
            epoch: 0,
        }
    }

    /// Wrap an existing columnar RDD with a schema and a provenance name.
    pub fn from_batches(
        rdd: Rdd<ColumnarPartition>,
        schema: Schema,
        name: impl Into<String>,
    ) -> Self {
        SjDataset {
            repr: Repr::Batches {
                rdd,
                pending: Arc::new(Vec::new()),
            },
            schema,
            name: name.into(),
            epoch: 0,
        }
    }

    /// Distribute in-memory rows over `parts` partitions. In columnar mode
    /// the batches are built eagerly on the driver (mirroring
    /// `Rdd::parallelize`'s contiguous chunking) so later actions never
    /// re-transpose the source.
    pub fn from_rows(
        ctx: &ExecCtx,
        rows: Vec<Row>,
        schema: Schema,
        name: impl Into<String>,
        parts: usize,
    ) -> Self {
        if !ctx.columnar() {
            return SjDataset {
                repr: Repr::Rows(Rdd::parallelize(ctx, rows, parts)),
                schema,
                name: name.into(),
                epoch: 0,
            };
        }
        let parts = parts.max(1);
        let per = rows.len().div_ceil(parts).max(1);
        let batches: Vec<ColumnarPartition> = rows
            .chunks(per)
            .map(ColumnarPartition::from_rows)
            .chain(std::iter::repeat_with(|| ColumnarPartition::empty(0)))
            .take(parts)
            .collect();
        SjDataset::from_batches(Rdd::parallelize(ctx, batches, parts), schema, name)
    }

    /// The dataset's semantic schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Provenance name (source dataset or derivation description).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The execution context this dataset is bound to.
    pub fn ctx(&self) -> &ExecCtx {
        match &self.repr {
            Repr::Rows(r) => r.ctx(),
            Repr::Batches { rdd, .. } => rdd.ctx(),
        }
    }

    /// True if this dataset is physically columnar.
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Batches { .. })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        match &self.repr {
            Repr::Rows(r) => r.num_partitions(),
            Repr::Batches { rdd, .. } => rdd.num_partitions(),
        }
    }

    /// The distributed row view. For columnar datasets this appends a
    /// lazy `to_rows` stage (after flushing pending fused kernels);
    /// rowwise datasets return their RDD directly.
    pub fn rdd(&self) -> Rdd<Row> {
        match &self.repr {
            Repr::Rows(r) => r.clone(),
            Repr::Batches { .. } => self
                .batch_rdd()
                .map_partitions_named("to_rows", move |batches| {
                    batches.iter().flat_map(|b| b.to_rows()).collect()
                }),
        }
    }

    /// The distributed columnar view, with any pending narrow kernels
    /// fused into a single per-partition pass. Rowwise datasets are
    /// transposed lazily.
    pub fn batch_rdd(&self) -> Rdd<ColumnarPartition> {
        match &self.repr {
            Repr::Rows(r) => rows_to_batches(r),
            Repr::Batches { rdd, pending } => {
                if pending.is_empty() {
                    rdd.clone()
                } else {
                    let kernels = Arc::clone(pending);
                    rdd.map_partitions_named("fused_narrow", move |batches| {
                        batches.iter().map(|b| apply_kernels(b, &kernels)).collect()
                    })
                }
            }
        }
    }

    /// Record a narrow kernel to run fused with any already pending, and
    /// install the post-kernel schema and provenance name. Rowwise
    /// datasets are first transposed (callers on the rowwise path use the
    /// per-row transformation instead).
    pub fn with_kernel(&self, kernel: ColKernel, schema: Schema, name: impl Into<String>) -> Self {
        let (rdd, mut pending) = match &self.repr {
            Repr::Rows(r) => (rows_to_batches(r), Vec::new()),
            Repr::Batches { rdd, pending } => (rdd.clone(), pending.as_ref().clone()),
        };
        pending.push(kernel);
        SjDataset {
            repr: Repr::Batches {
                rdd,
                pending: Arc::new(pending),
            },
            schema,
            name: name.into(),
            epoch: 0,
        }
    }

    /// The dataset's ingest epoch (0 for frozen batch datasets).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Tag this dataset with an ingest epoch (streaming re-registration).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Replace the provenance name.
    pub fn renamed(self, name: impl Into<String>) -> Self {
        SjDataset {
            name: name.into(),
            ..self
        }
    }

    /// Validate the schema against a dictionary.
    pub fn validate(&self, dict: &SemanticDictionary) -> Result<()> {
        self.schema.validate(dict)
    }

    /// Evaluate and gather all rows.
    pub fn collect(&self) -> Result<Vec<Row>> {
        match &self.repr {
            Repr::Rows(r) => Ok(r.collect()?),
            Repr::Batches { .. } => {
                let batches = self.batch_rdd().collect()?;
                Ok(batches.iter().flat_map(|b| b.to_rows()).collect())
            }
        }
    }

    /// Evaluate and count rows. Columnar datasets count from batch
    /// lengths without rebuilding rows.
    pub fn count(&self) -> Result<usize> {
        match &self.repr {
            Repr::Rows(r) => Ok(r.count()?),
            Repr::Batches { .. } => {
                let lens = self.batch_rdd().map(|b| b.len()).collect()?;
                Ok(lens.into_iter().sum())
            }
        }
    }

    /// First `n` rows in partition order.
    pub fn head(&self, n: usize) -> Result<Vec<Row>> {
        Ok(self.rdd().take(n)?)
    }

    /// Evaluate and gather one column by name.
    pub fn collect_column(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        match &self.repr {
            Repr::Rows(r) => {
                let rows = r.collect()?;
                Ok(rows.into_iter().map(|r| r.get(idx).clone()).collect())
            }
            Repr::Batches { .. } => {
                let batches = self.batch_rdd().collect()?;
                Ok(batches
                    .iter()
                    .flat_map(|b| (0..b.len()).map(|r| b.value_at(r, idx)))
                    .collect())
            }
        }
    }

    /// Render the first `n` rows as an aligned text table (for examples
    /// and debugging).
    pub fn show(&self, n: usize) -> Result<String> {
        let rows = self.head(n)?;
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        for r in &rendered {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        Ok(out)
    }
}

/// Lazily transpose a row RDD into one typed batch per partition.
fn rows_to_batches(rdd: &Rdd<Row>) -> Rdd<ColumnarPartition> {
    rdd.map_partitions_named("to_columnar", |rows| {
        vec![ColumnarPartition::from_rows(&rows)]
    })
}

impl std::fmt::Debug for SjDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SjDataset({}, {} partitions, {}, schema {})",
            self.name,
            self.num_partitions(),
            if self.is_columnar() {
                "columnar"
            } else {
                "rowwise"
            },
            self.schema
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn sample(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("cab1"), Value::Float(61.0)]),
            Row::new(vec![Value::str("cab2"), Value::Float(64.5)]),
            Row::new(vec![Value::str("cab3"), Value::Float(59.9)]),
        ];
        SjDataset::from_rows(ctx, rows, schema, "temps", 2)
    }

    #[test]
    fn round_trip_rows() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        assert!(ds.is_columnar());
        assert_eq!(ds.count().unwrap(), 3);
        let rows = ds.collect().unwrap();
        assert_eq!(rows[0].get(0).as_str(), Some("cab1"));
    }

    #[test]
    fn rowwise_mode_keeps_row_repr() {
        let ctx = ExecCtx::local().with_rowwise();
        let ds = sample(&ctx);
        assert!(!ds.is_columnar());
        assert_eq!(ds.count().unwrap(), 3);
        assert_eq!(ds.collect().unwrap()[2].get(0).as_str(), Some("cab3"));
    }

    #[test]
    fn both_modes_agree_on_contents() {
        let columnar = {
            let ctx = ExecCtx::local();
            sample(&ctx).collect().unwrap()
        };
        let rowwise = {
            let ctx = ExecCtx::local().with_rowwise();
            sample(&ctx).collect().unwrap()
        };
        assert_eq!(columnar, rowwise);
    }

    #[test]
    fn row_view_of_columnar_dataset_matches() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        let via_rdd = ds.rdd().collect().unwrap();
        assert_eq!(via_rdd, ds.collect().unwrap());
        assert_eq!(ds.num_partitions(), 2);
    }

    #[test]
    fn collect_column_extracts_cells() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        let temps = ds.collect_column("temp").unwrap();
        assert_eq!(temps.len(), 3);
        assert_eq!(temps[1], Value::Float(64.5));
        assert!(ds.collect_column("nope").is_err());
    }

    #[test]
    fn validates_against_dictionary() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
        ds.validate(&SemanticDictionary::empty()).unwrap_err();
    }

    #[test]
    fn show_renders_aligned_table() {
        let ctx = ExecCtx::local();
        let out = sample(&ctx).show(2).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("node"));
        assert!(lines[1].contains("cab1"));
    }

    #[test]
    fn renamed_changes_provenance() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx).renamed("derived");
        assert_eq!(ds.name(), "derived");
    }

    #[test]
    fn more_partitions_than_rows_pads_with_empty_batches() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![FieldDef::new(
            "node",
            FieldSemantics::domain("compute-node", "node-id"),
        )])
        .unwrap();
        let rows = vec![Row::new(vec![Value::str("cab1")])];
        let ds = SjDataset::from_rows(&ctx, rows, schema, "tiny", 4);
        assert_eq!(ds.num_partitions(), 4);
        assert_eq!(ds.count().unwrap(), 1);
    }
}
