//! `SjDataset`: the ScrubJayRDD — a distributed row dataset plus its
//! semantic schema and provenance name.

use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::value::Value;
use sjdf::{ExecCtx, Rdd};

/// A semantically annotated, distributed, lazy dataset (the paper's
/// ScrubJayRDD).
#[derive(Clone)]
pub struct SjDataset {
    rdd: Rdd<Row>,
    schema: Schema,
    name: String,
}

impl SjDataset {
    /// Wrap an existing row RDD with a schema and a provenance name.
    pub fn new(rdd: Rdd<Row>, schema: Schema, name: impl Into<String>) -> Self {
        SjDataset {
            rdd,
            schema,
            name: name.into(),
        }
    }

    /// Distribute in-memory rows over `parts` partitions.
    pub fn from_rows(
        ctx: &ExecCtx,
        rows: Vec<Row>,
        schema: Schema,
        name: impl Into<String>,
        parts: usize,
    ) -> Self {
        SjDataset::new(Rdd::parallelize(ctx, rows, parts), schema, name)
    }

    /// The dataset's semantic schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Provenance name (source dataset or derivation description).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying distributed row collection.
    pub fn rdd(&self) -> &Rdd<Row> {
        &self.rdd
    }

    /// Replace the provenance name.
    pub fn renamed(self, name: impl Into<String>) -> Self {
        SjDataset {
            name: name.into(),
            ..self
        }
    }

    /// Validate the schema against a dictionary.
    pub fn validate(&self, dict: &SemanticDictionary) -> Result<()> {
        self.schema.validate(dict)
    }

    /// Evaluate and gather all rows.
    pub fn collect(&self) -> Result<Vec<Row>> {
        Ok(self.rdd.collect()?)
    }

    /// Evaluate and count rows.
    pub fn count(&self) -> Result<usize> {
        Ok(self.rdd.count()?)
    }

    /// First `n` rows in partition order.
    pub fn head(&self, n: usize) -> Result<Vec<Row>> {
        Ok(self.rdd.take(n)?)
    }

    /// Evaluate and gather one column by name.
    pub fn collect_column(&self, column: &str) -> Result<Vec<Value>> {
        let idx = self.schema.index_of(column)?;
        let rows = self.collect()?;
        Ok(rows.into_iter().map(|r| r.get(idx).clone()).collect())
    }

    /// Render the first `n` rows as an aligned text table (for examples
    /// and debugging).
    pub fn show(&self, n: usize) -> Result<String> {
        let rows = self.head(n)?;
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        if i < widths.len() {
                            widths[i] = widths[i].max(s.len());
                        }
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        for r in &rendered {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        Ok(out)
    }
}

impl std::fmt::Debug for SjDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SjDataset({}, {} partitions, schema {})",
            self.name,
            self.rdd.num_partitions(),
            self.schema
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn sample(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("cab1"), Value::Float(61.0)]),
            Row::new(vec![Value::str("cab2"), Value::Float(64.5)]),
            Row::new(vec![Value::str("cab3"), Value::Float(59.9)]),
        ];
        SjDataset::from_rows(ctx, rows, schema, "temps", 2)
    }

    #[test]
    fn round_trip_rows() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        assert_eq!(ds.count().unwrap(), 3);
        let rows = ds.collect().unwrap();
        assert_eq!(rows[0].get(0).as_str(), Some("cab1"));
    }

    #[test]
    fn collect_column_extracts_cells() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        let temps = ds.collect_column("temp").unwrap();
        assert_eq!(temps.len(), 3);
        assert_eq!(temps[1], Value::Float(64.5));
        assert!(ds.collect_column("nope").is_err());
    }

    #[test]
    fn validates_against_dictionary() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx);
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
        ds.validate(&SemanticDictionary::empty()).unwrap_err();
    }

    #[test]
    fn show_renders_aligned_table() {
        let ctx = ExecCtx::local();
        let out = sample(&ctx).show(2).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("node"));
        assert!(lines[1].contains("cab1"));
    }

    #[test]
    fn renamed_changes_provenance() {
        let ctx = ExecCtx::local();
        let ds = sample(&ctx).renamed("derived");
        assert_eq!(ds.name(), "derived");
    }
}
