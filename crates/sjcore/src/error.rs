//! Error types for ScrubJay core.

use std::fmt;

/// Errors produced by semantic validation, derivations, wrappers, and the
/// derivation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SjError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A dimension or units keyword is not present in the active semantic
    /// dictionary.
    UnknownKeyword(String),
    /// Registering a dictionary entry whose name already exists with a
    /// different definition (a homonym).
    HomonymConflict(String),
    /// A dataset failed validation against the active dictionary.
    SemanticsInvalid(String),
    /// A derivation cannot apply to the given schema(s).
    NotApplicable {
        /// The derivation's name.
        derivation: String,
        /// Why it does not apply.
        reason: String,
    },
    /// A unit conversion between incompatible units was requested.
    IncompatibleUnits {
        /// Source units keyword.
        from: String,
        /// Target units keyword.
        to: String,
    },
    /// The derivation engine found no derivation sequence satisfying the
    /// query, and exhausted the search space: the query is provably
    /// unsatisfiable against this catalog.
    NoSolution(String),
    /// The derivation search hit its dataset budget before exhausting
    /// the space. Unlike [`SjError::NoSolution`] this is *not* a proof
    /// of unsatisfiability — retrying with a larger `max_datasets`
    /// budget may find a plan.
    SearchTruncated {
        /// Human-readable description of the query.
        query: String,
        /// The `max_datasets` budget that stopped the search.
        max_datasets: usize,
    },
    /// A wrapper failed to parse its input.
    ParseError(String),
    /// An I/O failure in a wrapper or the result cache.
    Io(String),
    /// A value had an unexpected runtime type.
    TypeError(String),
    /// An error bubbled up from the data-parallel substrate.
    Exec(String),
}

impl fmt::Display for SjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SjError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            SjError::UnknownKeyword(k) => {
                write!(f, "keyword `{k}` is not in the semantic dictionary")
            }
            SjError::HomonymConflict(k) => write!(
                f,
                "dictionary entry `{k}` already exists with a different definition"
            ),
            SjError::SemanticsInvalid(msg) => write!(f, "invalid semantics: {msg}"),
            SjError::NotApplicable { derivation, reason } => {
                write!(f, "derivation `{derivation}` not applicable: {reason}")
            }
            SjError::IncompatibleUnits { from, to } => {
                write!(f, "cannot convert units `{from}` to `{to}`")
            }
            SjError::NoSolution(q) => write!(f, "no derivation sequence satisfies query: {q}"),
            SjError::SearchTruncated {
                query,
                max_datasets,
            } => write!(
                f,
                "derivation search for query {query} was truncated at its budget of \
                 {max_datasets} datasets (not provably unsatisfiable; retry with a \
                 larger max_datasets)"
            ),
            SjError::ParseError(msg) => write!(f, "parse error: {msg}"),
            SjError::Io(msg) => write!(f, "I/O error: {msg}"),
            SjError::TypeError(msg) => write!(f, "type error: {msg}"),
            SjError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for SjError {}

impl From<sjdf::SjdfError> for SjError {
    fn from(e: sjdf::SjdfError) -> Self {
        SjError::Exec(e.to_string())
    }
}

impl From<std::io::Error> for SjError {
    fn from(e: std::io::Error) -> Self {
        SjError::Io(e.to_string())
    }
}

/// Convenience result alias for ScrubJay core.
pub type Result<T> = std::result::Result<T, SjError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_details() {
        assert!(SjError::UnknownColumn("node".into())
            .to_string()
            .contains("node"));
        assert!(SjError::IncompatibleUnits {
            from: "celsius".into(),
            to: "seconds".into()
        }
        .to_string()
        .contains("celsius"));
    }

    #[test]
    fn sjdf_errors_convert() {
        let e: SjError = sjdf::SjdfError::EmptyDataset("reduce").into();
        assert!(matches!(e, SjError::Exec(_)));
    }
}
