//! Data derivations (§4.3): transformations and combinations.
//!
//! Derivations are functions that take one or two semantically annotated
//! datasets and produce a new dataset with new semantics. ScrubJay splits
//! them into:
//!
//! * **Transformations** — derive a modified dataset from one input:
//!   [`transform::ExplodeDiscrete`], [`transform::ExplodeContinuous`],
//!   [`transform::ConvertUnits`], [`transform::DeriveRate`],
//!   [`transform::DeriveRatio`], [`transform::DeriveHeat`],
//!   [`transform::DeriveActiveFrequency`].
//! * **Combinations** — generalized JOINs that infer a relation between
//!   two datasets from their shared domain dimensions:
//!   [`combine::NaturalJoin`] and [`combine::InterpolationJoin`].
//!
//! Every derivation separates its *semantics-level* effect
//! (`derive_schema`, a constant-time check-and-compute on schemas used by
//! the derivation engine's search) from its *data-level* effect (`apply`,
//! a data-parallel computation). Every derivation also serializes to a
//! [`DerivationSpec`] so derivation sequences are reproducible (§5.4).

pub mod combine;
pub mod transform;

use crate::dataset::SjDataset;
use crate::error::{Result, SjError};
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use serde::{Deserialize, Serialize};

/// A derivation producing a modified dataset from one input dataset.
pub trait Transformation: Send + Sync {
    /// Short name for plans and error messages.
    fn name(&self) -> &'static str;
    /// Semantics-only application: validate against the input schema and
    /// compute the output schema, without touching data.
    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema>;
    /// Execute on data, producing the derived dataset.
    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset>;
    /// Serializable description for reproducible plans.
    fn spec(&self) -> DerivationSpec;
}

/// A derivation combining two datasets into a merged result.
pub trait Combination: Send + Sync {
    /// Short name for plans and error messages.
    fn name(&self) -> &'static str;
    /// Semantics-only application on the two input schemas.
    fn derive_schema(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<Schema>;
    /// Execute on data, producing the combined dataset.
    fn apply(
        &self,
        left: &SjDataset,
        right: &SjDataset,
        dict: &SemanticDictionary,
    ) -> Result<SjDataset>;
    /// Serializable description for reproducible plans.
    fn spec(&self) -> DerivationSpec;
}

/// Serializable description of one derivation step (§5.4: derivation
/// sequences are serialized to JSON for distribution and reuse).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum DerivationSpec {
    /// Explode a list column into one row per element.
    ExplodeDiscrete {
        /// Column holding list values.
        column: String,
    },
    /// Explode a time-span column into one row per contained instant.
    ExplodeContinuous {
        /// Column holding span values.
        column: String,
        /// Step between emitted instants, in seconds.
        step_secs: f64,
    },
    /// Convert a scalar column to different units on the same dimension.
    ConvertUnits {
        /// Column to convert.
        column: String,
        /// Target units keyword.
        to: String,
    },
    /// Replace cumulative counter columns with windowed rates of change.
    DeriveRate {
        /// Rate window the output is expressed over, in seconds
        /// (0.001 = per millisecond).
        per_secs: f64,
    },
    /// Derive a new value column as `scale * numerator / denominator`.
    DeriveRatio {
        /// Name of the new column.
        new_column: String,
        /// Dimension of the new column.
        dimension: String,
        /// Units of the new column.
        units: String,
        /// Numerator column name.
        numerator: String,
        /// Denominator column name.
        denominator: String,
        /// Constant multiplier.
        scale: f64,
    },
    /// Derive per-(rack, location, time) heat as hot-aisle minus
    /// cold-aisle temperature (§7.2).
    DeriveHeat,
    /// Derive active CPU frequency from APERF/MPERF rates and the CPU's
    /// base frequency (§7.3).
    DeriveActiveFrequency,
    /// Natural join on all shared domain dimensions (exact match).
    NaturalJoin,
    /// Interpolation join: exact match on shared discrete domains and a
    /// windowed match with interpolation on one shared ordered continuous
    /// domain (§5.3).
    InterpolationJoin {
        /// Matching window `W` in seconds.
        window_secs: f64,
    },
}

impl DerivationSpec {
    /// Instantiate the transformation this spec describes, or `None` if it
    /// describes a combination.
    pub fn as_transformation(&self) -> Option<Box<dyn Transformation>> {
        use transform::*;
        match self {
            DerivationSpec::ExplodeDiscrete { column } => {
                Some(Box::new(ExplodeDiscrete::new(column)))
            }
            DerivationSpec::ExplodeContinuous { column, step_secs } => {
                Some(Box::new(ExplodeContinuous::new(column, *step_secs)))
            }
            DerivationSpec::ConvertUnits { column, to } => {
                Some(Box::new(ConvertUnits::new(column, to)))
            }
            DerivationSpec::DeriveRate { per_secs } => Some(Box::new(DeriveRate::new(*per_secs))),
            DerivationSpec::DeriveRatio {
                new_column,
                dimension,
                units,
                numerator,
                denominator,
                scale,
            } => Some(Box::new(DeriveRatio {
                new_column: new_column.clone(),
                dimension: dimension.clone(),
                units: units.clone(),
                numerator: numerator.clone(),
                denominator: denominator.clone(),
                scale: *scale,
            })),
            DerivationSpec::DeriveHeat => Some(Box::new(DeriveHeat)),
            DerivationSpec::DeriveActiveFrequency => Some(Box::new(DeriveActiveFrequency)),
            _ => None,
        }
    }

    /// Instantiate the combination this spec describes, or `None` if it
    /// describes a transformation.
    pub fn as_combination(&self) -> Option<Box<dyn Combination>> {
        use combine::*;
        match self {
            DerivationSpec::NaturalJoin => Some(Box::new(NaturalJoin)),
            DerivationSpec::InterpolationJoin { window_secs } => {
                Some(Box::new(InterpolationJoin::new(*window_secs)))
            }
            _ => None,
        }
    }

    /// Short operation name.
    pub fn op_name(&self) -> &'static str {
        match self {
            DerivationSpec::ExplodeDiscrete { .. } => "explode_discrete",
            DerivationSpec::ExplodeContinuous { .. } => "explode_continuous",
            DerivationSpec::ConvertUnits { .. } => "convert_units",
            DerivationSpec::DeriveRate { .. } => "derive_rate",
            DerivationSpec::DeriveRatio { .. } => "derive_ratio",
            DerivationSpec::DeriveHeat => "derive_heat",
            DerivationSpec::DeriveActiveFrequency => "derive_active_frequency",
            DerivationSpec::NaturalJoin => "natural_join",
            DerivationSpec::InterpolationJoin { .. } => "interpolation_join",
        }
    }
}

/// Helper: fail a derivation with a reason.
pub(crate) fn not_applicable(derivation: &str, reason: impl Into<String>) -> SjError {
    SjError::NotApplicable {
        derivation: derivation.into(),
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_serialize_to_json_round_trip() {
        let specs = vec![
            DerivationSpec::ExplodeDiscrete {
                column: "nodelist".into(),
            },
            DerivationSpec::ExplodeContinuous {
                column: "timespan".into(),
                step_secs: 60.0,
            },
            DerivationSpec::NaturalJoin,
            DerivationSpec::InterpolationJoin { window_secs: 120.0 },
            DerivationSpec::DeriveRate { per_secs: 0.001 },
        ];
        let json = serde_json::to_string_pretty(&specs).unwrap();
        let back: Vec<DerivationSpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(specs, back);
        assert!(json.contains("\"op\""));
        assert!(json.contains("explode_discrete"));
    }

    #[test]
    fn spec_instantiation_dispatches() {
        let t = DerivationSpec::ExplodeDiscrete { column: "x".into() };
        assert!(t.as_transformation().is_some());
        assert!(t.as_combination().is_none());
        let c = DerivationSpec::NaturalJoin;
        assert!(c.as_combination().is_some());
        assert!(c.as_transformation().is_none());
    }

    #[test]
    fn op_names_are_stable() {
        assert_eq!(DerivationSpec::NaturalJoin.op_name(), "natural_join");
        assert_eq!(
            DerivationSpec::InterpolationJoin { window_secs: 1.0 }.op_name(),
            "interpolation_join"
        );
    }
}
