//! Domain-specific derivations provided by system experts (§7).
//!
//! These are the reusable expert-contributed derivations from the paper's
//! case studies: the rack heat function (§7.2), the active-CPU-frequency
//! function (§7.3), and the generic ratio derivation both are built on.

use crate::dataset::SjDataset;
use crate::derivations::{not_applicable, DerivationSpec, Transformation};
use crate::error::Result;
use crate::row::Row;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use crate::value::Value;

// ---------------------------------------------------------------------------
// DeriveRatio
// ---------------------------------------------------------------------------

/// Derive a new value column as `scale * numerator / denominator`
/// (e.g. instructions per elapsed second).
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveRatio {
    /// Name of the new column.
    pub new_column: String,
    /// Dimension of the new column.
    pub dimension: String,
    /// Units of the new column.
    pub units: String,
    /// Numerator column name.
    pub numerator: String,
    /// Denominator column name.
    pub denominator: String,
    /// Constant multiplier.
    pub scale: f64,
}

impl Transformation for DeriveRatio {
    fn name(&self) -> &'static str {
        "derive_ratio"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        schema.index_of(&self.numerator)?;
        schema.index_of(&self.denominator)?;
        let sem = FieldSemantics::value(&self.dimension, &self.units);
        dict.validate(&sem)?;
        if schema.has_column(&self.new_column) {
            return Err(not_applicable(
                self.name(),
                format!("output column `{}` already exists", self.new_column),
            ));
        }
        schema.with_field(FieldDef::new(&self.new_column, sem))
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let num = ds.schema().index_of(&self.numerator)?;
        let den = ds.schema().index_of(&self.denominator)?;
        let scale = self.scale;
        let rdd = ds.rdd().map_partitions_named("derive_ratio", move |rows| {
            rows.into_iter()
                .map(|row| {
                    let v = match (row.get(num).as_f64(), row.get(den).as_f64()) {
                        (Some(n), Some(d)) if d != 0.0 => Value::Float(scale * n / d),
                        _ => Value::Null,
                    };
                    row.with_appended(v)
                })
                .collect()
        });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!("derive_ratio({})", ds.name()),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::DeriveRatio {
            new_column: self.new_column.clone(),
            dimension: self.dimension.clone(),
            units: self.units.clone(),
            numerator: self.numerator.clone(),
            denominator: self.denominator.clone(),
            scale: self.scale,
        }
    }
}

// ---------------------------------------------------------------------------
// DeriveHeat
// ---------------------------------------------------------------------------

/// Approximate instantaneous heat generation per (rack, location, time) as
/// the hot-aisle temperature minus the cold-aisle temperature (§7.2).
///
/// Input: a dataset with domain columns on the `rack`, `rack-location`,
/// `aisle`, and `time` dimensions and a `temperature` value column.
/// Output: domains (rack, location, time) plus a `heat` value column; the
/// aisle domain is consumed by the hot−cold difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeriveHeat;

struct HeatIndices {
    rack: usize,
    location: usize,
    aisle: usize,
    time: usize,
    temp: usize,
}

impl DeriveHeat {
    fn analyze(&self, schema: &Schema) -> Result<HeatIndices> {
        let need = |dim: &str, domain: bool| -> Result<usize> {
            schema
                .fields()
                .iter()
                .position(|f| f.semantics.dimension == dim && f.semantics.is_domain() == domain)
                .ok_or_else(|| {
                    not_applicable(
                        "derive_heat",
                        format!(
                            "missing {} column on dimension `{dim}`",
                            if domain { "domain" } else { "value" }
                        ),
                    )
                })
        };
        Ok(HeatIndices {
            rack: need("rack", true)?,
            location: need("rack-location", true)?,
            aisle: need("aisle", true)?,
            time: need("time", true)?,
            temp: need("temperature", false)?,
        })
    }
}

impl Transformation for DeriveHeat {
    fn name(&self) -> &'static str {
        "derive_heat"
    }

    fn derive_schema(&self, schema: &Schema, _dict: &SemanticDictionary) -> Result<Schema> {
        let ix = self.analyze(schema)?;
        let f = schema.fields();
        Schema::new(vec![
            f[ix.rack].clone(),
            f[ix.location].clone(),
            f[ix.time].clone(),
            FieldDef::new("heat", FieldSemantics::value("heat", "delta-celsius")),
        ])
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let ix = self.analyze(ds.schema())?;
        let parts = ds.rdd().num_partitions().max(1);
        let (rack, location, aisle, time, temp) =
            (ix.rack, ix.location, ix.aisle, ix.time, ix.temp);
        let keyed = ds.rdd().map_partitions_named("key_by_sensor", move |rows| {
            rows.into_iter()
                .map(|r| (r.key_of(&[rack, location, time]), r))
                .collect()
        });
        let rdd = keyed
            .group_by_key(parts)
            .map_partitions_named("derive_heat", move |groups| {
                let mut out = Vec::new();
                for (_, rows) in groups {
                    let mut hot = None;
                    let mut cold = None;
                    for r in &rows {
                        match r.get(aisle).as_str() {
                            Some("hot") => hot = r.get(temp).as_f64(),
                            Some("cold") => cold = r.get(temp).as_f64(),
                            _ => {}
                        }
                    }
                    if let (Some(h), Some(c), Some(first)) = (hot, cold, rows.first()) {
                        out.push(Row::new(vec![
                            first.get(rack).clone(),
                            first.get(location).clone(),
                            first.get(time).clone(),
                            Value::Float(h - c),
                        ]));
                    }
                }
                out
            });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!("derive_heat({})", ds.name()),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::DeriveHeat
    }
}

// ---------------------------------------------------------------------------
// DeriveActiveFrequency
// ---------------------------------------------------------------------------

/// Derive the active CPU frequency from APERF/MPERF rates and the CPU's
/// base frequency (§7.3): `active = base * aperf_rate / mperf_rate`.
///
/// MPERF increments at the base frequency and APERF at the active
/// frequency, so their rate ratio scales the specified base frequency to
/// the actual one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeriveActiveFrequency;

impl DeriveActiveFrequency {
    fn analyze(&self, schema: &Schema) -> Result<(usize, usize, usize)> {
        let find = |dim: &str| -> Result<usize> {
            schema
                .fields()
                .iter()
                .position(|f| f.semantics.dimension == dim && f.semantics.is_value())
                .ok_or_else(|| {
                    not_applicable(
                        "derive_active_frequency",
                        format!("missing value column on dimension `{dim}`"),
                    )
                })
        };
        Ok((find("aperf")?, find("mperf")?, find("base-frequency")?))
    }
}

impl Transformation for DeriveActiveFrequency {
    fn name(&self) -> &'static str {
        "derive_active_frequency"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let (aperf, mperf, _) = self.analyze(schema)?;
        // The APERF/MPERF columns must be rates, not raw counters.
        for idx in [aperf, mperf] {
            let units = dict.units(&schema.fields()[idx].semantics.units)?;
            if !matches!(units.kind, crate::units::UnitKind::Rate { .. }) {
                return Err(not_applicable(
                    self.name(),
                    format!(
                        "column `{}` must carry rate units (derive a count rate first)",
                        schema.fields()[idx].name
                    ),
                ));
            }
        }
        if schema.has_column("active_frequency") {
            return Err(not_applicable(self.name(), "already derived"));
        }
        schema.with_field(FieldDef::new(
            "active_frequency",
            FieldSemantics::value("frequency", "megahertz"),
        ))
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let (aperf, mperf, base) = self.analyze(ds.schema())?;
        let rdd = ds
            .rdd()
            .map_partitions_named("derive_active_frequency", move |rows| {
                rows.into_iter()
                    .map(|row| {
                        let v = match (
                            row.get(aperf).as_f64(),
                            row.get(mperf).as_f64(),
                            row.get(base).as_f64(),
                        ) {
                            (Some(a), Some(m), Some(b)) if m > 0.0 => Value::Float(b * a / m),
                            _ => Value::Null,
                        };
                        row.with_appended(v)
                    })
                    .collect()
            });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!("derive_active_frequency({})", ds.name()),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::DeriveActiveFrequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn rack_temps(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new(
                "location",
                FieldSemantics::domain("rack-location", "location-name"),
            ),
            FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mk = |loc: &str, aisle: &str, temp: f64| {
            Row::new(vec![
                Value::str("rack17"),
                Value::str(loc),
                Value::str(aisle),
                Value::Time(Timestamp::from_secs(120)),
                Value::Float(temp),
            ])
        };
        let rows = vec![
            mk("top", "hot", 38.0),
            mk("top", "cold", 18.5),
            mk("middle", "hot", 35.0),
            mk("middle", "cold", 18.0),
            // Bottom has only a hot reading -> no heat row.
            mk("bottom", "hot", 31.0),
        ];
        SjDataset::from_rows(ctx, rows, schema, "rack_temps", 2)
    }

    #[test]
    fn heat_is_hot_minus_cold() {
        let ctx = ExecCtx::local();
        let out = DeriveHeat.apply(&rack_temps(&ctx), &dict()).unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| r.get(1).as_str().unwrap().to_string());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(1).as_str(), Some("middle"));
        assert_eq!(rows[0].get(3).as_f64(), Some(17.0));
        assert_eq!(rows[1].get(1).as_str(), Some("top"));
        assert_eq!(rows[1].get(3).as_f64(), Some(19.5));
    }

    #[test]
    fn heat_schema_drops_aisle_and_temperature() {
        let ctx = ExecCtx::local();
        let out = DeriveHeat
            .derive_schema(rack_temps(&ctx).schema(), &dict())
            .unwrap();
        assert!(!out.has_column("aisle"));
        assert!(!out.has_column("temp"));
        let heat = out.field("heat").unwrap();
        assert_eq!(heat.semantics.dimension, "heat");
        assert!(heat.semantics.is_value());
    }

    #[test]
    fn heat_requires_all_inputs() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![FieldDef::new(
            "rack",
            FieldSemantics::domain("rack", "rack-id"),
        )])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveHeat.derive_schema(ds.schema(), &dict()).is_err());
    }

    fn freq_input(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
            FieldDef::new("aperf_rate", FieldSemantics::value("aperf", "aperf-per-ms")),
            FieldDef::new("mperf_rate", FieldSemantics::value("mperf", "mperf-per-ms")),
            FieldDef::new(
                "base_freq",
                FieldSemantics::value("base-frequency", "base-megahertz"),
            ),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![
                Value::str("c0"),
                Value::Float(1600.0),
                Value::Float(3200.0),
                Value::Float(3200.0),
            ]),
            Row::new(vec![
                Value::str("c1"),
                Value::Float(3200.0),
                Value::Float(3200.0),
                Value::Float(3200.0),
            ]),
        ];
        SjDataset::from_rows(ctx, rows, schema, "papi+spec", 1)
    }

    #[test]
    fn active_frequency_scales_base_by_aperf_mperf() {
        let ctx = ExecCtx::local();
        let out = DeriveActiveFrequency
            .apply(&freq_input(&ctx), &dict())
            .unwrap();
        let vals = out.collect_column("active_frequency").unwrap();
        // Throttled to half and at full speed.
        assert_eq!(vals[0].as_f64(), Some(1600.0));
        assert_eq!(vals[1].as_f64(), Some(3200.0));
        let f = out.schema().field("active_frequency").unwrap();
        assert_eq!(f.semantics.dimension, "frequency");
    }

    #[test]
    fn active_frequency_requires_rates_not_counts() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![
            FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
            FieldDef::new("aperf", FieldSemantics::value("aperf", "aperf-count")),
            FieldDef::new("mperf", FieldSemantics::value("mperf", "mperf-count")),
            FieldDef::new(
                "base_freq",
                FieldSemantics::value("base-frequency", "base-megahertz"),
            ),
        ])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveActiveFrequency
            .derive_schema(ds.schema(), &dict())
            .is_err());
    }

    #[test]
    fn ratio_divides_and_handles_zero() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![
            FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
            FieldDef::new(
                "instr",
                FieldSemantics::value("instructions", "instructions-count"),
            ),
            FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("j1"), Value::Int(1000), Value::Float(2.0)]),
            Row::new(vec![Value::str("j2"), Value::Int(500), Value::Float(0.0)]),
        ];
        let ds = SjDataset::from_rows(&ctx, rows, schema, "jobs", 1);
        let ratio = DeriveRatio {
            new_column: "instr_per_sec".into(),
            dimension: "instructions".into(),
            units: "instructions-per-sec".into(),
            numerator: "instr".into(),
            denominator: "elapsed".into(),
            scale: 1.0,
        };
        let out = ratio.apply(&ds, &dict()).unwrap();
        let vals = out.collect_column("instr_per_sec").unwrap();
        assert_eq!(vals[0].as_f64(), Some(500.0));
        assert!(vals[1].is_null());
    }

    #[test]
    fn ratio_rejects_duplicate_output_column() {
        let ctx = ExecCtx::local();
        let ds = freq_input(&ctx);
        let ratio = DeriveRatio {
            new_column: "cpu".into(),
            dimension: "frequency".into(),
            units: "megahertz".into(),
            numerator: "aperf_rate".into(),
            denominator: "mperf_rate".into(),
            scale: 1.0,
        };
        assert!(ratio.derive_schema(ds.schema(), &dict()).is_err());
    }
}
