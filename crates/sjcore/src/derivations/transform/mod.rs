//! Transformations: derivations of a modified dataset from one input.

mod convert;
mod custom;
mod explode;
mod rate;

pub use convert::ConvertUnits;
pub use custom::{DeriveActiveFrequency, DeriveHeat, DeriveRatio};
pub use explode::{ExplodeContinuous, ExplodeDiscrete};
pub use rate::DeriveRate;
