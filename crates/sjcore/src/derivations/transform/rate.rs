//! Windowed counter-rate derivation (§7.3).
//!
//! Much CPU and node data records *cumulative counts* of events
//! (instructions, memory accesses) that reset at arbitrary intervals, so
//! absolute values are meaningless by themselves. `DeriveRate` computes
//! the rate of change of every cumulative-counter column with respect to
//! the time window between consecutive samples, per domain entity —
//! effectively the instantaneous frequency of events.
//!
//! Two implementations share one contract:
//!
//! * the **columnar** kernel (default): batches are filtered, routed with
//!   [`sjdf`'s `exchange`](sjdf::rdd::Rdd::exchange) shuffle as whole
//!   typed sub-batches, grouped by arena-encoded entity keys, and the
//!   output is built column-at-a-time — no `Row` is materialized anywhere;
//! * the **rowwise** kernel, kept as the reference baseline when the
//!   context runs in rowwise mode.
//!
//! Null handling: a sample whose time cell is missing or non-time cannot
//! anchor a window and is dropped *before* pairing (it would otherwise
//! sort to the front of its entity group and silently consume a
//! neighbor's window). Within a window, a counter whose delta is
//! meaningless (reset, i.e. `c1 < c0`, or a missing sample) yields a null
//! rate for that counter only; the window row is emitted as long as at
//! least one counter produced a valid rate, and dropped when none did.

use crate::column::{ColumnarPartition, FloatBuilder};
use crate::dataset::SjDataset;
use crate::derivations::{not_applicable, DerivationSpec, Transformation};
use crate::error::Result;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use crate::units::time::MICROS_PER_SEC;
use crate::units::UnitKind;
use crate::value::Value;
use std::collections::HashMap;

/// Replace every cumulative-counter column with its windowed rate of
/// change, expressed per `per_secs` seconds (0.001 = per millisecond).
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveRate {
    per_secs: f64,
}

/// Column indices the rate kernel operates on, resolved once against the
/// input schema: the datetime domain, the cumulative counters to replace,
/// and the remaining domain columns forming the entity key.
struct RateCols {
    time: usize,
    counters: Vec<usize>,
    groups: Vec<usize>,
}

impl DeriveRate {
    /// Derive rates expressed over a `per_secs`-second window.
    pub fn new(per_secs: f64) -> Self {
        DeriveRate { per_secs }
    }

    /// Find the time domain column and the counter columns.
    fn analyze(
        &self,
        schema: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<(usize, Vec<(usize, String)>)> {
        let mut time_idx = None;
        let mut counters = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let units = dict.units(&f.semantics.units)?;
            if f.semantics.is_domain() && matches!(units.kind, UnitKind::DateTime) {
                time_idx = Some(i);
            }
            if matches!(units.kind, UnitKind::CumulativeCount) {
                // The output rate units on the same dimension.
                let suffix = if (self.per_secs - 0.001).abs() < 1e-12 {
                    "per-ms"
                } else if (self.per_secs - 1.0).abs() < 1e-12 {
                    "per-sec"
                } else {
                    return Err(not_applicable(
                        "derive_rate",
                        format!("no rate units registered for window {}s", self.per_secs),
                    ));
                };
                let rate_units = format!("{}-{}", f.semantics.dimension, suffix);
                dict.units(&rate_units)?;
                counters.push((i, rate_units));
            }
        }
        let time_idx = time_idx.ok_or_else(|| {
            not_applicable("derive_rate", "dataset has no datetime domain column")
        })?;
        if counters.is_empty() {
            return Err(not_applicable(
                "derive_rate",
                "dataset has no cumulative-counter columns",
            ));
        }
        Ok((time_idx, counters))
    }

    /// The columnar kernel. Three stages, all batch-native:
    /// 1. `rate_scatter` — drop rows without a usable timestamp, bucket
    ///    the rest by entity-key hash, and gather one typed sub-batch per
    ///    destination;
    /// 2. `exchange` — deliver sub-batches whole (they never decay to
    ///    rows in flight);
    /// 3. `derive_rate` — group by arena-encoded entity key, stable-sort
    ///    each group's row indices by time, and emit rate windows through
    ///    per-counter `FloatBuilder`s plus one `gather` for the
    ///    pass-through columns.
    fn apply_columnar(
        &self,
        ds: &SjDataset,
        out_schema: Schema,
        name: String,
        cols: RateCols,
        per_micros: f64,
    ) -> Result<SjDataset> {
        let RateCols {
            time: time_idx,
            counters: counter_idx,
            groups: group_idx,
        } = cols;
        let parts = ds.num_partitions().max(1);
        let ctx = ds.ctx().clone();
        let gi = group_idx.clone();
        let scattered = ds
            .batch_rdd()
            .map_partitions_named("rate_scatter", move |bs| {
                let batch = ColumnarPartition::concat_owned(bs);
                if batch.is_empty() {
                    return Vec::new();
                }
                let tcol = batch.column(time_idx);
                let mut dest_rows: Vec<Vec<u32>> = (0..parts).map(|_| Vec::new()).collect();
                let mut keybuf: Vec<u8> = Vec::with_capacity(64);
                for r in 0..batch.len() {
                    if tcol.time_micros_at(r).is_none() {
                        continue;
                    }
                    keybuf.clear();
                    for &c in &gi {
                        batch.column(c).encode_key_at(r, &mut keybuf);
                    }
                    let dest = (sjdf::ops::hash64(&keybuf[..]) % parts as u64) as usize;
                    dest_rows[dest].push(r as u32);
                }
                dest_rows
                    .into_iter()
                    .enumerate()
                    .filter(|(_, rows)| !rows.is_empty())
                    .map(|(dest, rows)| (dest, batch.gather(&rows)))
                    .collect()
            })
            .exchange(parts);
        let rdd = scattered.map_partitions_named("derive_rate", move |bs| {
            let batch = ColumnarPartition::concat_owned(bs);
            let n = batch.len();
            if n == 0 {
                return Vec::new();
            }
            // Group rows by entity key. Keys are encoded once into a
            // pooled bump arena — no per-row `KeyAtom` vectors or `Arc`
            // clone traffic.
            let arena = ctx.arena();
            let mut keybuf: Vec<u8> = Vec::with_capacity(64);
            let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
            let mut groups: Vec<(sjdf::BumpRange, Vec<u32>)> = Vec::new();
            for r in 0..n {
                keybuf.clear();
                for &c in &group_idx {
                    batch.column(c).encode_key_at(r, &mut keybuf);
                }
                let h = sjdf::ops::hash64(&keybuf[..]);
                let slot = index.entry(h).or_default();
                match slot
                    .iter()
                    .copied()
                    .find(|&g| arena.with(groups[g].0, |s| s == &keybuf[..]))
                {
                    Some(g) => groups[g].1.push(r as u32),
                    None => {
                        slot.push(groups.len());
                        groups.push((arena.alloc(&keybuf), vec![r as u32]));
                    }
                }
            }
            let tcol = batch.column(time_idx);
            let mut emit: Vec<u32> = Vec::new();
            let mut builders: Vec<FloatBuilder> = counter_idx
                .iter()
                .map(|_| FloatBuilder::with_capacity(n))
                .collect();
            let mut rates: Vec<Option<f64>> = vec![None; counter_idx.len()];
            for (_, rows) in groups.iter_mut() {
                // Scatter already removed null-time rows, so every index
                // sorts on a real timestamp.
                rows.sort_by_key(|&r| tcol.time_micros_at(r as usize));
                for w in rows.windows(2) {
                    let (p, c) = (w[0] as usize, w[1] as usize);
                    let (Some(t0), Some(t1)) = (tcol.time_micros_at(p), tcol.time_micros_at(c))
                    else {
                        continue;
                    };
                    let dt = (t1 - t0) as f64;
                    if dt <= 0.0 {
                        continue;
                    }
                    let mut any_valid = false;
                    for (k, &ci) in counter_idx.iter().enumerate() {
                        let col = batch.column(ci);
                        rates[k] = match (col.f64_at(p), col.f64_at(c)) {
                            (Some(c0), Some(c1)) if c1 >= c0 => {
                                any_valid = true;
                                Some((c1 - c0) / (dt / per_micros))
                            }
                            _ => None,
                        };
                    }
                    if any_valid {
                        emit.push(w[1]);
                        for (k, b) in builders.iter_mut().enumerate() {
                            b.push(rates[k]);
                        }
                    }
                }
            }
            let mut out = batch.gather(&emit);
            for (&ci, b) in counter_idx.iter().zip(builders) {
                out = out.with_column(ci, b.finish());
            }
            vec![out]
        });
        Ok(SjDataset::from_batches(rdd, out_schema, name))
    }
}

impl Transformation for DeriveRate {
    fn name(&self) -> &'static str {
        "derive_rate"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let (_, counters) = self.analyze(schema, dict)?;
        let mut out = schema.clone();
        for (idx, rate_units) in counters {
            let f = &schema.fields()[idx];
            out = out.with_replaced(
                &f.name,
                FieldDef::new(
                    &format!("{}_rate", f.name),
                    FieldSemantics {
                        relation: f.semantics.relation,
                        dimension: f.semantics.dimension.clone(),
                        units: rate_units,
                    },
                ),
            )?;
        }
        Ok(out)
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let (time_idx, counters) = self.analyze(ds.schema(), dict)?;
        let counter_idx: Vec<usize> = counters.iter().map(|(i, _)| *i).collect();
        // Group by every domain column except time (the entity identity).
        let group_idx: Vec<usize> = ds
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(i, f)| f.semantics.is_domain() && *i != time_idx)
            .map(|(i, _)| i)
            .collect();
        let per_micros = self.per_secs * MICROS_PER_SEC as f64;
        let name = format!("derive_rate({})", ds.name());
        if ds.is_columnar() {
            let cols = RateCols {
                time: time_idx,
                counters: counter_idx,
                groups: group_idx,
            };
            return self.apply_columnar(ds, out_schema, name, cols, per_micros);
        }
        let parts = ds.num_partitions().max(1);
        let keyed = ds.rdd().map_partitions_named("key_by_entity", {
            let group_idx = group_idx.clone();
            move |rows| {
                rows.into_iter()
                    // Rows without a usable timestamp cannot anchor a rate
                    // window; dropping them here keeps them from sorting to
                    // the front of an entity group and consuming a
                    // neighbor's window below.
                    .filter(|r| r.get(time_idx).as_time().is_some())
                    .map(|r| (r.key_of(&group_idx), r))
                    .collect()
            }
        });
        let rdd = keyed
            .group_by_key(parts)
            .map_partitions_named("derive_rate", move |groups| {
                let mut out = Vec::new();
                for (_, mut rows) in groups {
                    rows.sort_by_key(|r| r.get(time_idx).as_time().map(|t| t.as_micros()));
                    for pair in rows.windows(2) {
                        let (prev, cur) = (&pair[0], &pair[1]);
                        let (Some(t0), Some(t1)) =
                            (prev.get(time_idx).as_time(), cur.get(time_idx).as_time())
                        else {
                            continue;
                        };
                        let dt = (t1.as_micros() - t0.as_micros()) as f64;
                        if dt <= 0.0 {
                            continue;
                        }
                        // Rate per `per_secs` window: delta / (dt / per_micros).
                        let mut row = cur.clone();
                        let mut any_valid = false;
                        for &ci in &counter_idx {
                            match (prev.get(ci).as_f64(), cur.get(ci).as_f64()) {
                                (Some(c0), Some(c1)) if c1 >= c0 => {
                                    let rate = (c1 - c0) / (dt / per_micros);
                                    row = row.with_value(ci, Value::Float(rate));
                                    any_valid = true;
                                }
                                // Counter reset (or missing sample): this
                                // counter's delta is meaningless — null its
                                // rate, but keep the window for the other
                                // counters.
                                _ => {
                                    row = row.with_value(ci, Value::Null);
                                }
                            }
                        }
                        if any_valid {
                            out.push(row);
                        }
                    }
                }
                out
            });
        Ok(SjDataset::new(rdd, out_schema, name))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::DeriveRate {
            per_secs: self.per_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn counter_schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(
                "instr",
                FieldSemantics::value("instructions", "instructions-count"),
            ),
        ])
        .unwrap()
    }

    fn counters(ctx: &ExecCtx) -> SjDataset {
        let mk = |cpu: &str, secs: i64, count: i64| {
            Row::new(vec![
                Value::str("n1"),
                Value::str(cpu),
                Value::Time(Timestamp::from_secs(secs)),
                Value::Int(count),
            ])
        };
        let rows = vec![
            mk("c0", 0, 0),
            mk("c0", 1, 2_000_000),
            mk("c0", 2, 5_000_000),
            mk("c1", 0, 0),
            mk("c1", 2, 1_000_000),
            // Counter reset on c1 between t=2 and t=3.
            mk("c1", 3, 100),
        ];
        SjDataset::from_rows(ctx, rows, counter_schema(), "papi", 2)
    }

    /// Two-counter schema for the mixed-reset golden test.
    fn two_counter_schema() -> Schema {
        Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(
                "instr",
                FieldSemantics::value("instructions", "instructions-count"),
            ),
            FieldDef::new(
                "mem",
                FieldSemantics::value("memory-reads", "memory-reads-count"),
            ),
        ])
        .unwrap()
    }

    fn run_both_modes(
        build: impl Fn(&ExecCtx) -> SjDataset,
        per_secs: f64,
    ) -> (Vec<Row>, Vec<Row>) {
        let dict = SemanticDictionary::default_hpc();
        let sort = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| r.values().iter().map(Value::key).collect::<Vec<_>>());
            rows
        };
        let col = {
            let ctx = ExecCtx::local();
            let out = DeriveRate::new(per_secs)
                .apply(&build(&ctx), &dict)
                .unwrap();
            sort(out.collect().unwrap())
        };
        let row = {
            let ctx = ExecCtx::local().with_rowwise();
            let out = DeriveRate::new(per_secs)
                .apply(&build(&ctx), &dict)
                .unwrap();
            sort(out.collect().unwrap())
        };
        (col, row)
    }

    #[test]
    fn schema_replaces_counters_with_rates() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(0.001)
            .derive_schema(counters(&ctx).schema(), &dict)
            .unwrap();
        let f = out.field("instr_rate").unwrap();
        assert_eq!(f.semantics.units, "instructions-per-ms");
        assert_eq!(f.semantics.dimension, "instructions");
        assert!(!out.has_column("instr"));
    }

    #[test]
    fn rates_are_deltas_over_windows() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(0.001)
            .apply(&counters(&ctx), &dict)
            .unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| {
            (
                r.get(1).as_str().unwrap().to_string(),
                r.get(2).as_time().unwrap(),
            )
        });
        // c0: (2e6-0)/1s = 2000 per ms; (5e6-2e6)/1s = 3000 per ms.
        assert_eq!(rows[0].get(3).as_f64().unwrap(), 2000.0);
        assert_eq!(rows[1].get(3).as_f64().unwrap(), 3000.0);
        // c1: (1e6-0)/2s = 500 per ms; the reset window is dropped
        // (its only counter has no valid rate).
        assert_eq!(rows[2].get(3).as_f64().unwrap(), 500.0);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn per_second_rates_use_per_sec_units() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(1.0).apply(&counters(&ctx), &dict).unwrap();
        assert_eq!(
            out.schema().field("instr_rate").unwrap().semantics.units,
            "instructions-per-sec"
        );
        let mut vals: Vec<f64> = out
            .collect_column("instr_rate")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![500_000.0, 2_000_000.0, 3_000_000.0]);
    }

    #[test]
    fn mixed_reset_nulls_only_the_reset_counter() {
        // Golden: two counters; `mem` resets in the second window while
        // `instr` keeps counting. The window must survive with
        // instr_rate valid and mem_rate null — not be dropped wholesale.
        let build = |ctx: &ExecCtx| {
            let mk = |secs: i64, instr: i64, mem: i64| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(secs)),
                    Value::Int(instr),
                    Value::Int(mem),
                ])
            };
            let rows = vec![
                mk(0, 0, 0),
                mk(1, 1_000_000, 4_000_000),
                mk(2, 3_000_000, 50), // mem reset here
            ];
            SjDataset::from_rows(ctx, rows, two_counter_schema(), "papi2", 1)
        };
        let (col, row) = run_both_modes(build, 0.001);
        for rows in [&col, &row] {
            assert_eq!(rows.len(), 2, "both windows must be emitted");
            // Window t=0..1: both counters valid.
            assert_eq!(rows[0].get(2), &Value::Float(1000.0));
            assert_eq!(rows[0].get(3), &Value::Float(4000.0));
            // Window t=1..2: instr valid, mem reset -> null.
            assert_eq!(rows[1].get(2), &Value::Float(2000.0));
            assert_eq!(rows[1].get(3), &Value::Null);
        }
        assert_eq!(col, row, "columnar and rowwise kernels must agree");
    }

    #[test]
    fn null_time_rows_do_not_consume_windows() {
        // Golden: a null-time sample must be ignored entirely. Before the
        // fix it sorted to the front of the entity group and paired with
        // the first real sample, destroying that window.
        let build = |ctx: &ExecCtx| {
            let rows = vec![
                Row::new(vec![
                    Value::str("n1"),
                    Value::str("c0"),
                    Value::Null, // unparsable/missing timestamp
                    Value::Int(999),
                ]),
                Row::new(vec![
                    Value::str("n1"),
                    Value::str("c0"),
                    Value::Time(Timestamp::from_secs(0)),
                    Value::Int(0),
                ]),
                Row::new(vec![
                    Value::str("n1"),
                    Value::str("c0"),
                    Value::Time(Timestamp::from_secs(1)),
                    Value::Int(1_000_000),
                ]),
            ];
            SjDataset::from_rows(ctx, rows, counter_schema(), "papi", 1)
        };
        let (col, row) = run_both_modes(build, 0.001);
        for rows in [&col, &row] {
            assert_eq!(rows.len(), 1, "only the real t=0..1 window survives");
            assert_eq!(rows[0].get(3), &Value::Float(1000.0));
        }
        assert_eq!(col, row);
    }

    #[test]
    fn duplicate_timestamps_pair_nothing() {
        // Golden: two samples at the same instant give dt = 0; that
        // window is skipped, and the surrounding windows still pair
        // against the duplicates in stable (arrival) order.
        let build = |ctx: &ExecCtx| {
            let mk = |secs: i64, count: i64| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::str("c0"),
                    Value::Time(Timestamp::from_secs(secs)),
                    Value::Int(count),
                ])
            };
            let rows = vec![
                mk(0, 0),
                mk(1, 1_000_000),
                mk(1, 2_000_000),
                mk(2, 4_000_000),
            ];
            SjDataset::from_rows(ctx, rows, counter_schema(), "papi", 1)
        };
        let (col, row) = run_both_modes(build, 0.001);
        for rows in [&col, &row] {
            // Windows: (0,1a) = 1000, (1a,1b) dt=0 skipped, (1b,2) = 2000.
            let mut rates: Vec<f64> = rows.iter().map(|r| r.get(3).as_f64().unwrap()).collect();
            rates.sort_by(f64::total_cmp);
            assert_eq!(rates, vec![1000.0, 2000.0]);
        }
        assert_eq!(col, row);
    }

    #[test]
    fn counter_wrap_drops_only_the_wrapped_window() {
        // Golden: a counter that wraps (large -> small) behaves like a
        // reset: that window's only counter is invalid, so the window is
        // dropped; later windows resume from the post-wrap baseline.
        let build = |ctx: &ExecCtx| {
            let mk = |secs: i64, count: i64| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::str("c0"),
                    Value::Time(Timestamp::from_secs(secs)),
                    Value::Int(count),
                ])
            };
            let rows = vec![
                mk(0, u32::MAX as i64 - 1_000_000),
                mk(1, u32::MAX as i64), // +1e6 in 1s
                mk(2, 500_000),         // 32-bit wrap
                mk(3, 1_500_000),
            ];
            SjDataset::from_rows(ctx, rows, counter_schema(), "papi", 1)
        };
        let (col, row) = run_both_modes(build, 0.001);
        for rows in [&col, &row] {
            let mut rates: Vec<f64> = rows.iter().map(|r| r.get(3).as_f64().unwrap()).collect();
            rates.sort_by(f64::total_cmp);
            assert_eq!(rates, vec![1000.0, 1000.0]);
        }
        assert_eq!(col, row);
    }

    #[test]
    fn columnar_and_rowwise_agree_on_the_base_dataset() {
        let (col, row) = run_both_modes(counters, 0.001);
        assert_eq!(col.len(), 3);
        assert_eq!(col, row);
    }

    #[test]
    fn requires_time_and_counters() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        // No counters.
        let schema = Schema::new(vec![
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveRate::new(0.001)
            .derive_schema(ds.schema(), &dict)
            .is_err());
        // No time domain.
        let schema = Schema::new(vec![FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        )])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveRate::new(0.001)
            .derive_schema(ds.schema(), &dict)
            .is_err());
    }

    #[test]
    fn unknown_rate_window_rejected() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        assert!(DeriveRate::new(7.5)
            .derive_schema(counters(&ctx).schema(), &dict)
            .is_err());
    }
}
