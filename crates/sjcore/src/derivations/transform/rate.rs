//! Windowed counter-rate derivation (§7.3).
//!
//! Much CPU and node data records *cumulative counts* of events
//! (instructions, memory accesses) that reset at arbitrary intervals, so
//! absolute values are meaningless by themselves. `DeriveRate` computes
//! the rate of change of every cumulative-counter column with respect to
//! the time window between consecutive samples, per domain entity —
//! effectively the instantaneous frequency of events.

use crate::dataset::SjDataset;
use crate::derivations::{not_applicable, DerivationSpec, Transformation};
use crate::error::Result;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use crate::units::time::MICROS_PER_SEC;
use crate::units::UnitKind;
use crate::value::Value;

/// Replace every cumulative-counter column with its windowed rate of
/// change, expressed per `per_secs` seconds (0.001 = per millisecond).
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveRate {
    per_secs: f64,
}

impl DeriveRate {
    /// Derive rates expressed over a `per_secs`-second window.
    pub fn new(per_secs: f64) -> Self {
        DeriveRate { per_secs }
    }

    /// Find the time domain column and the counter columns.
    fn analyze(
        &self,
        schema: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<(usize, Vec<(usize, String)>)> {
        let mut time_idx = None;
        let mut counters = Vec::new();
        for (i, f) in schema.fields().iter().enumerate() {
            let units = dict.units(&f.semantics.units)?;
            if f.semantics.is_domain() && matches!(units.kind, UnitKind::DateTime) {
                time_idx = Some(i);
            }
            if matches!(units.kind, UnitKind::CumulativeCount) {
                // The output rate units on the same dimension.
                let suffix = if (self.per_secs - 0.001).abs() < 1e-12 {
                    "per-ms"
                } else if (self.per_secs - 1.0).abs() < 1e-12 {
                    "per-sec"
                } else {
                    return Err(not_applicable(
                        "derive_rate",
                        format!("no rate units registered for window {}s", self.per_secs),
                    ));
                };
                let rate_units = format!("{}-{}", f.semantics.dimension, suffix);
                dict.units(&rate_units)?;
                counters.push((i, rate_units));
            }
        }
        let time_idx = time_idx.ok_or_else(|| {
            not_applicable("derive_rate", "dataset has no datetime domain column")
        })?;
        if counters.is_empty() {
            return Err(not_applicable(
                "derive_rate",
                "dataset has no cumulative-counter columns",
            ));
        }
        Ok((time_idx, counters))
    }
}

impl Transformation for DeriveRate {
    fn name(&self) -> &'static str {
        "derive_rate"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let (_, counters) = self.analyze(schema, dict)?;
        let mut out = schema.clone();
        for (idx, rate_units) in counters {
            let f = &schema.fields()[idx];
            out = out.with_replaced(
                &f.name,
                FieldDef::new(
                    &format!("{}_rate", f.name),
                    FieldSemantics {
                        relation: f.semantics.relation,
                        dimension: f.semantics.dimension.clone(),
                        units: rate_units,
                    },
                ),
            )?;
        }
        Ok(out)
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let (time_idx, counters) = self.analyze(ds.schema(), dict)?;
        let counter_idx: Vec<usize> = counters.iter().map(|(i, _)| *i).collect();
        // Group by every domain column except time (the entity identity).
        let group_idx: Vec<usize> = ds
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(i, f)| f.semantics.is_domain() && *i != time_idx)
            .map(|(i, _)| i)
            .collect();
        let per_micros = self.per_secs * MICROS_PER_SEC as f64;
        let parts = ds.rdd().num_partitions().max(1);

        let keyed = ds.rdd().map_partitions_named("key_by_entity", {
            let group_idx = group_idx.clone();
            move |rows| {
                rows.into_iter()
                    .map(|r| (r.key_of(&group_idx), r))
                    .collect()
            }
        });
        let rdd = keyed
            .group_by_key(parts)
            .map_partitions_named("derive_rate", move |groups| {
                let mut out = Vec::new();
                for (_, mut rows) in groups {
                    rows.sort_by_key(|r| r.get(time_idx).as_time().map(|t| t.as_micros()));
                    for pair in rows.windows(2) {
                        let (prev, cur) = (&pair[0], &pair[1]);
                        let (Some(t0), Some(t1)) =
                            (prev.get(time_idx).as_time(), cur.get(time_idx).as_time())
                        else {
                            continue;
                        };
                        let dt = (t1.as_micros() - t0.as_micros()) as f64;
                        if dt <= 0.0 {
                            continue;
                        }
                        // Rate per `per_secs` window: delta / (dt / per_micros).
                        let mut row = cur.clone();
                        let mut valid = true;
                        for &ci in &counter_idx {
                            match (prev.get(ci).as_f64(), cur.get(ci).as_f64()) {
                                (Some(c0), Some(c1)) if c1 >= c0 => {
                                    let rate = (c1 - c0) / (dt / per_micros);
                                    row = row.with_value(ci, Value::Float(rate));
                                }
                                // Counter reset (or missing sample): the
                                // delta is meaningless — drop this window.
                                _ => {
                                    valid = false;
                                    break;
                                }
                            }
                        }
                        if valid {
                            out.push(row);
                        }
                    }
                }
                out
            });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!("derive_rate({})", ds.name()),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::DeriveRate {
            per_secs: self.per_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn counters(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("cpu", FieldSemantics::domain("cpu", "cpu-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(
                "instr",
                FieldSemantics::value("instructions", "instructions-count"),
            ),
        ])
        .unwrap();
        let mk = |cpu: &str, secs: i64, count: i64| {
            Row::new(vec![
                Value::str("n1"),
                Value::str(cpu),
                Value::Time(Timestamp::from_secs(secs)),
                Value::Int(count),
            ])
        };
        let rows = vec![
            mk("c0", 0, 0),
            mk("c0", 1, 2_000_000),
            mk("c0", 2, 5_000_000),
            mk("c1", 0, 0),
            mk("c1", 2, 1_000_000),
            // Counter reset on c1 between t=2 and t=3.
            mk("c1", 3, 100),
        ];
        SjDataset::from_rows(ctx, rows, schema, "papi", 2)
    }

    #[test]
    fn schema_replaces_counters_with_rates() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(0.001)
            .derive_schema(counters(&ctx).schema(), &dict)
            .unwrap();
        let f = out.field("instr_rate").unwrap();
        assert_eq!(f.semantics.units, "instructions-per-ms");
        assert_eq!(f.semantics.dimension, "instructions");
        assert!(!out.has_column("instr"));
    }

    #[test]
    fn rates_are_deltas_over_windows() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(0.001)
            .apply(&counters(&ctx), &dict)
            .unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| {
            (
                r.get(1).as_str().unwrap().to_string(),
                r.get(2).as_time().unwrap(),
            )
        });
        // c0: (2e6-0)/1s = 2000 per ms; (5e6-2e6)/1s = 3000 per ms.
        assert_eq!(rows[0].get(3).as_f64().unwrap(), 2000.0);
        assert_eq!(rows[1].get(3).as_f64().unwrap(), 3000.0);
        // c1: (1e6-0)/2s = 500 per ms; the reset window is dropped.
        assert_eq!(rows[2].get(3).as_f64().unwrap(), 500.0);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn per_second_rates_use_per_sec_units() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = DeriveRate::new(1.0).apply(&counters(&ctx), &dict).unwrap();
        assert_eq!(
            out.schema().field("instr_rate").unwrap().semantics.units,
            "instructions-per-sec"
        );
        let mut vals: Vec<f64> = out
            .collect_column("instr_rate")
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![500_000.0, 2_000_000.0, 3_000_000.0]);
    }

    #[test]
    fn requires_time_and_counters() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        // No counters.
        let schema = Schema::new(vec![
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveRate::new(0.001)
            .derive_schema(ds.schema(), &dict)
            .is_err());
        // No time domain.
        let schema = Schema::new(vec![FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        )])
        .unwrap();
        let ds = SjDataset::from_rows(&ctx, vec![], schema, "x", 1);
        assert!(DeriveRate::new(0.001)
            .derive_schema(ds.schema(), &dict)
            .is_err());
    }

    #[test]
    fn unknown_rate_window_rejected() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        assert!(DeriveRate::new(7.5)
            .derive_schema(counters(&ctx).schema(), &dict)
            .is_err());
    }
}
