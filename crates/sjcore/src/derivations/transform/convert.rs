//! Unit conversion transformation.

use crate::dataset::SjDataset;
use crate::derivations::{not_applicable, DerivationSpec, Transformation};
use crate::error::Result;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use crate::units::{convert_value, UnitsDef};

/// Convert a scalar column to different units on the same dimension
/// (e.g. Fahrenheit → Celsius, seconds → minutes).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertUnits {
    column: String,
    to: String,
}

impl ConvertUnits {
    /// Convert `column` to the units keyword `to`.
    pub fn new(column: impl Into<String>, to: impl Into<String>) -> Self {
        ConvertUnits {
            column: column.into(),
            to: to.into(),
        }
    }

    fn resolve(
        &self,
        schema: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<(usize, UnitsDef, UnitsDef)> {
        let idx = schema.index_of(&self.column)?;
        let field = &schema.fields()[idx];
        let from = dict.units(&field.semantics.units)?.clone();
        let to = dict.units(&self.to)?.clone();
        if !from.is_scalar() || !to.is_scalar() {
            return Err(not_applicable(
                "convert_units",
                format!(
                    "`{}` -> `{}` is not a scalar conversion",
                    from.name, to.name
                ),
            ));
        }
        if from.dimension != to.dimension {
            return Err(not_applicable(
                "convert_units",
                format!(
                    "units `{}` (dimension {}) cannot become `{}` (dimension {})",
                    from.name, from.dimension, to.name, to.dimension
                ),
            ));
        }
        Ok((idx, from, to))
    }
}

impl Transformation for ConvertUnits {
    fn name(&self) -> &'static str {
        "convert_units"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let (idx, _, to) = self.resolve(schema, dict)?;
        let field = &schema.fields()[idx];
        schema.with_replaced(
            &self.column,
            FieldDef::new(
                &field.name,
                FieldSemantics {
                    relation: field.semantics.relation,
                    dimension: field.semantics.dimension.clone(),
                    units: to.name,
                },
            ),
        )
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let (idx, from, to) = self.resolve(ds.schema(), dict)?;
        let name = format!("convert_units({})", ds.name());
        if ds.is_columnar() {
            // Columnar: record a kernel to fuse with neighboring narrow
            // ops into one per-partition pass at materialization time.
            return Ok(ds.with_kernel(
                crate::fuse::ColKernel::Convert { idx, from, to },
                out_schema,
                name,
            ));
        }
        let rdd = ds.rdd().map_partitions_named("convert_units", move |rows| {
            rows.into_iter()
                .map(|row| {
                    let converted = convert_value(row.get(idx), &from, &to)
                        .unwrap_or(crate::value::Value::Null);
                    row.with_value(idx, converted)
                })
                .collect()
        });
        Ok(SjDataset::new(rdd, out_schema, name))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::ConvertUnits {
            column: self.column.clone(),
            to: self.to.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::value::Value;
    use sjdf::ExecCtx;

    fn temps(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "fahrenheit")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("r1"), Value::Float(212.0)]),
            Row::new(vec![Value::str("r2"), Value::Float(32.0)]),
            Row::new(vec![Value::str("r3"), Value::Null]),
        ];
        SjDataset::from_rows(ctx, rows, schema, "temps", 1)
    }

    #[test]
    fn converts_fahrenheit_to_celsius() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let out = ConvertUnits::new("temp", "celsius")
            .apply(&temps(&ctx), &dict)
            .unwrap();
        assert_eq!(
            out.schema().field("temp").unwrap().semantics.units,
            "celsius"
        );
        let vals = out.collect_column("temp").unwrap();
        assert!((vals[0].as_f64().unwrap() - 100.0).abs() < 1e-9);
        assert!(vals[1].as_f64().unwrap().abs() < 1e-9);
        assert!(vals[2].is_null());
    }

    #[test]
    fn rejects_cross_dimension_conversion() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        assert!(ConvertUnits::new("temp", "watts")
            .derive_schema(temps(&ctx).schema(), &dict)
            .is_err());
    }

    #[test]
    fn rejects_non_scalar_conversion() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        assert!(ConvertUnits::new("rack", "node-id")
            .derive_schema(temps(&ctx).schema(), &dict)
            .is_err());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        assert!(ConvertUnits::new("missing", "celsius")
            .derive_schema(temps(&ctx).schema(), &dict)
            .is_err());
    }
}
