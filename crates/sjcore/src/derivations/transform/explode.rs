//! The explode transformations (§7.1).
//!
//! *Explode discrete* denormalizes a row containing a **list** (a job's
//! node list) into multiple rows with a single element each. *Explode
//! continuous* transforms a row containing a **span** (a job's scheduled
//! window) into several rows containing discrete instants within it.
//! Both exist to create datasets with elements comparable to another
//! dataset's, enabling combinations.

use crate::dataset::SjDataset;
use crate::derivations::{not_applicable, DerivationSpec, Transformation};
use crate::error::Result;
use crate::schema::{FieldDef, Schema};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use crate::units::UnitKind;
use crate::value::Value;

/// Explode a list-valued column into one row per element.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplodeDiscrete {
    column: String,
}

impl ExplodeDiscrete {
    /// Explode the named list column.
    pub fn new(column: impl Into<String>) -> Self {
        ExplodeDiscrete {
            column: column.into(),
        }
    }

    /// The conventional name of the exploded output column.
    pub fn output_column(&self) -> String {
        format!("{}_exploded", self.column)
    }
}

impl Transformation for ExplodeDiscrete {
    fn name(&self) -> &'static str {
        "explode_discrete"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let field = schema.field(&self.column)?;
        let units = dict.units(&field.semantics.units)?;
        let element = match &units.kind {
            UnitKind::ListOf { element } => element.clone(),
            _ => {
                return Err(not_applicable(
                    self.name(),
                    format!(
                        "column `{}` has non-list units `{}`",
                        self.column, units.name
                    ),
                ))
            }
        };
        schema.with_replaced(
            &self.column,
            FieldDef::new(
                &self.output_column(),
                FieldSemantics {
                    relation: field.semantics.relation,
                    dimension: field.semantics.dimension.clone(),
                    units: element,
                },
            ),
        )
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let idx = ds.schema().index_of(&self.column)?;
        let name = format!("explode_discrete({})", ds.name());
        if ds.is_columnar() {
            return Ok(ds.with_kernel(
                crate::fuse::ColKernel::ExplodeDiscrete { idx },
                out_schema,
                name,
            ));
        }
        let rdd = ds
            .rdd()
            .map_partitions_named("explode_discrete", move |rows| {
                rows.into_iter()
                    .flat_map(|row| match row.get(idx) {
                        Value::List(items) => items
                            .iter()
                            .map(|item| row.with_value(idx, item.clone()))
                            .collect::<Vec<_>>(),
                        // Null lists explode to no rows; scalars pass through
                        // (already a single element).
                        Value::Null => vec![],
                        _ => vec![row],
                    })
                    .collect()
            });
        Ok(SjDataset::new(rdd, out_schema, name))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::ExplodeDiscrete {
            column: self.column.clone(),
        }
    }
}

/// Explode a span-valued column into one row per contained instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplodeContinuous {
    column: String,
    step_secs: f64,
}

impl ExplodeContinuous {
    /// Explode the named span column with the given step in seconds.
    pub fn new(column: impl Into<String>, step_secs: f64) -> Self {
        ExplodeContinuous {
            column: column.into(),
            step_secs,
        }
    }

    /// The conventional name of the exploded output column.
    pub fn output_column(&self) -> String {
        format!("{}_exploded", self.column)
    }
}

impl Transformation for ExplodeContinuous {
    fn name(&self) -> &'static str {
        "explode_continuous"
    }

    fn derive_schema(&self, schema: &Schema, dict: &SemanticDictionary) -> Result<Schema> {
        let field = schema.field(&self.column)?;
        let units = dict.units(&field.semantics.units)?;
        if !units.is_span() {
            return Err(not_applicable(
                self.name(),
                format!(
                    "column `{}` has non-span units `{}`",
                    self.column, units.name
                ),
            ));
        }
        schema.with_replaced(
            &self.column,
            FieldDef::new(
                &self.output_column(),
                FieldSemantics {
                    relation: field.semantics.relation,
                    dimension: field.semantics.dimension.clone(),
                    units: "datetime".into(),
                },
            ),
        )
    }

    fn apply(&self, ds: &SjDataset, dict: &SemanticDictionary) -> Result<SjDataset> {
        let out_schema = self.derive_schema(ds.schema(), dict)?;
        let idx = ds.schema().index_of(&self.column)?;
        let step = self.step_secs;
        let name = format!("explode_continuous({})", ds.name());
        if ds.is_columnar() {
            return Ok(ds.with_kernel(
                crate::fuse::ColKernel::ExplodeContinuous {
                    idx,
                    step_secs: step,
                },
                out_schema,
                name,
            ));
        }
        let rdd = ds
            .rdd()
            .map_partitions_named("explode_continuous", move |rows| {
                rows.into_iter()
                    .flat_map(|row| match row.get(idx) {
                        Value::Span(span) => span
                            .explode(step)
                            .into_iter()
                            .map(|t| row.with_value(idx, Value::Time(t)))
                            .collect::<Vec<_>>(),
                        Value::Null => vec![],
                        _ => vec![row],
                    })
                    .collect()
            });
        Ok(SjDataset::new(rdd, out_schema, name))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::ExplodeContinuous {
            column: self.column.clone(),
            step_secs: self.step_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;
    use crate::units::time::{TimeSpan, Timestamp};
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn job_log(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
            FieldDef::new(
                "nodelist",
                FieldSemantics::domain("compute-node", "node-list"),
            ),
            FieldDef::new("window", FieldSemantics::domain("time", "timespan")),
        ])
        .unwrap();
        let rows = vec![Row::new(vec![
            Value::str("j1"),
            Value::list([Value::str("n1"), Value::str("n2")]),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(120),
            )),
        ])];
        SjDataset::from_rows(ctx, rows, schema, "joblog", 1)
    }

    #[test]
    fn explode_discrete_schema_renames_and_retypes() {
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        let t = ExplodeDiscrete::new("nodelist");
        let out = t.derive_schema(ds.schema(), &dict()).unwrap();
        let f = out.field("nodelist_exploded").unwrap();
        assert_eq!(f.semantics.units, "node-id");
        assert_eq!(f.semantics.dimension, "compute-node");
        assert!(!out.has_column("nodelist"));
    }

    #[test]
    fn explode_discrete_produces_row_per_element() {
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        let out = ExplodeDiscrete::new("nodelist")
            .apply(&ds, &dict())
            .unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 2);
        let nodes: Vec<&str> = rows.iter().filter_map(|r| r.get(1).as_str()).collect();
        assert_eq!(nodes, vec!["n1", "n2"]);
        // Other columns are replicated.
        assert!(rows.iter().all(|r| r.get(0).as_str() == Some("j1")));
    }

    #[test]
    fn explode_discrete_rejects_non_list_column() {
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        let e = ExplodeDiscrete::new("job")
            .derive_schema(ds.schema(), &dict())
            .unwrap_err();
        assert!(matches!(e, crate::error::SjError::NotApplicable { .. }));
    }

    #[test]
    fn explode_continuous_steps_through_span() {
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        let out = ExplodeContinuous::new("window", 60.0)
            .apply(&ds, &dict())
            .unwrap();
        let rows = out.collect().unwrap();
        // [0, 120) at 60s steps: 0, 60.
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(2).as_time(), Some(Timestamp::from_secs(0)));
        assert_eq!(rows[1].get(2).as_time(), Some(Timestamp::from_secs(60)));
        assert_eq!(
            out.schema()
                .field("window_exploded")
                .unwrap()
                .semantics
                .units,
            "datetime"
        );
    }

    #[test]
    fn explode_continuous_rejects_non_span() {
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        assert!(ExplodeContinuous::new("nodelist", 60.0)
            .derive_schema(ds.schema(), &dict())
            .is_err());
    }

    #[test]
    fn chained_explodes_give_node_time_grid() {
        // The first two steps of the paper's Figure 5 sequence.
        let ctx = ExecCtx::local();
        let ds = job_log(&ctx);
        let d = dict();
        let step1 = ExplodeDiscrete::new("nodelist").apply(&ds, &d).unwrap();
        let step2 = ExplodeContinuous::new("window", 60.0)
            .apply(&step1, &d)
            .unwrap();
        let rows = step2.collect().unwrap();
        // 2 nodes x 2 instants.
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn null_list_explodes_to_nothing() {
        let ctx = ExecCtx::local();
        let schema = Schema::new(vec![FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        )])
        .unwrap();
        let rows = vec![Row::new(vec![Value::Null])];
        let ds = SjDataset::from_rows(&ctx, rows, schema, "x", 1);
        let out = ExplodeDiscrete::new("nodelist")
            .apply(&ds, &dict())
            .unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }
}
