//! Shared-domain analysis and schema merging for combinations.

use crate::derivations::not_applicable;
use crate::error::Result;
use crate::schema::{FieldDef, Schema};
use crate::semantics::SemanticDictionary;
use crate::units::UnitKind;

/// One shared domain dimension and the column carrying it on each side.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedColumn {
    /// The dimension keyword.
    pub dimension: String,
    /// Column index in the left schema.
    pub left_idx: usize,
    /// Column index in the right schema.
    pub right_idx: usize,
    /// Whether this dimension is ordered and continuous (interpolatable).
    pub interpolatable: bool,
}

/// The classified shared domain dimensions of two schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedDomains {
    /// Shared domains that must match exactly.
    pub exact: Vec<SharedColumn>,
    /// Shared ordered continuous domains (candidates for interpolation).
    pub continuous: Vec<SharedColumn>,
}

impl SharedDomains {
    /// Analyze two schemas' shared domain dimensions.
    ///
    /// Fails if a shared domain column carries list or span units on
    /// either side: such columns must be exploded into elementary values
    /// before a combination (the derivation engine inserts the explode
    /// transformations automatically).
    pub fn analyze(
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<SharedDomains> {
        let mut exact = Vec::new();
        let mut continuous = Vec::new();
        for dim_name in left.shared_domain_dimensions(right) {
            let lf = left
                .domain_field_on(&dim_name)
                .expect("shared dimension present on left");
            let rf = right
                .domain_field_on(&dim_name)
                .expect("shared dimension present on right");
            for (side, f) in [("left", lf), ("right", rf)] {
                let units = dict.units(&f.semantics.units)?;
                if matches!(units.kind, UnitKind::ListOf { .. } | UnitKind::TimeSpanKind) {
                    return Err(not_applicable(
                        "combination",
                        format!(
                            "{side} column `{}` on shared dimension `{dim_name}` has \
                             compound units `{}`; explode it first",
                            f.name, units.name
                        ),
                    ));
                }
            }
            let dim = dict.dimension(&dim_name)?;
            let col = SharedColumn {
                dimension: dim_name.clone(),
                left_idx: left.index_of(&lf.name)?,
                right_idx: right.index_of(&rf.name)?,
                interpolatable: dim.interpolatable(),
            };
            if col.interpolatable {
                continuous.push(col);
            } else {
                exact.push(col);
            }
        }
        Ok(SharedDomains { exact, continuous })
    }

    /// True if the schemas share no domain dimension at all.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.continuous.is_empty()
    }

    /// Right-side column indices consumed by the join keys.
    pub fn right_key_indices(&self) -> Vec<usize> {
        self.exact
            .iter()
            .chain(&self.continuous)
            .map(|c| c.right_idx)
            .collect()
    }
}

/// Merge two schemas for a combination output: all left columns, plus all
/// right columns except those listed in `drop_right` (the join keys, which
/// would be duplicates). Right columns whose names collide with left ones
/// are renamed with an `_r` suffix.
///
/// Returns the merged schema and the kept right-column indices in output
/// order.
pub fn merge_schemas(
    left: &Schema,
    right: &Schema,
    drop_right: &[usize],
) -> Result<(Schema, Vec<usize>)> {
    let mut fields: Vec<FieldDef> = left.fields().to_vec();
    let mut kept = Vec::new();
    for (i, f) in right.fields().iter().enumerate() {
        if drop_right.contains(&i) {
            continue;
        }
        kept.push(i);
        let mut name = f.name.clone();
        // Chained combinations can collide repeatedly (`a` -> `a_r` ->
        // `a_r2` ...); keep suffixing until the name is free.
        let mut suffix = 0usize;
        while fields.iter().any(|existing| existing.name == name) {
            suffix += 1;
            name = if suffix == 1 {
                format!("{}_r", f.name)
            } else {
                format!("{}_r{suffix}", f.name)
            };
        }
        fields.push(FieldDef::new(&name, f.semantics.clone()));
    }
    Ok((Schema::new(fields)?, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::FieldSemantics;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn left() -> Schema {
        Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap()
    }

    fn right() -> Schema {
        Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap()
    }

    #[test]
    fn analyze_classifies_shared_dims() {
        let shared = SharedDomains::analyze(&left(), &right(), &dict()).unwrap();
        assert_eq!(shared.exact.len(), 1);
        assert_eq!(shared.exact[0].dimension, "compute-node");
        assert!(shared.continuous.is_empty());

        let both_timed = Schema::new(vec![
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        ])
        .unwrap();
        let shared = SharedDomains::analyze(&left(), &both_timed, &dict()).unwrap();
        assert_eq!(shared.exact.len(), 1);
        assert_eq!(shared.continuous.len(), 1);
        assert_eq!(shared.continuous[0].dimension, "time");
    }

    #[test]
    fn analyze_rejects_compound_units_on_shared_dims() {
        let listy = Schema::new(vec![FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        )])
        .unwrap();
        let e = SharedDomains::analyze(&listy, &right(), &dict()).unwrap_err();
        assert!(e.to_string().contains("explode"));
    }

    #[test]
    fn disjoint_schemas_share_nothing() {
        let only_rack = Schema::new(vec![FieldDef::new(
            "rack",
            FieldSemantics::domain("rack", "rack-id"),
        )])
        .unwrap();
        let shared = SharedDomains::analyze(&left(), &only_rack, &dict()).unwrap();
        assert!(shared.is_empty());
    }

    #[test]
    fn merge_drops_keys_and_renames_collisions() {
        let l = left();
        let r = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let (merged, kept) = merge_schemas(&l, &r, &[0]).unwrap();
        assert_eq!(kept, vec![1, 2]);
        assert!(merged.has_column("temp"));
        assert!(merged.has_column("temp_r"));
        assert!(merged.has_column("rack"));
        assert_eq!(merged.len(), 5);
    }
}
