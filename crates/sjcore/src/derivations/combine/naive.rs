//! The naive pairwise windowed join — the baseline §5.3 argues against.
//!
//! "Naïvely, this scenario would require computing all pairwise distances
//! between two datasets, which is unscalable." This implementation exists
//! to *be* that baseline: it groups both sides by the shared discrete
//! domains only and compares every left element against every right
//! element of the group (O(|L|·|R|) per group, unbounded by any window
//! structure). Its results are identical to [`super::InterpolationJoin`]
//! — the property tests rely on that — but its cost grows quadratically
//! where the binning join stays linear; the `ablation_interp_binning`
//! bench measures the gap.

use crate::dataset::SjDataset;
use crate::derivations::combine::common::{merge_schemas, SharedDomains};
use crate::derivations::combine::interp::{aggregate_matches, match_cmp};
use crate::derivations::{not_applicable, Combination, DerivationSpec};
use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::value::Value;

/// All-pairs windowed join (baseline; prefer
/// [`super::InterpolationJoin`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveInterpolationJoin {
    window_secs: f64,
}

impl NaiveInterpolationJoin {
    /// Baseline join with matching window `W` in seconds.
    pub fn new(window_secs: f64) -> Self {
        NaiveInterpolationJoin { window_secs }
    }

    fn shared(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<SharedDomains> {
        // Rejects zero, negative, and NaN windows alike.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(not_applicable(
                "naive_interpolation_join",
                "window must be positive",
            ));
        }
        let shared = SharedDomains::analyze(left, right, dict)?;
        if shared.continuous.len() != 1 {
            return Err(not_applicable(
                "naive_interpolation_join",
                "requires exactly one shared ordered continuous domain",
            ));
        }
        Ok(shared)
    }
}

impl Combination for NaiveInterpolationJoin {
    fn name(&self) -> &'static str {
        "naive_interpolation_join"
    }

    fn derive_schema(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<Schema> {
        let shared = self.shared(left, right, dict)?;
        let (schema, _) = merge_schemas(left, right, &shared.right_key_indices())?;
        Ok(schema)
    }

    fn apply(
        &self,
        left: &SjDataset,
        right: &SjDataset,
        dict: &SemanticDictionary,
    ) -> Result<SjDataset> {
        let shared = self.shared(left.schema(), right.schema(), dict)?;
        let (out_schema, kept_right) =
            merge_schemas(left.schema(), right.schema(), &shared.right_key_indices())?;

        let exact_l: Vec<usize> = shared.exact.iter().map(|c| c.left_idx).collect();
        let exact_r: Vec<usize> = shared.exact.iter().map(|c| c.right_idx).collect();
        let cont_l = shared.continuous[0].left_idx;
        let cont_r = shared.continuous[0].right_idx;

        let mut residual_domain: Vec<usize> = Vec::new();
        let mut interp_col: Vec<bool> = Vec::with_capacity(kept_right.len());
        for (j, &ri) in kept_right.iter().enumerate() {
            let f = &right.schema().fields()[ri];
            let dim = dict.dimension(&f.semantics.dimension)?;
            if f.semantics.is_domain() {
                residual_domain.push(j);
                interp_col.push(false);
            } else {
                interp_col.push(dim.interpolatable());
            }
        }
        let w = self.window_secs;
        let parts = left
            .rdd()
            .num_partitions()
            .max(right.rdd().num_partitions())
            .max(1);

        // Cogroup on the exact keys ONLY: every left element of the group
        // is compared against every right element — the all-pairs scan.
        let lk = left.rdd().map_partitions_named("naive_key_left", {
            let exact_l = exact_l.clone();
            move |rows| rows.into_iter().map(|r| (r.key_of(&exact_l), r)).collect()
        });
        let rk = right.rdd().map_partitions_named("naive_key_right", {
            let exact_r = exact_r.clone();
            let kept_right = kept_right.clone();
            move |rows| {
                rows.into_iter()
                    .map(|r| {
                        let key = r.key_of(&exact_r);
                        let pos = r.get(cont_r).as_f64();
                        let vals: Vec<Value> =
                            kept_right.iter().map(|&i| r.get(i).clone()).collect();
                        (key, (pos, vals))
                    })
                    .collect()
            }
        });
        let rdd = lk
            .cogroup(&rk, parts)
            .map_partitions_named("naive_pairwise", move |groups| {
                let mut out = Vec::new();
                for (_, (lefts, rights)) in groups {
                    for lrow in lefts {
                        let Some(lpos) = lrow.get(cont_l).as_f64() else {
                            continue;
                        };
                        if lpos.is_nan() {
                            continue;
                        }
                        // All-pairs distance computation (the point of
                        // this baseline: no bins, no pruning). Residual
                        // groups stay in first-occurrence order — a
                        // `HashMap` drain would emit output rows in a
                        // per-run-random order, which breaks plan
                        // determinism and byte-identical fault replays.
                        use std::collections::HashMap;
                        type Match = (Row, f64, f64, Vec<Value>);
                        type ResidualKey = Vec<crate::value::KeyAtom>;
                        let mut index: HashMap<ResidualKey, usize> = HashMap::new();
                        let mut by_residual: Vec<(ResidualKey, Vec<Match>)> = Vec::new();
                        for (rpos, rvals) in &rights {
                            let Some(rpos) = rpos else { continue };
                            if rpos.is_nan() {
                                continue;
                            }
                            if (rpos - lpos).abs() <= w {
                                let residual: ResidualKey =
                                    residual_domain.iter().map(|&j| rvals[j].key()).collect();
                                let m = (lrow.clone(), lpos, *rpos, rvals.clone());
                                match index.get(&residual) {
                                    Some(&i) => by_residual[i].1.push(m),
                                    None => {
                                        index.insert(residual.clone(), by_residual.len());
                                        by_residual.push((residual, vec![m]));
                                    }
                                }
                            }
                        }
                        for (_, mut ms) in by_residual {
                            ms.sort_by(|a, b| match_cmp(a.2, &a.3, b.2, &b.3));
                            let mut values = lrow.clone().into_values();
                            for (j, is_interp) in interp_col.iter().enumerate() {
                                values.push(aggregate_matches(&ms, j, lpos, *is_interp));
                            }
                            out.push(Row::new(values));
                        }
                    }
                }
                out
            });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!(
                "naive_interpolation_join({}, {}, W={}s)",
                left.name(),
                right.name(),
                self.window_secs
            ),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        // The baseline is not part of the reproducible-plan vocabulary;
        // serialize as the real interpolation join so stored plans always
        // use the scalable implementation.
        DerivationSpec::InterpolationJoin {
            window_secs: self.window_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derivations::combine::InterpolationJoin;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn events(
        ctx: &ExecCtx,
        name: &str,
        tcol: &str,
        vdim: &str,
        vu: &str,
        samples: &[(u8, i64, f64)],
    ) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new(tcol, FieldSemantics::domain("time", "datetime")),
            FieldDef::new("v", FieldSemantics::value(vdim, vu)),
        ])
        .unwrap();
        let rows: Vec<Row> = samples
            .iter()
            .map(|&(n, t, v)| {
                Row::new(vec![
                    Value::str(format!("n{n}")),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(v),
                ])
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, name, 2)
    }

    #[test]
    fn naive_agrees_with_binned_join() {
        let ctx = ExecCtx::local();
        let d = dict();
        let samples_l: Vec<(u8, i64, f64)> = (0..40)
            .map(|i| ((i % 3) as u8, (i * 13) % 300, i as f64))
            .collect();
        let samples_r: Vec<(u8, i64, f64)> = (0..40)
            .map(|i| ((i % 3) as u8, (i * 7) % 300, (i * 2) as f64))
            .collect();
        let l = events(&ctx, "l", "time", "power", "watts", &samples_l);
        let r = events(&ctx, "r", "t", "temperature", "celsius", &samples_r);
        let sort = |ds: &SjDataset| {
            let mut rows = ds.collect().unwrap();
            rows.sort_by_key(|r| format!("{:?}", r.values()));
            rows
        };
        let fast = sort(&InterpolationJoin::new(20.0).apply(&l, &r, &d).unwrap());
        let naive = sort(&NaiveInterpolationJoin::new(20.0).apply(&l, &r, &d).unwrap());
        assert_eq!(fast, naive);
        assert!(!fast.is_empty());
    }

    #[test]
    fn naive_schema_matches_binned_schema() {
        let ctx = ExecCtx::local();
        let d = dict();
        let l = events(&ctx, "l", "time", "power", "watts", &[(0, 0, 1.0)]);
        let r = events(&ctx, "r", "t", "temperature", "celsius", &[(0, 1, 2.0)]);
        let a = InterpolationJoin::new(5.0)
            .derive_schema(l.schema(), r.schema(), &d)
            .unwrap();
        let b = NaiveInterpolationJoin::new(5.0)
            .derive_schema(l.schema(), r.schema(), &d)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn naive_serializes_as_the_scalable_join() {
        let spec = NaiveInterpolationJoin::new(30.0).spec();
        assert_eq!(spec.op_name(), "interpolation_join");
    }
}
