//! The interpolation join (§5.3) — ScrubJay's novel data-parallel
//! windowed join over an ordered continuous domain.
//!
//! Computing correspondences between elements that do not match exactly
//! naively requires all pairwise distances — unscalable. ScrubJay
//! constrains the problem to correspondences within a window `W` and makes
//! it data-parallel with a double-binning scheme:
//!
//! 1. every element is placed in a bin of width `2W` twice — once on a
//!    grid starting at 0 and once on a grid offset by exactly `W`;
//! 2. any two elements within `W` of each other are guaranteed to share a
//!    bin on at least one grid, so matching happens independently per bin
//!    (a `group_by_key` over `(discrete key, grid, bin)`);
//! 3. pairs found in both grids are deduplicated deterministically (the
//!    offset grid skips pairs that already share a base-grid bin);
//! 4. many-to-one matches are aggregated per semantics — ordered
//!    continuous values are linearly interpolated at the left element's
//!    position, everything else takes the nearest match.

use crate::dataset::SjDataset;
use crate::derivations::combine::common::{merge_schemas, SharedDomains};
use crate::derivations::{not_applicable, Combination, DerivationSpec};
use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::value::{KeyAtom, Value};
use sjdf::ByteSize;

/// Windowed, interpolating combination over one shared ordered continuous
/// domain (plus exact matching on all shared discrete domains).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationJoin {
    window_secs: f64,
}

impl InterpolationJoin {
    /// Join with matching window `W` (in seconds when the continuous
    /// domain is time; in domain units otherwise).
    pub fn new(window_secs: f64) -> Self {
        InterpolationJoin { window_secs }
    }

    fn shared(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<SharedDomains> {
        // Rejects zero, negative, and NaN windows alike.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(not_applicable(
                "interpolation_join",
                "window must be positive",
            ));
        }
        let shared = SharedDomains::analyze(left, right, dict)?;
        if shared.continuous.len() != 1 {
            return Err(not_applicable(
                "interpolation_join",
                format!(
                    "requires exactly one shared ordered continuous domain (found {})",
                    shared.continuous.len()
                ),
            ));
        }
        Ok(shared)
    }
}

/// One element flowing into the bin-matching shuffle.
#[derive(Debug, Clone)]
enum Side {
    /// Left element: unique id, full row, position on the continuous axis.
    L(u64, Row, f64),
    /// Right element: projected kept cells, position.
    R(Vec<Value>, f64),
}

impl ByteSize for Side {
    fn byte_size(&self) -> usize {
        match self {
            Side::L(_, row, _) => 16 + row.byte_size(),
            Side::R(vals, _) => 8 + 24 + vals.iter().map(ByteSize::byte_size).sum::<usize>(),
        }
    }
}

#[inline]
fn bin_of(pos: f64, offset: f64, width: f64) -> i64 {
    ((pos + offset) / width).floor() as i64
}

impl Combination for InterpolationJoin {
    fn name(&self) -> &'static str {
        "interpolation_join"
    }

    fn derive_schema(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<Schema> {
        let shared = self.shared(left, right, dict)?;
        let (schema, _) = merge_schemas(left, right, &shared.right_key_indices())?;
        Ok(schema)
    }

    fn apply(
        &self,
        left: &SjDataset,
        right: &SjDataset,
        dict: &SemanticDictionary,
    ) -> Result<SjDataset> {
        let shared = self.shared(left.schema(), right.schema(), dict)?;
        let (out_schema, kept_right) =
            merge_schemas(left.schema(), right.schema(), &shared.right_key_indices())?;

        let exact_l: Vec<usize> = shared.exact.iter().map(|c| c.left_idx).collect();
        let exact_r: Vec<usize> = shared.exact.iter().map(|c| c.right_idx).collect();
        let cont_l = shared.continuous[0].left_idx;
        let cont_r = shared.continuous[0].right_idx;

        // Per kept right column: is it an aggregation group key (a residual
        // domain) and is it linearly interpolatable (ordered continuous
        // value)?
        let mut residual_domain: Vec<usize> = Vec::new(); // indices into kept_right order
        let mut interp_col: Vec<bool> = Vec::with_capacity(kept_right.len());
        for (j, &ri) in kept_right.iter().enumerate() {
            let f = &right.schema().fields()[ri];
            let dim = dict.dimension(&f.semantics.dimension)?;
            if f.semantics.is_domain() {
                residual_domain.push(j);
                interp_col.push(false);
            } else {
                interp_col.push(dim.interpolatable());
            }
        }

        let w = self.window_secs;
        let width = 2.0 * w;
        let parts = left
            .rdd()
            .num_partitions()
            .max(right.rdd().num_partitions())
            .max(1);

        // --- stage 1: emit each element into both grids' bins -----------
        let lk = left.rdd().map_partitions_with_index({
            let exact_l = exact_l.clone();
            move |pidx, rows| {
                let mut out = Vec::with_capacity(rows.len() * 2);
                for (i, r) in rows.into_iter().enumerate() {
                    let Some(pos) = r.get(cont_l).as_f64() else {
                        continue;
                    };
                    let id = ((pidx as u64) << 40) | i as u64;
                    let key = r.key_of(&exact_l);
                    for grid in 0u8..2 {
                        let b = bin_of(pos, grid as f64 * w, width);
                        out.push(((key.clone(), grid, b), Side::L(id, r.clone(), pos)));
                    }
                }
                out
            }
        });
        let rk = right.rdd().map_partitions_with_index({
            let exact_r = exact_r.clone();
            let kept_right = kept_right.clone();
            move |_pidx, rows| {
                let mut out = Vec::with_capacity(rows.len() * 2);
                for r in rows {
                    let Some(pos) = r.get(cont_r).as_f64() else {
                        continue;
                    };
                    let key = r.key_of(&exact_r);
                    let vals: Vec<Value> = kept_right.iter().map(|&i| r.get(i).clone()).collect();
                    for grid in 0u8..2 {
                        let b = bin_of(pos, grid as f64 * w, width);
                        out.push(((key.clone(), grid, b), Side::R(vals.clone(), pos)));
                    }
                }
                out
            }
        });

        // --- stage 2: match within bins, dedupe across grids ------------
        type MatchKey = (u64, Vec<KeyAtom>);
        type MatchVal = (Row, f64, f64, Vec<Value>);
        let matches =
            lk.union(&rk)
                .group_by_key(parts)
                .map_partitions_named("interp_match", move |groups| {
                    let mut out: Vec<(MatchKey, MatchVal)> = Vec::new();
                    for ((_, grid, _), members) in groups {
                        let mut lefts: Vec<(u64, Row, f64)> = Vec::new();
                        let mut rights: Vec<(Vec<Value>, f64)> = Vec::new();
                        for m in members {
                            match m {
                                Side::L(id, row, pos) => lefts.push((id, row, pos)),
                                Side::R(vals, pos) => rights.push((vals, pos)),
                            }
                        }
                        rights.sort_by(|a, b| a.1.total_cmp(&b.1));
                        for (id, lrow, lpos) in lefts {
                            let lo = rights.partition_point(|(_, p)| *p < lpos - w);
                            for (rvals, rpos) in
                                rights[lo..].iter().take_while(|(_, p)| *p <= lpos + w)
                            {
                                // Deduplicate: the offset grid only reports
                                // pairs that do NOT share a base-grid bin.
                                if grid == 1
                                    && bin_of(lpos, 0.0, width) == bin_of(*rpos, 0.0, width)
                                {
                                    continue;
                                }
                                let residual: Vec<KeyAtom> =
                                    residual_domain.iter().map(|&j| rvals[j].key()).collect();
                                out.push((
                                    (id, residual),
                                    (lrow.clone(), lpos, *rpos, rvals.clone()),
                                ));
                            }
                        }
                    }
                    out
                });

        // --- stage 3: aggregate & interpolate per (left row, residual) --
        let rdd =
            matches
                .group_by_key(parts)
                .map_partitions_named("interp_aggregate", move |groups| {
                    let mut out = Vec::with_capacity(groups.len());
                    for (_, mut ms) in groups {
                        ms.sort_by(|a, b| a.2.total_cmp(&b.2));
                        let (lrow, lpos) = (ms[0].0.clone(), ms[0].1);
                        let mut values = lrow.into_values();
                        for (j, is_interp) in interp_col.iter().enumerate() {
                            values.push(aggregate_matches(&ms, j, lpos, *is_interp));
                        }
                        out.push(Row::new(values));
                    }
                    out
                });

        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!(
                "interpolation_join({}, {}, W={}s)",
                left.name(),
                right.name(),
                self.window_secs
            ),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::InterpolationJoin {
            window_secs: self.window_secs,
        }
    }
}

/// Aggregate one kept right column over a left row's matches (sorted by
/// right position): linear interpolation at `lpos` for interpolatable
/// columns, nearest-match otherwise. Shared with the naive all-pairs
/// baseline so both joins aggregate identically.
pub(crate) fn aggregate_matches(
    ms: &[(Row, f64, f64, Vec<Value>)],
    col: usize,
    lpos: f64,
    interpolate: bool,
) -> Value {
    if interpolate {
        // Nearest numeric sample at or below lpos, and at or above.
        let mut below: Option<(f64, f64)> = None;
        let mut above: Option<(f64, f64)> = None;
        for (_, _, rpos, vals) in ms {
            let Some(v) = vals[col].as_f64() else {
                continue;
            };
            if *rpos <= lpos {
                below = Some((*rpos, v));
            }
            if *rpos >= lpos && above.is_none() {
                above = Some((*rpos, v));
            }
        }
        match (below, above) {
            (Some((p0, v0)), Some((p1, v1))) => {
                if (p1 - p0).abs() < f64::EPSILON {
                    Value::Float(v0)
                } else {
                    Value::Float(v0 + (v1 - v0) * (lpos - p0) / (p1 - p0))
                }
            }
            (Some((_, v)), None) | (None, Some((_, v))) => Value::Float(v),
            (None, None) => Value::Null,
        }
    } else {
        // Nearest match by |rpos - lpos|.
        ms.iter()
            .min_by(|a, b| (a.2 - lpos).abs().total_cmp(&(b.2 - lpos).abs()))
            .map(|(_, _, _, vals)| vals[col].clone())
            .unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn left_events(ctx: &ExecCtx, times: &[i64]) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("app", FieldSemantics::value("application", "app-name")),
        ])
        .unwrap();
        let rows: Vec<Row> = times
            .iter()
            .map(|&t| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::str("AMG"),
                ])
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, "events", 2)
    }

    fn right_readings(ctx: &ExecCtx, samples: &[(i64, f64)]) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows: Vec<Row> = samples
            .iter()
            .map(|&(t, v)| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(v),
                ])
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, "readings", 2)
    }

    #[test]
    fn interpolates_between_bracketing_samples() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(0, 60.0), (20, 70.0)]);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        // temp at t=10 interpolated halfway between 60 and 70.
        let temp = rows[0].get(3).as_f64().unwrap();
        assert!((temp - 65.0).abs() < 1e-9, "temp={temp}");
    }

    #[test]
    fn output_schema_keeps_left_time_and_drops_right_keys() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(0, 60.0)]);
        let s = InterpolationJoin::new(15.0)
            .derive_schema(l.schema(), r.schema(), &dict())
            .unwrap();
        assert!(s.has_column("time"));
        assert!(!s.has_column("t"));
        assert!(!s.has_column("NODE"));
        assert!(s.has_column("temp"));
    }

    #[test]
    fn matches_outside_window_are_dropped() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[100]);
        let r = right_readings(&ctx, &[(0, 60.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }

    #[test]
    fn cross_bin_pairs_are_found_once() {
        // Elements on opposite sides of a 2W bin boundary are within W:
        // they must match exactly once (grid dedupe).
        let ctx = ExecCtx::local();
        // W=10 => bins [0,20), [20,40). l=19, r=21 straddle the boundary.
        let l = left_events(&ctx, &[19]);
        let r = right_readings(&ctx, &[(21, 50.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(3).as_f64(), Some(50.0));
    }

    #[test]
    fn same_bin_pairs_are_found_once() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[5]);
        let r = right_readings(&ctx, &[(6, 42.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 1);
    }

    #[test]
    fn discrete_keys_must_match_exactly() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        // Same times but a different node.
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![Row::new(vec![
            Value::str("other-node"),
            Value::Time(Timestamp::from_secs(10)),
            Value::Float(99.0),
        ])];
        let r = SjDataset::from_rows(&ctx, rows, schema, "readings", 1);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }

    #[test]
    fn one_sided_match_takes_nearest() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(5, 61.0), (2, 60.0)]);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        // Only samples below lpos: take the closest one (t=5).
        assert_eq!(rows[0].get(3).as_f64(), Some(61.0));
    }

    #[test]
    fn residual_right_domains_multiply_output_rows() {
        // A right dataset with a location domain: one left event matches
        // readings at several locations and must yield one row each.
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new(
                "loc",
                FieldSemantics::domain("rack-location", "location-name"),
            ),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mk = |loc: &str, t: i64, v: f64| {
            Row::new(vec![
                Value::str("n1"),
                Value::str(loc),
                Value::Time(Timestamp::from_secs(t)),
                Value::Float(v),
            ])
        };
        let rows = vec![
            mk("top", 8, 30.0),
            mk("top", 12, 34.0),
            mk("bottom", 9, 20.0),
            mk("bottom", 11, 22.0),
        ];
        let r = SjDataset::from_rows(&ctx, rows, schema, "readings", 2);
        let out = InterpolationJoin::new(5.0).apply(&l, &r, &dict()).unwrap();
        let mut got = out.collect().unwrap();
        got.sort_by_key(|r| r.get(3).as_str().unwrap().to_string());
        assert_eq!(got.len(), 2);
        // bottom interpolated at t=10 between 20 and 22.
        assert_eq!(got[0].get(3).as_str(), Some("bottom"));
        assert!((got[0].get(4).as_f64().unwrap() - 21.0).abs() < 1e-9);
        // top interpolated at t=10 between 30 and 34.
        assert_eq!(got[1].get(3).as_str(), Some("top"));
        assert!((got[1].get(4).as_f64().unwrap() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_window_and_wrong_domain_shapes() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[1]);
        let r = right_readings(&ctx, &[(1, 1.0)]);
        assert!(InterpolationJoin::new(0.0)
            .derive_schema(l.schema(), r.schema(), &dict())
            .is_err());
        // No shared continuous domain.
        let layout = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let lay = SjDataset::from_rows(&ctx, vec![], layout, "layout", 1);
        assert!(InterpolationJoin::new(10.0)
            .derive_schema(l.schema(), lay.schema(), &dict())
            .is_err());
    }

    #[test]
    fn nearest_aggregation_for_non_interpolatable_values() {
        // Right value on an unordered dimension (application name):
        // nearest match wins, no averaging.
        let ctx = ExecCtx::local();
        let schema_l = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        ])
        .unwrap();
        let l = SjDataset::from_rows(
            &ctx,
            vec![Row::new(vec![
                Value::str("n1"),
                Value::Time(Timestamp::from_secs(10)),
            ])],
            schema_l,
            "l",
            1,
        );
        let schema_r = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("app", FieldSemantics::value("application", "app-name")),
        ])
        .unwrap();
        let r = SjDataset::from_rows(
            &ctx,
            vec![
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(7)),
                    Value::str("far"),
                ]),
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(11)),
                    Value::str("near"),
                ]),
            ],
            schema_r,
            "r",
            1,
        );
        let out = InterpolationJoin::new(5.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(2).as_str(), Some("near"));
    }
}
