//! The interpolation join (§5.3) — ScrubJay's novel data-parallel
//! windowed join over an ordered continuous domain.
//!
//! Computing correspondences between elements that do not match exactly
//! naively requires all pairwise distances — unscalable. ScrubJay
//! constrains the problem to correspondences within a window `W` and makes
//! it data-parallel with a double-binning scheme:
//!
//! 1. every element is placed in a bin of width `2W` twice — once on a
//!    grid starting at 0 and once on a grid offset by exactly `W`;
//! 2. any two elements within `W` of each other are guaranteed to share a
//!    bin on at least one grid, so matching happens independently per bin
//!    (a `group_by_key` over `(discrete key, grid, bin)`);
//! 3. pairs found in both grids are deduplicated deterministically (the
//!    offset grid skips pairs that already share a base-grid bin);
//! 4. many-to-one matches are aggregated per semantics — ordered
//!    continuous values are linearly interpolated at the left element's
//!    position, everything else takes the nearest match.
//!
//! Two kernels share this contract. The **columnar** kernel (default)
//! never ships a left row through the shuffle: left elements cross the
//! bin-matching stage as 16-byte `(id, position)` probes, matches are
//! routed back to the left partition encoded in the id with
//! [`exchange`](sjdf::rdd::Rdd::exchange), and the output is assembled
//! batch-at-a-time against the cached left partition — one `gather` for
//! the left columns plus one appended column per kept right cell. The
//! **rowwise** kernel is the reference baseline when the context runs in
//! rowwise mode.
//!
//! Elements whose position is NaN are excluded on both paths *before*
//! binning: `(NaN as i64)` saturates to 0, so a NaN-position element
//! would otherwise land in bin 0 of both grids and pollute that bin's
//! group (and every comparison against NaN is vacuously false, so it can
//! never legitimately match anything).

use crate::column::{Column, ColumnarPartition};
use crate::dataset::SjDataset;
use crate::derivations::combine::common::{merge_schemas, SharedDomains};
use crate::derivations::{not_applicable, Combination, DerivationSpec};
use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;
use crate::value::{KeyAtom, Value};
use sjdf::ByteSize;
use std::collections::HashMap;
use std::sync::Arc;

/// Windowed, interpolating combination over one shared ordered continuous
/// domain (plus exact matching on all shared discrete domains).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolationJoin {
    window_secs: f64,
}

impl InterpolationJoin {
    /// Join with matching window `W` (in seconds when the continuous
    /// domain is time; in domain units otherwise).
    pub fn new(window_secs: f64) -> Self {
        InterpolationJoin { window_secs }
    }

    fn shared(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<SharedDomains> {
        // Rejects zero, negative, and NaN windows alike.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(not_applicable(
                "interpolation_join",
                "window must be positive",
            ));
        }
        let shared = SharedDomains::analyze(left, right, dict)?;
        if shared.continuous.len() != 1 {
            return Err(not_applicable(
                "interpolation_join",
                format!(
                    "requires exactly one shared ordered continuous domain (found {})",
                    shared.continuous.len()
                ),
            ));
        }
        Ok(shared)
    }
}

/// Everything both kernels need, resolved once from the schemas.
struct InterpPlan {
    exact_l: Vec<usize>,
    exact_r: Vec<usize>,
    cont_l: usize,
    cont_r: usize,
    kept_right: Vec<usize>,
    /// Indices (into `kept_right` order) of residual right domains — the
    /// per-left-row aggregation group keys.
    residual_domain: Vec<usize>,
    /// Per kept right column: linearly interpolatable?
    interp_col: Vec<bool>,
    w: f64,
    width: f64,
    parts: usize,
}

/// One element flowing into the rowwise bin-matching shuffle.
#[derive(Debug, Clone)]
enum Side {
    /// Left element: unique id, full row, position on the continuous axis.
    L(u64, Row, f64),
    /// Right element: projected kept cells, position.
    R(Vec<Value>, f64),
}

impl ByteSize for Side {
    fn byte_size(&self) -> usize {
        match self {
            Side::L(_, row, _) => 16 + row.byte_size(),
            Side::R(vals, _) => 8 + 24 + vals.iter().map(ByteSize::byte_size).sum::<usize>(),
        }
    }
}

/// One element flowing into the columnar bin-matching shuffle. Left rows
/// never cross the wire — a probe is just the id (partition index in the
/// high bits, local row index in the low 40) and the position; right
/// projections are shared by `Arc` across their two grid emissions. The
/// residual aggregation key is encoded to bytes once per right *row*
/// (not per match) with [`Column::encode_key_at`], whose encoding is
/// injective over [`Value::key`] — byte equality is key equality.
#[derive(Debug, Clone)]
enum Probe {
    /// Left element: id, position.
    L(u64, f64),
    /// Right element: projected kept cells, encoded residual key, position.
    R(Arc<Vec<Value>>, Arc<[u8]>, f64),
}

impl ByteSize for Probe {
    fn byte_size(&self) -> usize {
        match self {
            Probe::L(..) => 16,
            Probe::R(vals, res, _) => 16 + vals.byte_size() + res.len(),
        }
    }
}

/// Callers must exclude NaN positions first: `(NaN as i64)` saturates to
/// 0, which would silently file the element under bin 0 of both grids.
#[inline]
fn bin_of(pos: f64, offset: f64, width: f64) -> i64 {
    ((pos + offset) / width).floor() as i64
}

/// Total order on a left row's matches: right position first, then the
/// projected right cells' key order. Position alone is not a total order
/// when two right samples share a position — arrival order would then
/// decide which sample "nearest" aggregation picks, and arrival order
/// differs between the rowwise and columnar shuffles. Both kernels (and
/// the naive all-pairs baseline) sort with this comparator so ties break
/// identically everywhere.
pub(crate) fn match_cmp(
    apos: f64,
    avals: &[Value],
    bpos: f64,
    bvals: &[Value],
) -> std::cmp::Ordering {
    apos.total_cmp(&bpos).then_with(|| {
        for (x, y) in avals.iter().zip(bvals.iter()) {
            let o = x.key().cmp(&y.key());
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        avals.len().cmp(&bvals.len())
    })
}

impl Combination for InterpolationJoin {
    fn name(&self) -> &'static str {
        "interpolation_join"
    }

    fn derive_schema(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<Schema> {
        let shared = self.shared(left, right, dict)?;
        let (schema, _) = merge_schemas(left, right, &shared.right_key_indices())?;
        Ok(schema)
    }

    fn apply(
        &self,
        left: &SjDataset,
        right: &SjDataset,
        dict: &SemanticDictionary,
    ) -> Result<SjDataset> {
        let shared = self.shared(left.schema(), right.schema(), dict)?;
        let (out_schema, kept_right) =
            merge_schemas(left.schema(), right.schema(), &shared.right_key_indices())?;

        // Per kept right column: is it an aggregation group key (a residual
        // domain) and is it linearly interpolatable (ordered continuous
        // value)?
        let mut residual_domain: Vec<usize> = Vec::new(); // indices into kept_right order
        let mut interp_col: Vec<bool> = Vec::with_capacity(kept_right.len());
        for (j, &ri) in kept_right.iter().enumerate() {
            let f = &right.schema().fields()[ri];
            let dim = dict.dimension(&f.semantics.dimension)?;
            if f.semantics.is_domain() {
                residual_domain.push(j);
                interp_col.push(false);
            } else {
                interp_col.push(dim.interpolatable());
            }
        }

        let w = self.window_secs;
        let plan = InterpPlan {
            exact_l: shared.exact.iter().map(|c| c.left_idx).collect(),
            exact_r: shared.exact.iter().map(|c| c.right_idx).collect(),
            cont_l: shared.continuous[0].left_idx,
            cont_r: shared.continuous[0].right_idx,
            kept_right,
            residual_domain,
            interp_col,
            w,
            width: 2.0 * w,
            parts: left.num_partitions().max(right.num_partitions()).max(1),
        };
        let name = format!(
            "interpolation_join({}, {}, W={}s)",
            left.name(),
            right.name(),
            self.window_secs
        );
        if left.is_columnar() && right.is_columnar() {
            return apply_columnar(left, right, plan, out_schema, name);
        }
        apply_rowwise(left, right, plan, out_schema, name)
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::InterpolationJoin {
            window_secs: self.window_secs,
        }
    }
}

/// The rowwise reference kernel: full left rows ride the bin shuffle.
fn apply_rowwise(
    left: &SjDataset,
    right: &SjDataset,
    plan: InterpPlan,
    out_schema: Schema,
    name: String,
) -> Result<SjDataset> {
    let InterpPlan {
        exact_l,
        exact_r,
        cont_l,
        cont_r,
        kept_right,
        residual_domain,
        interp_col,
        w,
        width,
        parts,
    } = plan;

    // --- stage 1: emit each element into both grids' bins -----------
    let lk = left.rdd().map_partitions_with_index({
        move |pidx, rows| {
            let mut out = Vec::with_capacity(rows.len() * 2);
            for (i, r) in rows.into_iter().enumerate() {
                let Some(pos) = r.get(cont_l).as_f64() else {
                    continue;
                };
                if pos.is_nan() {
                    continue;
                }
                let id = ((pidx as u64) << 40) | i as u64;
                let key = r.key_of(&exact_l);
                for grid in 0u8..2 {
                    let b = bin_of(pos, grid as f64 * w, width);
                    out.push(((key.clone(), grid, b), Side::L(id, r.clone(), pos)));
                }
            }
            out
        }
    });
    let rk = right.rdd().map_partitions_with_index({
        move |_pidx, rows| {
            let mut out = Vec::with_capacity(rows.len() * 2);
            for r in rows {
                let Some(pos) = r.get(cont_r).as_f64() else {
                    continue;
                };
                if pos.is_nan() {
                    continue;
                }
                let key = r.key_of(&exact_r);
                let vals: Vec<Value> = kept_right.iter().map(|&i| r.get(i).clone()).collect();
                for grid in 0u8..2 {
                    let b = bin_of(pos, grid as f64 * w, width);
                    out.push(((key.clone(), grid, b), Side::R(vals.clone(), pos)));
                }
            }
            out
        }
    });

    // --- stage 2: match within bins, dedupe across grids ------------
    type MatchKey = (u64, Vec<KeyAtom>);
    type MatchVal = (Row, f64, f64, Vec<Value>);
    let matches =
        lk.union(&rk)
            .group_by_key(parts)
            .map_partitions_named("interp_match", move |groups| {
                let mut out: Vec<(MatchKey, MatchVal)> = Vec::new();
                for ((_, grid, _), members) in groups {
                    let mut lefts: Vec<(u64, Row, f64)> = Vec::new();
                    let mut rights: Vec<(Vec<Value>, f64)> = Vec::new();
                    for m in members {
                        match m {
                            Side::L(id, row, pos) => lefts.push((id, row, pos)),
                            Side::R(vals, pos) => rights.push((vals, pos)),
                        }
                    }
                    rights.sort_by(|a, b| a.1.total_cmp(&b.1));
                    for (id, lrow, lpos) in lefts {
                        let lo = rights.partition_point(|(_, p)| *p < lpos - w);
                        for (rvals, rpos) in rights[lo..].iter().take_while(|(_, p)| *p <= lpos + w)
                        {
                            // Deduplicate: the offset grid only reports
                            // pairs that do NOT share a base-grid bin.
                            if grid == 1 && bin_of(lpos, 0.0, width) == bin_of(*rpos, 0.0, width) {
                                continue;
                            }
                            let residual: Vec<KeyAtom> =
                                residual_domain.iter().map(|&j| rvals[j].key()).collect();
                            out.push(((id, residual), (lrow.clone(), lpos, *rpos, rvals.clone())));
                        }
                    }
                }
                out
            });

    // --- stage 3: aggregate & interpolate per (left row, residual) --
    let rdd = matches
        .group_by_key(parts)
        .map_partitions_named("interp_aggregate", move |groups| {
            let mut out = Vec::with_capacity(groups.len());
            for (_, mut ms) in groups {
                ms.sort_by(|a, b| match_cmp(a.2, &a.3, b.2, &b.3));
                let (lrow, lpos) = (ms[0].0.clone(), ms[0].1);
                let mut values = lrow.into_values();
                for (j, is_interp) in interp_col.iter().enumerate() {
                    values.push(aggregate_matches(&ms, j, lpos, *is_interp));
                }
                out.push(Row::new(values));
            }
            out
        });

    Ok(SjDataset::new(rdd, out_schema, name))
}

/// Structure-of-arrays block of probes bound for one reduce partition of
/// the columnar bin-matching stage. Probes cross the shuffle as whole
/// blocks — one record per (map task, destination) pair — instead of as
/// per-element `(key, probe)` records, and the exact-match key encodings
/// live concatenated in a single byte arena: a block of thousands of
/// probes costs a handful of allocations on each side of the wire.
#[derive(Debug, Clone, Default)]
struct ProbeBlock {
    /// Concatenated per-probe key encodings ([`Column::encode_key_at`]).
    keys: Vec<u8>,
    /// End offset of each probe's key slice in `keys`.
    key_ends: Vec<u32>,
    /// Bin index of each probe on the single width-`2W` grid.
    bins: Vec<i64>,
    probes: Vec<Probe>,
}

impl ProbeBlock {
    fn push(&mut self, key: &[u8], bin: i64, probe: Probe) {
        self.keys.extend_from_slice(key);
        self.key_ends.push(self.keys.len() as u32);
        self.bins.push(bin);
        self.probes.push(probe);
    }

    fn len(&self) -> usize {
        self.probes.len()
    }

    fn key(&self, i: usize) -> &[u8] {
        let start = if i == 0 {
            0
        } else {
            self.key_ends[i - 1] as usize
        };
        &self.keys[start..self.key_ends[i] as usize]
    }
}

impl ByteSize for ProbeBlock {
    fn byte_size(&self) -> usize {
        96 + self.keys.len()
            + 12 * self.probes.len()
            + self.probes.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

/// Reduce partition owning bin `bin` of the exact-match group `key`.
#[inline]
fn probe_dest(key: &[u8], bin: i64, parts: usize) -> usize {
    (sjdf::ops::hash64(&(key, bin)) % parts as u64) as usize
}

/// The columnar kernel. Four stages:
/// 1. probes — left partitions (cached) emit 16-byte `(id, pos)` probes,
///    right partitions emit `Arc`-shared kept-cell projections, both
///    packed into per-destination [`ProbeBlock`]s. Binning differs from
///    the rowwise kernel's double grid: rights land once in their
///    width-`2W` bin, and each left lands in its own bin plus the
///    neighbor its window reaches into (the lower neighbor from the
///    bin's lower half, the upper neighbor from the upper half — a
///    `±W` window spans at most those two bins). Every pair within `W`
///    meets in exactly one bin — the right's — so the match set is
///    identical with no cross-grid dedupe and half the emissions;
/// 2. `interp_match` — groups probes by `(key, bin)` locally (hash of
///    the block's key slices; no per-probe key allocation) and runs the
///    same inclusive window scan as the rowwise kernel;
/// 3. matches are routed back to the owning left partition (encoded in
///    the id's high bits) with `exchange`, again as per-destination
///    blocks;
/// 4. `interp_aggregate` — zipped with the cached left batch: one
///    `gather` for the left columns, one appended column per kept right
///    cell.
fn apply_columnar(
    left: &SjDataset,
    right: &SjDataset,
    plan: InterpPlan,
    out_schema: Schema,
    name: String,
) -> Result<SjDataset> {
    let InterpPlan {
        exact_l,
        exact_r,
        cont_l,
        cont_r,
        kept_right,
        residual_domain,
        interp_col,
        w,
        width,
        parts,
    } = plan;
    let left_batches = left.batch_rdd().cache();
    let left_parts = left_batches.num_partitions().max(1);
    // Residual-domain columns in right-batch coordinates, for encoding
    // the residual key straight off the columns.
    let res_cols: Vec<usize> = residual_domain.iter().map(|&j| kept_right[j]).collect();

    // --- stage 1: pack probes into per-destination blocks -----------
    // Bin keys are byte encodings of the exact-match cells — injective
    // over `Value::key`, so grouping is identical to the rowwise path's
    // `KeyAtom` keys, without the per-row atom vectors and `Arc` churn.
    let lk = left_batches.map_partitions_with_index(move |pidx, bs| {
        let batch = ColumnarPartition::concat_owned(bs);
        if batch.is_empty() {
            return Vec::new();
        }
        let mut dest: Vec<ProbeBlock> = vec![ProbeBlock::default(); parts];
        let ccol = batch.column(cont_l);
        let mut keybuf: Vec<u8> = Vec::with_capacity(32);
        for i in 0..batch.len() {
            let Some(pos) = ccol.f64_at(i) else { continue };
            if pos.is_nan() {
                continue;
            }
            let id = ((pidx as u64) << 40) | i as u64;
            keybuf.clear();
            for &c in &exact_l {
                batch.column(c).encode_key_at(i, &mut keybuf);
            }
            let b0 = bin_of(pos, 0.0, width);
            // The ±w window reaches into exactly one neighboring 2w-bin:
            // the lower one from the bin's lower half, else the upper.
            let neighbor = if pos - b0 as f64 * width < w {
                b0.saturating_sub(1)
            } else {
                b0.saturating_add(1)
            };
            for b in [b0, neighbor] {
                dest[probe_dest(&keybuf, b, parts)].push(&keybuf, b, Probe::L(id, pos));
            }
        }
        dest.into_iter()
            .enumerate()
            .filter(|(_, blk)| blk.len() > 0)
            .collect()
    });
    let rk = right
        .batch_rdd()
        .map_partitions_named("interp_probe_right", move |bs| {
            let batch = ColumnarPartition::concat_owned(bs);
            if batch.is_empty() {
                return Vec::new();
            }
            let mut dest: Vec<ProbeBlock> = vec![ProbeBlock::default(); parts];
            let ccol = batch.column(cont_r);
            let mut keybuf: Vec<u8> = Vec::with_capacity(32);
            let mut resbuf: Vec<u8> = Vec::with_capacity(16);
            for i in 0..batch.len() {
                let Some(pos) = ccol.f64_at(i) else { continue };
                if pos.is_nan() {
                    continue;
                }
                keybuf.clear();
                for &c in &exact_r {
                    batch.column(c).encode_key_at(i, &mut keybuf);
                }
                resbuf.clear();
                for &c in &res_cols {
                    batch.column(c).encode_key_at(i, &mut resbuf);
                }
                let vals: Arc<Vec<Value>> =
                    Arc::new(kept_right.iter().map(|&c| batch.value_at(i, c)).collect());
                let b = bin_of(pos, 0.0, width);
                dest[probe_dest(&keybuf, b, parts)].push(
                    &keybuf,
                    b,
                    Probe::R(vals, Arc::from(&resbuf[..]), pos),
                );
            }
            dest.into_iter()
                .enumerate()
                .filter(|(_, blk)| blk.len() > 0)
                .collect()
        });

    // --- stage 2: group by (key, bin) locally, match within bins ----
    type CMatchKey = (u64, Arc<[u8]>);
    type CMatchVal = (f64, f64, Arc<Vec<Value>>);
    type MatchBlock = Vec<(CMatchKey, CMatchVal)>;
    let matches: sjdf::Rdd<(usize, MatchBlock)> = lk
        .union(&rk)
        .exchange(parts)
        .map_partitions_named("interp_match", move |blocks| {
            // Group probes by (key, bin) via key-slice hashing into the
            // blocks' shared arenas — first-occurrence order, collisions
            // resolved by comparing the actual bytes.
            type RightProbe = (Arc<Vec<Value>>, Arc<[u8]>, f64);
            struct Group {
                lefts: Vec<(u64, f64)>,
                rights: Vec<RightProbe>,
            }
            let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
            let mut owners: Vec<(usize, usize)> = Vec::new(); // exemplar (block, probe)
            let mut groups: Vec<Group> = Vec::new();
            for (bi, blk) in blocks.iter().enumerate() {
                for i in 0..blk.len() {
                    let (key, bin) = (blk.key(i), blk.bins[i]);
                    let h = sjdf::ops::hash64(&(key, bin));
                    let slot = index.entry(h).or_default();
                    let gi = match slot.iter().copied().find(|&g| {
                        let (ob, oi) = owners[g];
                        blocks[ob].bins[oi] == bin && blocks[ob].key(oi) == key
                    }) {
                        Some(g) => g,
                        None => {
                            let g = groups.len();
                            slot.push(g);
                            owners.push((bi, i));
                            groups.push(Group {
                                lefts: Vec::new(),
                                rights: Vec::new(),
                            });
                            g
                        }
                    };
                    match &blk.probes[i] {
                        Probe::L(id, pos) => groups[gi].lefts.push((*id, *pos)),
                        Probe::R(vals, res, pos) => {
                            groups[gi]
                                .rights
                                .push((Arc::clone(vals), Arc::clone(res), *pos))
                        }
                    }
                }
            }
            // The inclusive window scan, identical to the rowwise kernel;
            // matches are packed into blocks by home left partition.
            let mut dest: Vec<MatchBlock> = vec![Vec::new(); left_parts];
            for g in &mut groups {
                if g.lefts.is_empty() || g.rights.is_empty() {
                    continue;
                }
                g.rights.sort_by(|a, b| a.2.total_cmp(&b.2));
                for &(id, lpos) in &g.lefts {
                    let lo = g.rights.partition_point(|(_, _, p)| *p < lpos - w);
                    for (rvals, res, rpos) in
                        g.rights[lo..].iter().take_while(|(_, _, p)| *p <= lpos + w)
                    {
                        dest[(id >> 40) as usize]
                            .push(((id, Arc::clone(res)), (lpos, *rpos, Arc::clone(rvals))));
                    }
                }
            }
            dest.into_iter()
                .enumerate()
                .filter(|(_, blk)| !blk.is_empty())
                .collect()
        });

    // --- stages 3+4: route matches home, aggregate against the cache -
    let routed = matches.exchange(left_parts);
    let rdd = routed.zip_partitions(&left_batches, "interp_aggregate", move |_idx, ms, bs| {
        if ms.is_empty() {
            return Vec::new();
        }
        let batch = ColumnarPartition::concat_owned(bs);
        // Group matches by (left row id, residual key) in first-arrival
        // order — `exchange` preserves it, so output order is stable.
        let mut index: HashMap<CMatchKey, usize> = HashMap::new();
        let mut groups: Vec<(u64, Vec<CMatchVal>)> = Vec::new();
        for (k, v) in ms.into_iter().flatten() {
            let id = k.0;
            let gi = match index.get(&k) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    index.insert(k, g);
                    groups.push((id, Vec::new()));
                    g
                }
            };
            groups[gi].1.push(v);
        }
        let mut emit: Vec<u32> = Vec::with_capacity(groups.len());
        let mut appended: Vec<Vec<Value>> =
            vec![Vec::with_capacity(groups.len()); interp_col.len()];
        for (id, ms) in groups.iter_mut() {
            ms.sort_by(|a, b| match_cmp(a.1, &a.2, b.1, &b.2));
            let lpos = ms[0].0;
            emit.push((*id & ((1u64 << 40) - 1)) as u32);
            for (j, is_interp) in interp_col.iter().enumerate() {
                appended[j].push(aggregate_core(ms, |m| m.1, |m| &m.2[j], lpos, *is_interp));
            }
        }
        let mut out = batch.gather(&emit);
        for vals in &appended {
            out = out.append_column(Column::from_values(vals));
        }
        vec![out]
    })?;
    Ok(SjDataset::from_batches(rdd, out_schema, name))
}

/// Aggregate one kept right column over a left row's matches (sorted with
/// [`match_cmp`]): linear interpolation at `lpos` for interpolatable
/// columns, nearest-match otherwise. Shared with the naive all-pairs
/// baseline so both joins aggregate identically.
pub(crate) fn aggregate_matches(
    ms: &[(Row, f64, f64, Vec<Value>)],
    col: usize,
    lpos: f64,
    interpolate: bool,
) -> Value {
    aggregate_core(ms, |m| m.2, |m| &m.3[col], lpos, interpolate)
}

/// The aggregation core, generic over the match representation (the
/// rowwise kernel stores `(Row, lpos, rpos, vals)` tuples, the columnar
/// kernel `(lpos, rpos, Arc<vals>)`).
fn aggregate_core<T>(
    ms: &[T],
    rpos_of: impl Fn(&T) -> f64,
    val_of: impl Fn(&T) -> &Value,
    lpos: f64,
    interpolate: bool,
) -> Value {
    if interpolate {
        // Nearest numeric sample at or below lpos, and at or above.
        let mut below: Option<(f64, f64)> = None;
        let mut above: Option<(f64, f64)> = None;
        for m in ms {
            let Some(v) = val_of(m).as_f64() else {
                continue;
            };
            let rpos = rpos_of(m);
            if rpos <= lpos {
                below = Some((rpos, v));
            }
            if rpos >= lpos && above.is_none() {
                above = Some((rpos, v));
            }
        }
        match (below, above) {
            (Some((p0, v0)), Some((p1, v1))) => {
                if (p1 - p0).abs() < f64::EPSILON {
                    Value::Float(v0)
                } else {
                    Value::Float(v0 + (v1 - v0) * (lpos - p0) / (p1 - p0))
                }
            }
            (Some((_, v)), None) | (None, Some((_, v))) => Value::Float(v),
            (None, None) => Value::Null,
        }
    } else {
        // Nearest match by |rpos - lpos|; ties keep the first match in
        // the deterministic sort order.
        ms.iter()
            .min_by(|a, b| {
                (rpos_of(a) - lpos)
                    .abs()
                    .total_cmp(&(rpos_of(b) - lpos).abs())
            })
            .map(|m| val_of(m).clone())
            .unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::units::time::Timestamp;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn left_events(ctx: &ExecCtx, times: &[i64]) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("app", FieldSemantics::value("application", "app-name")),
        ])
        .unwrap();
        let rows: Vec<Row> = times
            .iter()
            .map(|&t| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::str("AMG"),
                ])
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, "events", 2)
    }

    fn right_readings(ctx: &ExecCtx, samples: &[(i64, f64)]) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows: Vec<Row> = samples
            .iter()
            .map(|&(t, v)| {
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(t)),
                    Value::Float(v),
                ])
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, "readings", 2)
    }

    /// Run a join under both execution modes and return (columnar,
    /// rowwise) results sorted into a canonical order.
    fn run_both_modes(
        build: impl Fn(&ExecCtx) -> (SjDataset, SjDataset),
        window: f64,
    ) -> (Vec<Row>, Vec<Row>) {
        let d = dict();
        let sort = |mut rows: Vec<Row>| {
            rows.sort_by_key(|r| r.values().iter().map(Value::key).collect::<Vec<_>>());
            rows
        };
        let col = {
            let ctx = ExecCtx::local();
            let (l, r) = build(&ctx);
            assert!(l.is_columnar() && r.is_columnar());
            sort(
                InterpolationJoin::new(window)
                    .apply(&l, &r, &d)
                    .unwrap()
                    .collect()
                    .unwrap(),
            )
        };
        let row = {
            let ctx = ExecCtx::local().with_rowwise();
            let (l, r) = build(&ctx);
            sort(
                InterpolationJoin::new(window)
                    .apply(&l, &r, &d)
                    .unwrap()
                    .collect()
                    .unwrap(),
            )
        };
        (col, row)
    }

    #[test]
    fn interpolates_between_bracketing_samples() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(0, 60.0), (20, 70.0)]);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        // temp at t=10 interpolated halfway between 60 and 70.
        let temp = rows[0].get(3).as_f64().unwrap();
        assert!((temp - 65.0).abs() < 1e-9, "temp={temp}");
    }

    #[test]
    fn output_schema_keeps_left_time_and_drops_right_keys() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(0, 60.0)]);
        let s = InterpolationJoin::new(15.0)
            .derive_schema(l.schema(), r.schema(), &dict())
            .unwrap();
        assert!(s.has_column("time"));
        assert!(!s.has_column("t"));
        assert!(!s.has_column("NODE"));
        assert!(s.has_column("temp"));
    }

    #[test]
    fn matches_outside_window_are_dropped() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[100]);
        let r = right_readings(&ctx, &[(0, 60.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }

    #[test]
    fn cross_bin_pairs_are_found_once() {
        // Elements on opposite sides of a 2W bin boundary are within W:
        // they must match exactly once (grid dedupe).
        let ctx = ExecCtx::local();
        // W=10 => bins [0,20), [20,40). l=19, r=21 straddle the boundary.
        let l = left_events(&ctx, &[19]);
        let r = right_readings(&ctx, &[(21, 50.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(3).as_f64(), Some(50.0));
    }

    #[test]
    fn same_bin_pairs_are_found_once() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[5]);
        let r = right_readings(&ctx, &[(6, 42.0)]);
        let out = InterpolationJoin::new(10.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 1);
    }

    #[test]
    fn discrete_keys_must_match_exactly() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        // Same times but a different node.
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![Row::new(vec![
            Value::str("other-node"),
            Value::Time(Timestamp::from_secs(10)),
            Value::Float(99.0),
        ])];
        let r = SjDataset::from_rows(&ctx, rows, schema, "readings", 1);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }

    #[test]
    fn one_sided_match_takes_nearest() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let r = right_readings(&ctx, &[(5, 61.0), (2, 60.0)]);
        let out = InterpolationJoin::new(15.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        // Only samples below lpos: take the closest one (t=5).
        assert_eq!(rows[0].get(3).as_f64(), Some(61.0));
    }

    #[test]
    fn residual_right_domains_multiply_output_rows() {
        // A right dataset with a location domain: one left event matches
        // readings at several locations and must yield one row each.
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[10]);
        let schema = Schema::new(vec![
            FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new(
                "loc",
                FieldSemantics::domain("rack-location", "location-name"),
            ),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mk = |loc: &str, t: i64, v: f64| {
            Row::new(vec![
                Value::str("n1"),
                Value::str(loc),
                Value::Time(Timestamp::from_secs(t)),
                Value::Float(v),
            ])
        };
        let rows = vec![
            mk("top", 8, 30.0),
            mk("top", 12, 34.0),
            mk("bottom", 9, 20.0),
            mk("bottom", 11, 22.0),
        ];
        let r = SjDataset::from_rows(&ctx, rows, schema, "readings", 2);
        let out = InterpolationJoin::new(5.0).apply(&l, &r, &dict()).unwrap();
        let mut got = out.collect().unwrap();
        got.sort_by_key(|r| r.get(3).as_str().unwrap().to_string());
        assert_eq!(got.len(), 2);
        // bottom interpolated at t=10 between 20 and 22.
        assert_eq!(got[0].get(3).as_str(), Some("bottom"));
        assert!((got[0].get(4).as_f64().unwrap() - 21.0).abs() < 1e-9);
        // top interpolated at t=10 between 30 and 34.
        assert_eq!(got[1].get(3).as_str(), Some("top"));
        assert!((got[1].get(4).as_f64().unwrap() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_zero_window_and_wrong_domain_shapes() {
        let ctx = ExecCtx::local();
        let l = left_events(&ctx, &[1]);
        let r = right_readings(&ctx, &[(1, 1.0)]);
        assert!(InterpolationJoin::new(0.0)
            .derive_schema(l.schema(), r.schema(), &dict())
            .is_err());
        // No shared continuous domain.
        let layout = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let lay = SjDataset::from_rows(&ctx, vec![], layout, "layout", 1);
        assert!(InterpolationJoin::new(10.0)
            .derive_schema(l.schema(), lay.schema(), &dict())
            .is_err());
    }

    #[test]
    fn nearest_aggregation_for_non_interpolatable_values() {
        // Right value on an unordered dimension (application name):
        // nearest match wins, no averaging.
        let ctx = ExecCtx::local();
        let schema_l = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        ])
        .unwrap();
        let l = SjDataset::from_rows(
            &ctx,
            vec![Row::new(vec![
                Value::str("n1"),
                Value::Time(Timestamp::from_secs(10)),
            ])],
            schema_l,
            "l",
            1,
        );
        let schema_r = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("app", FieldSemantics::value("application", "app-name")),
        ])
        .unwrap();
        let r = SjDataset::from_rows(
            &ctx,
            vec![
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(7)),
                    Value::str("far"),
                ]),
                Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(11)),
                    Value::str("near"),
                ]),
            ],
            schema_r,
            "r",
            1,
        );
        let out = InterpolationJoin::new(5.0).apply(&l, &r, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(2).as_str(), Some("near"));
    }

    #[test]
    fn nan_positions_are_excluded_not_binned() {
        // A NaN position would land in bin 0 under `(NaN as i64)`
        // saturation; such elements must be dropped on both sides, in
        // both modes, before binning.
        let build = |ctx: &ExecCtx| {
            // Left event near bin 0 plus a left row with a NaN position.
            let schema_l = Schema::new(vec![
                FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("app", FieldSemantics::value("application", "app-name")),
            ])
            .unwrap();
            let l = SjDataset::from_rows(
                ctx,
                vec![
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Time(Timestamp::from_secs(10)),
                        Value::str("AMG"),
                    ]),
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Float(f64::NAN),
                        Value::str("ghost"),
                    ]),
                ],
                schema_l,
                "events",
                2,
            );
            // One valid right sample bracketing t=10, one NaN-position
            // sample carrying a poison value.
            let schema_r = Schema::new(vec![
                FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
            ])
            .unwrap();
            let r = SjDataset::from_rows(
                ctx,
                vec![
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Time(Timestamp::from_secs(9)),
                        Value::Float(50.0),
                    ]),
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Float(f64::NAN),
                        Value::Float(-9999.0),
                    ]),
                ],
                schema_r,
                "readings",
                2,
            );
            (l, r)
        };
        let (col, row) = run_both_modes(build, 15.0);
        assert_eq!(col, row);
        // Exactly one output row: the valid pair. The ghost left row
        // produced nothing and the poison right sample matched nothing.
        assert_eq!(col.len(), 1);
        assert_eq!(col[0].get(2).as_str(), Some("AMG"));
        assert_eq!(col[0].get(3).as_f64(), Some(50.0));
    }

    #[test]
    fn equal_position_ties_break_deterministically() {
        // Two right samples at the same position with different
        // non-interpolatable values: both kernels must pick the same one
        // (the smaller by value key order), regardless of shuffle
        // arrival order.
        let build = |ctx: &ExecCtx| {
            let schema_l = Schema::new(vec![
                FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
            ])
            .unwrap();
            let l = SjDataset::from_rows(
                ctx,
                vec![Row::new(vec![
                    Value::str("n1"),
                    Value::Time(Timestamp::from_secs(10)),
                ])],
                schema_l,
                "l",
                1,
            );
            let schema_r = Schema::new(vec![
                FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("app", FieldSemantics::value("application", "app-name")),
            ])
            .unwrap();
            let r = SjDataset::from_rows(
                ctx,
                vec![
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Time(Timestamp::from_secs(11)),
                        Value::str("zeta"),
                    ]),
                    Row::new(vec![
                        Value::str("n1"),
                        Value::Time(Timestamp::from_secs(11)),
                        Value::str("alpha"),
                    ]),
                ],
                schema_r,
                "r",
                2,
            );
            (l, r)
        };
        let (col, row) = run_both_modes(build, 5.0);
        assert_eq!(col, row);
        assert_eq!(col.len(), 1);
        // match_cmp orders by value key after position: "alpha" sorts
        // first and nearest-aggregation keeps the first of tied matches.
        assert_eq!(col[0].get(2).as_str(), Some("alpha"));
    }

    #[test]
    fn columnar_and_rowwise_agree_on_a_disarrayed_join() {
        // A denser input: several nodes, interleaved sample times,
        // residual right domains. Both kernels must produce identical
        // row sets.
        let build = |ctx: &ExecCtx| {
            let schema_l = Schema::new(vec![
                FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("app", FieldSemantics::value("application", "app-name")),
            ])
            .unwrap();
            let lrows: Vec<Row> = (0..30)
                .map(|i| {
                    Row::new(vec![
                        Value::str(format!("n{}", i % 3)),
                        Value::Time(Timestamp::from_secs((i * 13) % 120)),
                        Value::str(if i % 2 == 0 { "AMG" } else { "LULESH" }),
                    ])
                })
                .collect();
            let l = SjDataset::from_rows(ctx, lrows, schema_l, "events", 3);
            let schema_r = Schema::new(vec![
                FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
                FieldDef::new(
                    "loc",
                    FieldSemantics::domain("rack-location", "location-name"),
                ),
                FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
            ])
            .unwrap();
            let rrows: Vec<Row> = (0..40)
                .map(|i| {
                    Row::new(vec![
                        Value::str(format!("n{}", i % 3)),
                        Value::str(if i % 2 == 0 { "top" } else { "bottom" }),
                        Value::Time(Timestamp::from_secs((i * 7) % 120)),
                        Value::Float(20.0 + (i % 10) as f64),
                    ])
                })
                .collect();
            let r = SjDataset::from_rows(ctx, rrows, schema_r, "readings", 2);
            (l, r)
        };
        let (col, row) = run_both_modes(build, 9.0);
        assert_eq!(col, row);
        assert!(!col.is_empty());
    }
}
