//! Combinations: generalized JOINs driven by data semantics (§4.3).
//!
//! Two datasets may combine if (and only if) they share a domain
//! dimension, and *all* shared domain dimensions must match to yield a
//! relation. Unordered shared domains (node ids, racks) must match
//! exactly; ordered continuous shared domains (time) may be compared with
//! a distance metric and interpolated — the interpolation join (§5.3).

mod common;
mod interp;
mod naive;
mod natural;

pub use common::SharedDomains;
pub use interp::InterpolationJoin;
pub use naive::NaiveInterpolationJoin;
pub use natural::NaturalJoin;
