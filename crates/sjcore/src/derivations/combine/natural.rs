//! Natural join: exact match on all shared domain dimensions.

use crate::dataset::SjDataset;
use crate::derivations::combine::common::{merge_schemas, SharedDomains};
use crate::derivations::{not_applicable, Combination, DerivationSpec};
use crate::error::Result;
use crate::row::Row;
use crate::schema::Schema;
use crate::semantics::SemanticDictionary;

/// Combine two datasets by matching every shared domain dimension exactly.
///
/// This is the semantics-driven analogue of a relational natural join: the
/// join keys are not user-specified column names but the columns that lie
/// on the datasets' shared domain dimensions. Every shared domain is
/// matched *exactly* — including ordered continuous ones like time, which
/// only relate when both sides recorded the very same instant. When the
/// two datasets sample a continuous domain at different instants, use
/// [`super::InterpolationJoin`] instead (the derivation engine picks it
/// automatically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaturalJoin;

impl NaturalJoin {
    fn shared(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<SharedDomains> {
        let shared = SharedDomains::analyze(left, right, dict)?;
        if shared.is_empty() {
            return Err(not_applicable(
                "natural_join",
                "datasets share no domain dimension",
            ));
        }
        Ok(shared)
    }

    /// All shared columns, exact and continuous alike — a natural join
    /// matches every shared domain exactly.
    fn key_columns(shared: &SharedDomains) -> Vec<(usize, usize)> {
        shared
            .exact
            .iter()
            .chain(&shared.continuous)
            .map(|c| (c.left_idx, c.right_idx))
            .collect()
    }
}

impl Combination for NaturalJoin {
    fn name(&self) -> &'static str {
        "natural_join"
    }

    fn derive_schema(
        &self,
        left: &Schema,
        right: &Schema,
        dict: &SemanticDictionary,
    ) -> Result<Schema> {
        let shared = self.shared(left, right, dict)?;
        let (schema, _) = merge_schemas(left, right, &shared.right_key_indices())?;
        Ok(schema)
    }

    fn apply(
        &self,
        left: &SjDataset,
        right: &SjDataset,
        dict: &SemanticDictionary,
    ) -> Result<SjDataset> {
        let shared = self.shared(left.schema(), right.schema(), dict)?;
        let (out_schema, kept_right) =
            merge_schemas(left.schema(), right.schema(), &shared.right_key_indices())?;

        let keys = NaturalJoin::key_columns(&shared);
        let left_key: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
        let right_key: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
        let parts = left
            .rdd()
            .num_partitions()
            .max(right.rdd().num_partitions())
            .max(1);

        let lk = left.rdd().map_partitions_named("key_left", {
            let left_key = left_key.clone();
            move |rows| rows.into_iter().map(|r| (r.key_of(&left_key), r)).collect()
        });
        let rk = right.rdd().map_partitions_named("key_right", {
            let right_key = right_key.clone();
            move |rows| {
                rows.into_iter()
                    .map(|r| (r.key_of(&right_key), r))
                    .collect()
            }
        });
        let joined = lk.join(&rk, parts);
        let rdd = joined.map_partitions_named("natural_join", move |pairs| {
            pairs
                .into_iter()
                .map(|(_, (lrow, rrow))| {
                    let mut values = lrow.into_values();
                    for &i in &kept_right {
                        values.push(rrow.get(i).clone());
                    }
                    Row::new(values)
                })
                .collect()
        });
        Ok(SjDataset::new(
            rdd,
            out_schema,
            format!("natural_join({}, {})", left.name(), right.name()),
        ))
    }

    fn spec(&self) -> DerivationSpec {
        DerivationSpec::NaturalJoin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;
    use crate::value::Value;
    use sjdf::ExecCtx;

    fn dict() -> SemanticDictionary {
        SemanticDictionary::default_hpc()
    }

    fn node_temps(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("n1"), Value::Float(60.0)]),
            Row::new(vec![Value::str("n2"), Value::Float(65.0)]),
            Row::new(vec![Value::str("n3"), Value::Float(70.0)]),
        ];
        SjDataset::from_rows(ctx, rows, schema, "temps", 2)
    }

    fn layout(ctx: &ExecCtx) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        let rows = vec![
            Row::new(vec![Value::str("n1"), Value::str("rack1")]),
            Row::new(vec![Value::str("n2"), Value::str("rack1")]),
            // n3 is not in the layout.
        ];
        SjDataset::from_rows(ctx, rows, schema, "layout", 1)
    }

    #[test]
    fn joins_on_shared_node_dimension_despite_column_names() {
        let ctx = ExecCtx::local();
        let out = NaturalJoin
            .apply(&node_temps(&ctx), &layout(&ctx), &dict())
            .unwrap();
        let mut rows = out.collect().unwrap();
        rows.sort_by_key(|r| r.get(0).as_str().unwrap().to_string());
        assert_eq!(rows.len(), 2);
        // Schema: node, temp, rack — NODEID is the join key, deduped.
        assert_eq!(out.schema().len(), 3);
        assert!(out.schema().has_column("rack"));
        assert!(!out.schema().has_column("NODEID"));
        assert_eq!(rows[0].get(0).as_str(), Some("n1"));
        assert_eq!(rows[0].get(2).as_str(), Some("rack1"));
    }

    #[test]
    fn rejects_disjoint_domains() {
        let ctx = ExecCtx::local();
        let racks = Schema::new(vec![FieldDef::new(
            "rack",
            FieldSemantics::domain("rack", "rack-id"),
        )])
        .unwrap();
        let rds = SjDataset::from_rows(&ctx, vec![], racks, "racks", 1);
        assert!(NaturalJoin
            .derive_schema(node_temps(&ctx).schema(), rds.schema(), &dict())
            .is_err());
    }

    #[test]
    fn shared_continuous_domains_match_exactly() {
        use crate::units::time::Timestamp;
        let ctx = ExecCtx::local();
        let timed = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        let mk = |node: &str, secs: i64, v: f64| {
            Row::new(vec![
                Value::str(node),
                Value::Time(Timestamp::from_secs(secs)),
                Value::Float(v),
            ])
        };
        let a = SjDataset::from_rows(
            &ctx,
            vec![mk("n1", 10, 1.0), mk("n1", 20, 2.0)],
            timed.clone(),
            "a",
            1,
        );
        let b = SjDataset::from_rows(
            &ctx,
            // Only the t=10 sample matches exactly; t=21 does not.
            vec![mk("n1", 10, 9.0), mk("n1", 21, 8.0)],
            timed,
            "b",
            1,
        );
        let out = NaturalJoin.apply(&a, &b, &dict()).unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(2).as_f64(), Some(1.0));
        assert_eq!(rows[0].get(3).as_f64(), Some(9.0));
    }

    #[test]
    fn many_to_one_replicates_right_values() {
        let ctx = ExecCtx::local();
        // Two temperature readings for the same node.
        let schema = node_temps(&ctx).schema().clone();
        let rows = vec![
            Row::new(vec![Value::str("n1"), Value::Float(60.0)]),
            Row::new(vec![Value::str("n1"), Value::Float(61.0)]),
        ];
        let temps = SjDataset::from_rows(&ctx, rows, schema, "temps", 1);
        let out = NaturalJoin.apply(&temps, &layout(&ctx), &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 2);
        let racks = out.collect_column("rack").unwrap();
        assert!(racks.iter().all(|v| v.as_str() == Some("rack1")));
    }

    #[test]
    fn empty_sides_join_to_empty() {
        let ctx = ExecCtx::local();
        let schema = node_temps(&ctx).schema().clone();
        let empty = SjDataset::from_rows(&ctx, vec![], schema, "empty", 1);
        let out = NaturalJoin.apply(&empty, &layout(&ctx), &dict()).unwrap();
        assert_eq!(out.count().unwrap(), 0);
    }
}
