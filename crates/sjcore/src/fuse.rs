//! Fused narrow kernels over columnar partitions.
//!
//! Narrow transformations (unit conversion, the two explodes) are cheap
//! per record but expensive as separate lineage stages: each rowwise stage
//! re-clones every `Row` it touches. On the columnar path they are instead
//! recorded as [`ColKernel`]s on the dataset at lineage-build time and
//! materialized lazily as **one** per-partition pass
//! ([`apply_kernels`]) when a wide operation or action finally needs the
//! data — a chain of `convert → explode → convert` costs a single task and
//! zero intermediate row materializations.
//!
//! Every kernel reproduces its rowwise counterpart exactly (same formulas,
//! same null handling, same row order), which the columnar-identity sweep
//! asserts byte-for-byte.

use crate::column::{Column, ColumnarPartition, FloatBuilder};
use crate::units::{convert_value, UnitKind, UnitsDef};
use crate::value::Value;

/// One recorded narrow transformation, applied column-at-a-time.
#[derive(Debug, Clone, PartialEq)]
pub enum ColKernel {
    /// Linear unit conversion of one column (see
    /// [`crate::derivations::transform::ConvertUnits`]).
    Convert {
        /// Target column index.
        idx: usize,
        /// Source units.
        from: UnitsDef,
        /// Destination units.
        to: UnitsDef,
    },
    /// Explode a list column into one row per element (see
    /// [`crate::derivations::transform::ExplodeDiscrete`]).
    ExplodeDiscrete {
        /// Target column index.
        idx: usize,
    },
    /// Explode a span column into one row per contained instant (see
    /// [`crate::derivations::transform::ExplodeContinuous`]).
    ExplodeContinuous {
        /// Target column index.
        idx: usize,
        /// Step between instants, in seconds.
        step_secs: f64,
    },
}

impl ColKernel {
    /// Kernel name, for metrics and debugging.
    pub fn name(&self) -> &'static str {
        match self {
            ColKernel::Convert { .. } => "convert_units",
            ColKernel::ExplodeDiscrete { .. } => "explode_discrete",
            ColKernel::ExplodeContinuous { .. } => "explode_continuous",
        }
    }

    /// Apply this kernel to one partition. Empty batches (including the
    /// zero-column padding partitions `from_rows` emits) pass through
    /// untouched — there are no cells to transform and their column
    /// layout is never observed downstream.
    pub fn apply(&self, batch: &ColumnarPartition) -> ColumnarPartition {
        if batch.is_empty() {
            return batch.clone();
        }
        match self {
            ColKernel::Convert { idx, from, to } => convert_column(batch, *idx, from, to),
            ColKernel::ExplodeDiscrete { idx } => explode_discrete(batch, *idx),
            ColKernel::ExplodeContinuous { idx, step_secs } => {
                explode_continuous(batch, *idx, *step_secs)
            }
        }
    }
}

/// Run a chain of kernels over one partition in a single pass.
pub fn apply_kernels(batch: &ColumnarPartition, kernels: &[ColKernel]) -> ColumnarPartition {
    match kernels {
        [] => batch.clone(),
        [first, rest @ ..] => {
            let mut out = first.apply(batch);
            for k in rest {
                out = k.apply(&out);
            }
            out
        }
    }
}

/// Columnar unit conversion: a tight loop over the numeric lane. Matches
/// the rowwise `convert_value(..).unwrap_or(Null)` cell semantics:
/// numeric cells convert (ints and timestamps widen to float first),
/// nulls stay null, non-numeric cells become null.
fn convert_column(
    batch: &ColumnarPartition,
    idx: usize,
    from: &UnitsDef,
    to: &UnitsDef,
) -> ColumnarPartition {
    use crate::column::ColumnData;
    let col = batch.column(idx);
    let n = col.len();
    // Both units are scalar by the time a kernel is recorded (the
    // transformation validates at schema-derivation time); the fallback
    // covers anything else for exact parity with the rowwise path.
    let linear = match (&from.kind, &to.kind) {
        (
            UnitKind::Scalar {
                factor: f1,
                offset: o1,
            },
            UnitKind::Scalar {
                factor: f2,
                offset: o2,
            },
        ) if from.dimension == to.dimension => Some((*f1, *o1, *f2, *o2)),
        _ => None,
    };
    let out = match (col.data(), linear) {
        (ColumnData::Float(v), Some((f1, o1, f2, o2))) => {
            let mut b = FloatBuilder::with_capacity(n);
            for (i, x) in v.iter().enumerate() {
                b.push(col.validity().get(i).then(|| {
                    let base = x * f1 + o1;
                    (base - o2) / f2
                }));
            }
            b.finish()
        }
        (ColumnData::Int(v), Some((f1, o1, f2, o2))) => {
            let mut b = FloatBuilder::with_capacity(n);
            for (i, x) in v.iter().enumerate() {
                b.push(col.validity().get(i).then(|| {
                    let base = (*x as f64) * f1 + o1;
                    (base - o2) / f2
                }));
            }
            b.finish()
        }
        _ => {
            // Time, Str, and Mixed lanes go cell-by-cell through the same
            // helper the rowwise kernel uses.
            let mut b = FloatBuilder::with_capacity(n);
            let mut any_non_float = false;
            let mut fallback: Vec<Value> = Vec::new();
            for i in 0..n {
                let v = col.value_at(i);
                let converted = convert_value(&v, from, to).unwrap_or(Value::Null);
                match converted {
                    Value::Float(x) => b.push(Some(x)),
                    Value::Null => b.push(None),
                    other => {
                        // Unreachable today (convert_value yields Float or
                        // Null), kept so a future variant can't corrupt the
                        // lane silently.
                        any_non_float = true;
                        fallback.push(other);
                        b.push(None);
                    }
                }
            }
            if any_non_float {
                let values: Vec<Value> = (0..n)
                    .map(|i| convert_value(&col.value_at(i), from, to).unwrap_or(Value::Null))
                    .collect();
                Column::from_values(&values)
            } else {
                b.finish()
            }
        }
    };
    batch.with_column(idx, out)
}

/// Columnar explode-discrete: compute the replication index vector once,
/// gather every other column through it, and rebuild only the exploded
/// column. List cells emit one row per element, null cells emit nothing,
/// scalar cells pass through unchanged.
fn explode_discrete(batch: &ColumnarPartition, idx: usize) -> ColumnarPartition {
    let col = batch.column(idx);
    let mut gather_idx: Vec<u32> = Vec::with_capacity(batch.len());
    let mut out_vals: Vec<Value> = Vec::with_capacity(batch.len());
    for r in 0..batch.len() {
        match col.value_at(r) {
            Value::List(items) => {
                for item in items.iter() {
                    gather_idx.push(r as u32);
                    out_vals.push(item.clone());
                }
            }
            Value::Null => {}
            other => {
                gather_idx.push(r as u32);
                out_vals.push(other);
            }
        }
    }
    batch
        .gather(&gather_idx)
        .with_column(idx, Column::from_values(&out_vals))
}

/// Columnar explode-continuous: same replication scheme as
/// [`explode_discrete`], stepping through span cells at `step_secs`.
fn explode_continuous(batch: &ColumnarPartition, idx: usize, step_secs: f64) -> ColumnarPartition {
    let col = batch.column(idx);
    let mut gather_idx: Vec<u32> = Vec::with_capacity(batch.len());
    let mut out_vals: Vec<Value> = Vec::with_capacity(batch.len());
    for r in 0..batch.len() {
        match col.value_at(r) {
            Value::Span(span) => {
                for t in span.explode(step_secs) {
                    gather_idx.push(r as u32);
                    out_vals.push(Value::Time(t));
                }
            }
            Value::Null => {}
            other => {
                gather_idx.push(r as u32);
                out_vals.push(other);
            }
        }
    }
    batch
        .gather(&gather_idx)
        .with_column(idx, Column::from_values(&out_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::time::{TimeSpan, Timestamp};
    use crate::Row;

    fn scalar(name: &str, dim: &str, factor: f64, offset: f64) -> UnitsDef {
        UnitsDef::new(name, dim, UnitKind::Scalar { factor, offset })
    }

    #[test]
    fn convert_kernel_matches_rowwise_cell_semantics() {
        let f = scalar("fahrenheit", "temperature", 5.0 / 9.0, -160.0 / 9.0);
        let c = scalar("celsius", "temperature", 1.0, 0.0);
        let rows = vec![
            Row::new(vec![Value::Float(212.0)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::Float(32.0)]),
        ];
        let batch = ColumnarPartition::from_rows(&rows);
        let out = ColKernel::Convert {
            idx: 0,
            from: f.clone(),
            to: c.clone(),
        }
        .apply(&batch);
        let expect: Vec<Value> = rows
            .iter()
            .map(|r| convert_value(r.get(0), &f, &c).unwrap_or(Value::Null))
            .collect();
        let got: Vec<Value> = out.to_rows().iter().map(|r| r.get(0).clone()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn convert_kernel_widens_ints_and_nulls_strings() {
        let s = scalar("seconds", "duration", 1.0, 0.0);
        let m = scalar("minutes", "duration", 60.0, 0.0);
        let rows = vec![
            Row::new(vec![Value::Int(120)]),
            Row::new(vec![Value::str("oops")]),
        ];
        // Int+Str in one column lands on the Mixed lane.
        let out = ColKernel::Convert {
            idx: 0,
            from: s,
            to: m,
        }
        .apply(&ColumnarPartition::from_rows(&rows));
        assert_eq!(out.value_at(0, 0), Value::Float(2.0));
        assert_eq!(out.value_at(1, 0), Value::Null);
    }

    #[test]
    fn explode_discrete_kernel_replicates_rows() {
        let rows = vec![
            Row::new(vec![
                Value::str("j1"),
                Value::list([Value::str("n1"), Value::str("n2")]),
            ]),
            Row::new(vec![Value::str("j2"), Value::Null]),
            Row::new(vec![Value::str("j3"), Value::str("already-scalar")]),
        ];
        let out = ColKernel::ExplodeDiscrete { idx: 1 }.apply(&ColumnarPartition::from_rows(&rows));
        assert_eq!(out.len(), 3);
        let got: Vec<(Value, Value)> = (0..out.len())
            .map(|r| (out.value_at(r, 0), out.value_at(r, 1)))
            .collect();
        assert_eq!(
            got,
            vec![
                (Value::str("j1"), Value::str("n1")),
                (Value::str("j1"), Value::str("n2")),
                (Value::str("j3"), Value::str("already-scalar")),
            ]
        );
    }

    #[test]
    fn explode_continuous_kernel_steps_spans() {
        let rows = vec![Row::new(vec![
            Value::str("j1"),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(120),
            )),
        ])];
        let out = ColKernel::ExplodeContinuous {
            idx: 1,
            step_secs: 60.0,
        }
        .apply(&ColumnarPartition::from_rows(&rows));
        assert_eq!(out.len(), 2);
        assert_eq!(out.value_at(0, 1), Value::Time(Timestamp::from_secs(0)));
        assert_eq!(out.value_at(1, 1), Value::Time(Timestamp::from_secs(60)));
    }

    #[test]
    fn kernel_chain_fuses_in_one_pass() {
        let s = scalar("seconds", "duration", 1.0, 0.0);
        let m = scalar("minutes", "duration", 60.0, 0.0);
        let rows = vec![Row::new(vec![
            Value::list([Value::Int(60), Value::Int(120)]),
            Value::Span(TimeSpan::new(
                Timestamp::from_secs(0),
                Timestamp::from_secs(60),
            )),
        ])];
        let kernels = vec![
            ColKernel::ExplodeDiscrete { idx: 0 },
            ColKernel::Convert {
                idx: 0,
                from: s,
                to: m,
            },
            ColKernel::ExplodeContinuous {
                idx: 1,
                step_secs: 60.0,
            },
        ];
        let out = apply_kernels(&ColumnarPartition::from_rows(&rows), &kernels);
        assert_eq!(out.len(), 2);
        assert_eq!(out.value_at(0, 0), Value::Float(1.0));
        assert_eq!(out.value_at(1, 0), Value::Float(2.0));
        assert!(matches!(out.value_at(0, 1), Value::Time(_)));
    }

    #[test]
    fn empty_kernel_list_is_identity() {
        let batch = ColumnarPartition::from_rows(&[Row::new(vec![Value::Int(1)])]);
        assert_eq!(apply_kernels(&batch, &[]), batch);
    }
}
