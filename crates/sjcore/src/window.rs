//! Tumbling event-time windows for streaming evaluation.
//!
//! Streaming ingestion partitions the time axis into fixed-width,
//! non-overlapping windows `[k·w, (k+1)·w)` and keys every cached
//! evaluation on `(dataset epoch, window id)`. The partitioner here is
//! pure arithmetic — it knows nothing about datasets — so the same window
//! ids are derived identically by the stream engine, the service, and the
//! equivalence tests.
//!
//! Evaluating a window incrementally needs more input than the window
//! itself: the rate derivation looks one sample back per node and the
//! interpolation join reads neighbors up to the interpolation window
//! away. The *horizon* widens the input slice symmetrically to
//! `[start − h, end + h)` so every such lookback is covered as long as
//! sources sample at a bounded cadence (the residual gap — an arbitrarily
//! silent source — is documented in DESIGN.md §11).

use crate::units::time::Timestamp;

/// A tumbling-window partitioning of event time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TumblingWindows {
    width_us: i64,
    horizon_us: i64,
}

impl TumblingWindows {
    /// A partitioner with the given window width and slice horizon (both
    /// in seconds; width is clamped to at least 1µs).
    pub fn new(width_secs: f64, horizon_secs: f64) -> Self {
        TumblingWindows {
            width_us: ((width_secs * 1e6) as i64).max(1),
            horizon_us: ((horizon_secs * 1e6) as i64).max(0),
        }
    }

    /// Window width in microseconds.
    pub fn width_us(&self) -> i64 {
        self.width_us
    }

    /// Slice horizon in microseconds.
    pub fn horizon_us(&self) -> i64 {
        self.horizon_us
    }

    /// The id of the window containing `t` (floor division, so negative
    /// times land in negative ids rather than sharing window 0).
    pub fn window_of(&self, t_us: i64) -> i64 {
        t_us.div_euclid(self.width_us)
    }

    /// Window bounds `[start, end)` in microseconds.
    pub fn bounds_us(&self, id: i64) -> (i64, i64) {
        (id * self.width_us, (id + 1) * self.width_us)
    }

    /// Window bounds as timestamps.
    pub fn bounds(&self, id: i64) -> (Timestamp, Timestamp) {
        let (a, b) = self.bounds_us(id);
        (Timestamp::from_micros(a), Timestamp::from_micros(b))
    }

    /// The horizon-widened input slice `[start − h, end + h)` for a
    /// window, in microseconds.
    pub fn slice_us(&self, id: i64) -> (i64, i64) {
        let (a, b) = self.bounds_us(id);
        (a - self.horizon_us, b + self.horizon_us)
    }

    /// Ids of every window whose *input slice* intersects the event-time
    /// range `[lo, hi]` — i.e. the windows an append to that range
    /// invalidates.
    pub fn touched_by(&self, lo_us: i64, hi_us: i64) -> std::ops::RangeInclusive<i64> {
        let first = self.window_of(lo_us - self.horizon_us);
        let last = self.window_of(hi_us + self.horizon_us);
        first..=last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_ids_tile_the_time_axis() {
        let w = TumblingWindows::new(60.0, 0.0);
        assert_eq!(w.window_of(0), 0);
        assert_eq!(w.window_of(59_999_999), 0);
        assert_eq!(w.window_of(60_000_000), 1);
        assert_eq!(w.window_of(-1), -1);
        let (a, b) = w.bounds_us(2);
        assert_eq!((a, b), (120_000_000, 180_000_000));
    }

    #[test]
    fn slice_widens_by_horizon_on_both_sides() {
        let w = TumblingWindows::new(60.0, 120.0);
        let (a, b) = w.slice_us(1);
        assert_eq!(a, 60_000_000 - 120_000_000);
        assert_eq!(b, 120_000_000 + 120_000_000);
    }

    #[test]
    fn touched_windows_cover_the_horizon() {
        let w = TumblingWindows::new(60.0, 60.0);
        // A point append at t=150s touches windows whose slices reach it:
        // slices span [60(k-1), 60(k+2)), so windows 1..=3.
        let ids: Vec<i64> = w.touched_by(150_000_000, 150_000_000).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Zero horizon: only the containing window.
        let w0 = TumblingWindows::new(60.0, 0.0);
        let ids: Vec<i64> = w0.touched_by(150_000_000, 150_000_000).collect();
        assert_eq!(ids, vec![2]);
    }
}
