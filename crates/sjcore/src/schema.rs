//! Dataset schemas: named, semantically annotated columns.
//!
//! A [`Schema`] is the semantics-level view of a dataset — exactly the
//! information the derivation engine searches over (§5.2: derivations are
//! first performed "on the data semantics only, rather than on the dataset
//! itself"). Schemas are cheap to clone, hashable via a stable
//! [`Schema::fingerprint`], and carry every column's [`FieldSemantics`].

use crate::error::{Result, SjError};
use crate::semantics::{FieldSemantics, SemanticDictionary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One named, annotated column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FieldDef {
    /// Column name (unique within a schema).
    pub name: String,
    /// The column's semantics.
    pub semantics: FieldSemantics,
}

impl FieldDef {
    /// Shorthand constructor.
    pub fn new(name: &str, semantics: FieldSemantics) -> Self {
        FieldDef {
            name: name.into(),
            semantics,
        }
    }
}

/// An ordered list of annotated columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<FieldDef>>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<FieldDef>) -> Result<Self> {
        let mut seen = BTreeSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(SjError::SemanticsInvalid(format!(
                    "duplicate column name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: Arc::new(fields),
        })
    }

    /// All columns in order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| SjError::UnknownColumn(name.into()))
    }

    /// Column definition by name.
    pub fn field(&self, name: &str) -> Result<&FieldDef> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// True if a column with this name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// All domain columns.
    pub fn domain_fields(&self) -> impl Iterator<Item = &FieldDef> {
        self.fields.iter().filter(|f| f.semantics.is_domain())
    }

    /// All value columns.
    pub fn value_fields(&self) -> impl Iterator<Item = &FieldDef> {
        self.fields.iter().filter(|f| f.semantics.is_value())
    }

    /// The set of domain dimensions this dataset is defined over.
    pub fn domain_dimensions(&self) -> BTreeSet<&str> {
        self.domain_fields()
            .map(|f| f.semantics.dimension.as_str())
            .collect()
    }

    /// The set of value dimensions this dataset measures.
    pub fn value_dimensions(&self) -> BTreeSet<&str> {
        self.value_fields()
            .map(|f| f.semantics.dimension.as_str())
            .collect()
    }

    /// First domain column lying on the given dimension, if any.
    pub fn domain_field_on(&self, dimension: &str) -> Option<&FieldDef> {
        self.domain_fields()
            .find(|f| f.semantics.dimension == dimension)
    }

    /// First value column lying on the given dimension, if any.
    pub fn value_field_on(&self, dimension: &str) -> Option<&FieldDef> {
        self.value_fields()
            .find(|f| f.semantics.dimension == dimension)
    }

    /// Domain dimensions shared with another schema — the candidates a
    /// combination must match on (§4.3).
    pub fn shared_domain_dimensions(&self, other: &Schema) -> Vec<String> {
        let mine = self.domain_dimensions();
        let theirs = other.domain_dimensions();
        mine.intersection(&theirs).map(|s| s.to_string()).collect()
    }

    /// A new schema with one column appended.
    pub fn with_field(&self, field: FieldDef) -> Result<Schema> {
        let mut fields = self.fields.as_ref().clone();
        fields.push(field);
        Schema::new(fields)
    }

    /// A new schema without the named column.
    pub fn without_column(&self, name: &str) -> Result<Schema> {
        let idx = self.index_of(name)?;
        let mut fields = self.fields.as_ref().clone();
        fields.remove(idx);
        Schema::new(fields)
    }

    /// A new schema with one column replaced.
    pub fn with_replaced(&self, name: &str, field: FieldDef) -> Result<Schema> {
        let idx = self.index_of(name)?;
        let mut fields = self.fields.as_ref().clone();
        fields[idx] = field;
        Schema::new(fields)
    }

    /// Validate every column against the dictionary.
    pub fn validate(&self, dict: &SemanticDictionary) -> Result<()> {
        for f in self.fields.iter() {
            dict.validate(&f.semantics)
                .map_err(|e| SjError::SemanticsInvalid(format!("column `{}`: {e}", f.name)))?;
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of the schema (column names + semantics,
    /// order-sensitive). Used as the memoization key in the derivation
    /// engine and the result cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for f in self.fields.iter() {
            f.hash(&mut h);
        }
        h.finish()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .fields
            .iter()
            .map(|fd| {
                format!(
                    "{}:{}/{}{}",
                    fd.name,
                    fd.semantics.dimension,
                    fd.semantics.units,
                    if fd.semantics.is_domain() { "*" } else { "" }
                )
            })
            .collect();
        write!(f, "{{{}}}", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            FieldDef::new("timestamp", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("node_id", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("node_temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let e = Schema::new(vec![
            FieldDef::new("a", FieldSemantics::domain("time", "datetime")),
            FieldDef::new("a", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap_err();
        assert!(matches!(e, SjError::SemanticsInvalid(_)));
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("node_id").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert!(s.has_column("node_temp"));
        assert_eq!(s.field("node_temp").unwrap().semantics.units, "celsius");
    }

    #[test]
    fn domain_and_value_partition() {
        let s = sample();
        assert_eq!(s.domain_fields().count(), 2);
        assert_eq!(s.value_fields().count(), 1);
        assert!(s.domain_dimensions().contains("time"));
        assert!(s.value_dimensions().contains("temperature"));
    }

    #[test]
    fn shared_domains_intersect() {
        let a = sample();
        let b = Schema::new(vec![
            FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .unwrap();
        assert_eq!(a.shared_domain_dimensions(&b), vec!["compute-node"]);
    }

    #[test]
    fn schema_editing() {
        let s = sample();
        let s2 = s
            .with_field(FieldDef::new(
                "heat",
                FieldSemantics::value("heat", "delta-celsius"),
            ))
            .unwrap();
        assert_eq!(s2.len(), 4);
        let s3 = s2.without_column("node_temp").unwrap();
        assert!(!s3.has_column("node_temp"));
        let s4 = s3
            .with_replaced(
                "timestamp",
                FieldDef::new("ts", FieldSemantics::domain("time", "datetime")),
            )
            .unwrap();
        assert!(s4.has_column("ts"));
        assert_eq!(s4.index_of("ts").unwrap(), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = a.without_column("node_temp").unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn validate_against_default_dictionary() {
        let dict = SemanticDictionary::default_hpc();
        sample().validate(&dict).unwrap();
        let bad = Schema::new(vec![FieldDef::new(
            "x",
            FieldSemantics::value("temperature", "watts"),
        )])
        .unwrap();
        assert!(bad.validate(&dict).is_err());
    }

    #[test]
    fn display_marks_domains() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("timestamp:time/datetime*"));
        assert!(d.contains("node_temp:temperature/celsius"));
        assert!(!d.contains("node_temp:temperature/celsius*"));
    }
}
