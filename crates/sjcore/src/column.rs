//! Columnar partitions: typed column vectors with validity bitmaps.
//!
//! The rowwise execute path moves `Vec<Row>` between operators, paying a
//! `Vec<Value>` allocation (plus one enum tag per cell) for every record.
//! [`ColumnarPartition`] stores the same records column-major in typed
//! lanes — `Int`/`Float`/`Time` as plain `Vec`s, strings dictionary-encoded,
//! everything else as a `Mixed` value lane — with a validity bitmap marking
//! nulls. Derivation kernels then run as tight loops over primitive slices
//! and rebuild `Row`s only at the dataset boundary ([`ColumnarPartition::to_rows`]).
//!
//! Round-tripping is exact: `to_rows(from_rows(rows)) == rows` for every
//! [`Value`] variant, including NaN payload bits (floats are moved, never
//! re-parsed) and the `Int` / `Float` / `Time` distinction (each gets its
//! own lane; a column mixing variants falls back to the `Mixed` lane).

use crate::units::time::{TimeSpan, Timestamp};
use crate::value::{KeyAtom, Value};
use crate::Row;
use sjdf::{pod_vec_byte_size, ByteSize};
use std::collections::HashMap;
use std::sync::Arc;

/// A null bitmap: bit `i` set means row `i` holds a real value.
#[derive(Debug, Clone, PartialEq)]
pub struct Validity {
    bits: Vec<u64>,
    len: usize,
}

impl Validity {
    /// All-valid bitmap of the given length.
    pub fn all_valid(len: usize) -> Self {
        Validity {
            bits: vec![u64::MAX; len.div_ceil(64)],
            len,
        }
    }

    /// All-null bitmap of the given length.
    pub fn all_null(len: usize) -> Self {
        Validity {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` holds a real value.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Mark row `i` valid or null.
    #[inline]
    pub fn set(&mut self, i: usize, valid: bool) {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        if valid {
            self.bits[w] |= 1u64 << b;
        } else {
            self.bits[w] &= !(1u64 << b);
        }
    }

    /// Number of valid (non-null) slots.
    pub fn count_valid(&self) -> usize {
        let mut n: usize = self.bits.iter().map(|w| w.count_ones() as usize).sum();
        // Mask out bits past `len` in the last word (they may be set by
        // `all_valid`).
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last() {
                n -= (last >> tail).count_ones() as usize;
            }
        }
        n
    }

    /// Append one slot.
    pub fn push(&mut self, valid: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        let i = self.len;
        self.len += 1;
        self.set(i, valid);
    }

    /// Bitmap selecting `idx[i]` for each output slot.
    pub fn gather(&self, idx: &[u32]) -> Validity {
        let mut out = Validity::all_null(idx.len());
        for (o, &i) in idx.iter().enumerate() {
            if self.get(i as usize) {
                out.set(o, true);
            }
        }
        out
    }
}

impl ByteSize for Validity {
    fn byte_size(&self) -> usize {
        pod_vec_byte_size(&self.bits) + 8
    }
}

/// The typed storage behind one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// `Value::Int` lane.
    Int(Vec<i64>),
    /// `Value::Float` lane (bit patterns preserved, including NaN payloads).
    Float(Vec<f64>),
    /// `Value::Time` lane, stored as microseconds since the epoch.
    Time(Vec<i64>),
    /// `Value::Str` lane, dictionary-encoded: `codes[i]` indexes `dict`.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// Distinct strings, in first-occurrence order.
        dict: Vec<Arc<str>>,
    },
    /// Fallback lane for heterogeneous columns or variants without a typed
    /// lane (`Bool`, `Span`, `List`). Null slots hold `Value::Null`.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Time(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// Same-lane discriminant check (used to pick the concat fast path).
    fn same_lane(&self, other: &ColumnData) -> bool {
        matches!(
            (self, other),
            (ColumnData::Int(_), ColumnData::Int(_))
                | (ColumnData::Float(_), ColumnData::Float(_))
                | (ColumnData::Time(_), ColumnData::Time(_))
                | (ColumnData::Str { .. }, ColumnData::Str { .. })
                | (ColumnData::Mixed(_), ColumnData::Mixed(_))
        )
    }
}

impl ByteSize for ColumnData {
    fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int(v) => pod_vec_byte_size(v),
            ColumnData::Float(v) => pod_vec_byte_size(v),
            ColumnData::Time(v) => pod_vec_byte_size(v),
            ColumnData::Str { codes, dict } => {
                pod_vec_byte_size(codes) + dict.iter().map(ByteSize::byte_size).sum::<usize>()
            }
            ColumnData::Mixed(v) => v.byte_size(),
        }
    }
}

/// One typed column plus its null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Validity,
}

/// Which typed lane a column builder has committed to so far.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Lane {
    Int,
    Float,
    Time,
    Str,
    Mixed,
}

impl Lane {
    fn of(v: &Value) -> Option<Lane> {
        match v {
            Value::Null => None,
            Value::Int(_) => Some(Lane::Int),
            Value::Float(_) => Some(Lane::Float),
            Value::Time(_) => Some(Lane::Time),
            Value::Str(_) => Some(Lane::Str),
            Value::Bool(_) | Value::Span(_) | Value::List(_) => Some(Lane::Mixed),
        }
    }
}

impl Column {
    /// Build a column from row-order cell values, inferring the typed lane:
    /// a column whose non-null cells are all one of `Int`/`Float`/`Time`/
    /// `Str` gets that lane; anything else falls back to `Mixed`.
    pub fn from_values(values: &[Value]) -> Column {
        let mut lane: Option<Lane> = None;
        for v in values {
            match (lane, Lane::of(v)) {
                (_, None) => {}
                (None, Some(l)) => lane = Some(l),
                (Some(a), Some(b)) if a == b => {}
                (Some(_), Some(_)) => {
                    lane = Some(Lane::Mixed);
                    break;
                }
            }
        }
        let mut validity = Validity::all_null(values.len());
        let data = match lane.unwrap_or(Lane::Mixed) {
            Lane::Int => {
                let mut out = vec![0i64; values.len()];
                for (i, v) in values.iter().enumerate() {
                    if let Value::Int(x) = v {
                        out[i] = *x;
                        validity.set(i, true);
                    }
                }
                ColumnData::Int(out)
            }
            Lane::Float => {
                let mut out = vec![0f64; values.len()];
                for (i, v) in values.iter().enumerate() {
                    if let Value::Float(x) = v {
                        out[i] = *x;
                        validity.set(i, true);
                    }
                }
                ColumnData::Float(out)
            }
            Lane::Time => {
                let mut out = vec![0i64; values.len()];
                for (i, v) in values.iter().enumerate() {
                    if let Value::Time(t) = v {
                        out[i] = t.as_micros();
                        validity.set(i, true);
                    }
                }
                ColumnData::Time(out)
            }
            Lane::Str => {
                let mut interner = StrInterner::default();
                let mut codes = vec![0u32; values.len()];
                for (i, v) in values.iter().enumerate() {
                    if let Value::Str(s) = v {
                        codes[i] = interner.intern(s);
                        validity.set(i, true);
                    }
                }
                ColumnData::Str {
                    codes,
                    dict: interner.dict,
                }
            }
            Lane::Mixed => {
                let mut out = Vec::with_capacity(values.len());
                for (i, v) in values.iter().enumerate() {
                    validity.set(i, !v.is_null());
                    out.push(v.clone());
                }
                ColumnData::Mixed(out)
            }
        };
        Column { data, validity }
    }

    /// Assemble a column from raw parts. The data and validity lengths
    /// must agree.
    pub fn from_parts(data: ColumnData, validity: Validity) -> Column {
        assert_eq!(data.len(), validity.len(), "column/validity length");
        Column { data, validity }
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the cell at `row` exactly as it appeared in the source
    /// `Row` (null slots come back as `Value::Null`).
    pub fn value_at(&self, row: usize) -> Value {
        if !self.validity.get(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Time(v) => Value::Time(Timestamp::from_micros(v[row])),
            ColumnData::Str { codes, dict } => Value::Str(Arc::clone(&dict[codes[row] as usize])),
            ColumnData::Mixed(v) => v[row].clone(),
        }
    }

    /// Numeric view of the cell at `row`, matching [`Value::as_f64`]
    /// (ints widen, timestamps become fractional seconds).
    #[inline]
    pub fn f64_at(&self, row: usize) -> Option<f64> {
        if !self.validity.get(row) {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Time(v) => Some(Timestamp::from_micros(v[row]).as_secs_f64()),
            ColumnData::Str { .. } => None,
            ColumnData::Mixed(v) => v[row].as_f64(),
        }
    }

    /// Timestamp view (microseconds) of the cell at `row`, matching
    /// [`Value::as_time`] — only genuine `Time` cells qualify.
    #[inline]
    pub fn time_micros_at(&self, row: usize) -> Option<i64> {
        if !self.validity.get(row) {
            return None;
        }
        match &self.data {
            ColumnData::Time(v) => Some(v[row]),
            ColumnData::Mixed(v) => v[row].as_time().map(|t| t.as_micros()),
            _ => None,
        }
    }

    /// Span view of the cell at `row`, matching [`Value::as_span`].
    #[inline]
    pub fn span_at(&self, row: usize) -> Option<TimeSpan> {
        if !self.validity.get(row) {
            return None;
        }
        match &self.data {
            ColumnData::Mixed(v) => v[row].as_span(),
            _ => None,
        }
    }

    /// Exact-match key of the cell at `row`, matching [`Value::key`].
    pub fn key_at(&self, row: usize) -> KeyAtom {
        if !self.validity.get(row) {
            return KeyAtom::Null;
        }
        match &self.data {
            ColumnData::Int(v) => KeyAtom::Int(v[row]),
            ColumnData::Float(v) => KeyAtom::Bits(v[row].to_bits()),
            ColumnData::Time(v) => KeyAtom::Time(v[row]),
            ColumnData::Str { codes, dict } => KeyAtom::Str(Arc::clone(&dict[codes[row] as usize])),
            ColumnData::Mixed(v) => v[row].key(),
        }
    }

    /// Append an injective byte encoding of the cell at `row` to `buf`
    /// (tag byte plus payload), for arena-backed grouping and sorting:
    /// two cells encode to the same bytes iff their [`Value::key`]s are
    /// equal. Avoids materializing a `KeyAtom` (and its `Arc` clone) per
    /// row on the hot grouping paths.
    pub fn encode_key_at(&self, row: usize, buf: &mut Vec<u8>) {
        if !self.validity.get(row) {
            buf.push(0);
            return;
        }
        match &self.data {
            ColumnData::Int(v) => {
                buf.push(1);
                buf.extend_from_slice(&v[row].to_le_bytes());
            }
            ColumnData::Float(v) => {
                buf.push(2);
                buf.extend_from_slice(&v[row].to_bits().to_le_bytes());
            }
            ColumnData::Time(v) => {
                buf.push(3);
                buf.extend_from_slice(&v[row].to_le_bytes());
            }
            ColumnData::Str { codes, dict } => {
                let s = &dict[codes[row] as usize];
                buf.push(4);
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            ColumnData::Mixed(v) => encode_key_atom(&v[row].key(), buf),
        }
    }

    /// New column selecting `idx[i]` for each output row (a columnar
    /// `take`). Dictionary columns share the source dictionary.
    pub fn gather(&self, idx: &[u32]) -> Column {
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Time(v) => ColumnData::Time(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str { codes, dict } => ColumnData::Str {
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                dict: dict.clone(),
            },
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        Column {
            data,
            validity: self.validity.gather(idx),
        }
    }

    /// Concatenate columns vertically. Columns on the same typed lane are
    /// appended in place (dictionaries are merged and codes remapped);
    /// mismatched lanes — possible because each partition infers its lanes
    /// independently — fall back to rebuilding through `Value`s.
    pub fn concat(cols: &[&Column]) -> Column {
        let cols: Vec<&&Column> = cols.iter().filter(|c| !c.is_empty()).collect();
        match cols.first() {
            None => Column::from_values(&[]),
            Some(first) => {
                if !cols.iter().all(|c| first.data.same_lane(&c.data)) {
                    let mut values = Vec::new();
                    for c in &cols {
                        for i in 0..c.len() {
                            values.push(c.value_at(i));
                        }
                    }
                    return Column::from_values(&values);
                }
                let total: usize = cols.iter().map(|c| c.len()).sum();
                let mut validity = Validity::all_null(total);
                let mut off = 0usize;
                for c in &cols {
                    for i in 0..c.len() {
                        if c.validity.get(i) {
                            validity.set(off + i, true);
                        }
                    }
                    off += c.len();
                }
                let data = match &first.data {
                    ColumnData::Int(_) => {
                        let mut out = Vec::with_capacity(total);
                        for c in &cols {
                            if let ColumnData::Int(v) = &c.data {
                                out.extend_from_slice(v);
                            }
                        }
                        ColumnData::Int(out)
                    }
                    ColumnData::Float(_) => {
                        let mut out = Vec::with_capacity(total);
                        for c in &cols {
                            if let ColumnData::Float(v) = &c.data {
                                out.extend_from_slice(v);
                            }
                        }
                        ColumnData::Float(out)
                    }
                    ColumnData::Time(_) => {
                        let mut out = Vec::with_capacity(total);
                        for c in &cols {
                            if let ColumnData::Time(v) = &c.data {
                                out.extend_from_slice(v);
                            }
                        }
                        ColumnData::Time(out)
                    }
                    ColumnData::Str { .. } => {
                        let mut interner = StrInterner::default();
                        let mut out_codes = Vec::with_capacity(total);
                        for c in &cols {
                            if let ColumnData::Str { codes, dict } = &c.data {
                                let remap: Vec<u32> =
                                    dict.iter().map(|s| interner.intern(s)).collect();
                                out_codes.extend(codes.iter().map(|&c| remap[c as usize]));
                            }
                        }
                        ColumnData::Str {
                            codes: out_codes,
                            dict: interner.dict,
                        }
                    }
                    ColumnData::Mixed(_) => {
                        let mut out = Vec::with_capacity(total);
                        for c in &cols {
                            if let ColumnData::Mixed(v) = &c.data {
                                out.extend_from_slice(v);
                            }
                        }
                        ColumnData::Mixed(out)
                    }
                };
                Column { data, validity }
            }
        }
    }
}

impl ByteSize for Column {
    fn byte_size(&self) -> usize {
        self.data.byte_size() + self.validity.byte_size()
    }
}

/// Append an injective byte encoding of a [`KeyAtom`] to `buf` — the
/// `Mixed`-lane (and list-element) fallback behind
/// [`Column::encode_key_at`]. The tags agree with the typed-lane fast
/// paths (`Int` ↔ tag 1, `Bits` ↔ tag 2, …), so equal values encode to
/// equal bytes even when one batch inferred a typed lane and another
/// fell back to `Mixed` for the same logical column.
pub fn encode_key_atom(k: &KeyAtom, buf: &mut Vec<u8>) {
    match k {
        KeyAtom::Null => buf.push(0),
        KeyAtom::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        KeyAtom::Bits(b) => {
            buf.push(2);
            buf.extend_from_slice(&b.to_le_bytes());
        }
        KeyAtom::Time(t) => {
            buf.push(3);
            buf.extend_from_slice(&t.to_le_bytes());
        }
        KeyAtom::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        KeyAtom::Bool(b) => {
            buf.push(5);
            buf.push(*b as u8);
        }
        KeyAtom::SpanKey(a, b) => {
            buf.push(6);
            buf.extend_from_slice(&a.to_le_bytes());
            buf.extend_from_slice(&b.to_le_bytes());
        }
        KeyAtom::List(items) => {
            buf.push(7);
            buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_key_atom(item, buf);
            }
        }
    }
}

/// First-occurrence-order string interner backing dictionary columns.
#[derive(Default)]
struct StrInterner {
    index: HashMap<Arc<str>, u32>,
    dict: Vec<Arc<str>>,
}

impl StrInterner {
    fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.dict.len() as u32;
        self.index.insert(Arc::clone(s), c);
        self.dict.push(Arc::clone(s));
        c
    }
}

/// Incremental builder for a `Float` column (the shape every derived-rate
/// output column takes).
#[derive(Default)]
pub struct FloatBuilder {
    vals: Vec<f64>,
    validity: Vec<bool>,
}

impl FloatBuilder {
    /// Builder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        FloatBuilder {
            vals: Vec::with_capacity(n),
            validity: Vec::with_capacity(n),
        }
    }

    /// Append one cell (`None` = null).
    pub fn push(&mut self, v: Option<f64>) {
        self.validity.push(v.is_some());
        self.vals.push(v.unwrap_or(0.0));
    }

    /// Finish into a `Float` column.
    pub fn finish(self) -> Column {
        let mut validity = Validity::all_null(self.vals.len());
        for (i, ok) in self.validity.iter().enumerate() {
            if *ok {
                validity.set(i, true);
            }
        }
        Column {
            data: ColumnData::Float(self.vals),
            validity,
        }
    }
}

/// One partition of records stored column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarPartition {
    columns: Vec<Column>,
    rows: usize,
}

impl ColumnarPartition {
    /// An empty partition with the given column count.
    pub fn empty(ncols: usize) -> Self {
        ColumnarPartition {
            columns: (0..ncols).map(|_| Column::from_values(&[])).collect(),
            rows: 0,
        }
    }

    /// Transpose row-major records into typed columns. All rows must have
    /// the same arity (enforced by the dataset schema upstream).
    pub fn from_rows(rows: &[Row]) -> Self {
        let ncols = rows.first().map_or(0, Row::len);
        let nrows = rows.len();
        let mut columns = Vec::with_capacity(ncols);
        let mut scratch: Vec<Value> = Vec::with_capacity(nrows);
        for c in 0..ncols {
            scratch.clear();
            scratch.extend(rows.iter().map(|r| r.get(c).clone()));
            columns.push(Column::from_values(&scratch));
        }
        ColumnarPartition {
            columns,
            rows: nrows,
        }
    }

    /// Assemble from pre-built columns (all the same length).
    pub fn from_columns(columns: Vec<Column>) -> Self {
        let rows = columns.first().map_or(0, Column::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "ragged columnar partition"
        );
        ColumnarPartition { columns, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Reconstruct the cell at (`row`, `col`).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Transpose back into row-major records, exactly reproducing the
    /// source rows.
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out: Vec<Vec<Value>> = (0..self.rows)
            .map(|_| Vec::with_capacity(self.columns.len()))
            .collect();
        for col in &self.columns {
            for (r, row) in out.iter_mut().enumerate() {
                row.push(col.value_at(r));
            }
        }
        out.into_iter().map(Row::new).collect()
    }

    /// One reconstructed row.
    pub fn row_at(&self, row: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value_at(row)).collect())
    }

    /// New partition selecting `idx[i]` for each output row, across every
    /// column.
    pub fn gather(&self, idx: &[u32]) -> ColumnarPartition {
        ColumnarPartition {
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            rows: idx.len(),
        }
    }

    /// New partition with one column replaced (the other columns are
    /// shared structurally via clone-on-read lanes where possible).
    pub fn with_column(&self, idx: usize, col: Column) -> ColumnarPartition {
        assert_eq!(col.len(), self.rows, "replacement column length");
        let mut columns = self.columns.clone();
        columns[idx] = col;
        ColumnarPartition {
            columns,
            rows: self.rows,
        }
    }

    /// New partition with `col` appended after the existing columns (the
    /// combine kernels widen left batches with aggregated right cells).
    pub fn append_column(&self, col: Column) -> ColumnarPartition {
        assert_eq!(col.len(), self.rows, "appended column length");
        let mut columns = self.columns.clone();
        columns.push(col);
        ColumnarPartition {
            columns,
            rows: self.rows,
        }
    }

    /// Owning [`concat`](ColumnarPartition::concat): when exactly one
    /// non-empty partition survives — the common case inside an execute
    /// task, which holds one batch plus zero-row padding — it is moved
    /// through without copying any column buffers.
    pub fn concat_owned(parts: Vec<ColumnarPartition>) -> ColumnarPartition {
        let ncols = parts.first().map_or(0, |p| p.num_columns());
        let mut nonempty: Vec<ColumnarPartition> =
            parts.into_iter().filter(|p| !p.is_empty()).collect();
        match nonempty.len() {
            0 => ColumnarPartition::empty(ncols),
            1 => nonempty.pop().expect("one partition"),
            _ => ColumnarPartition::concat(&nonempty),
        }
    }

    /// Concatenate partitions vertically. Skips empties; the column count
    /// is taken from the first non-empty partition.
    pub fn concat(parts: &[ColumnarPartition]) -> ColumnarPartition {
        let nonempty: Vec<&ColumnarPartition> = parts.iter().filter(|p| !p.is_empty()).collect();
        match nonempty.first() {
            None => ColumnarPartition::empty(parts.first().map_or(0, |p| p.num_columns())),
            Some(first) => {
                let ncols = first.num_columns();
                let rows = nonempty.iter().map(|p| p.len()).sum();
                let columns = (0..ncols)
                    .map(|c| {
                        let cols: Vec<&Column> = nonempty.iter().map(|p| p.column(c)).collect();
                        Column::concat(&cols)
                    })
                    .collect();
                ColumnarPartition { columns, rows }
            }
        }
    }
}

impl ByteSize for ColumnarPartition {
    fn byte_size(&self) -> usize {
        24 + self.columns.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rows() -> Vec<Row> {
        vec![
            Row::new(vec![
                Value::str("cab1"),
                Value::Int(10),
                Value::Float(1.5),
                Value::Time(Timestamp::from_secs(100)),
                Value::Bool(true),
            ]),
            Row::new(vec![
                Value::str("cab2"),
                Value::Null,
                Value::Float(f64::NAN),
                Value::Null,
                Value::list([Value::Int(1), Value::str("x")]),
            ]),
            Row::new(vec![
                Value::str("cab1"),
                Value::Int(-3),
                Value::Null,
                Value::Time(Timestamp::from_micros(123_456_789)),
                Value::Null,
            ]),
        ]
    }

    fn keys(rows: &[Row]) -> Vec<Vec<KeyAtom>> {
        rows.iter()
            .map(|r| r.values().iter().map(Value::key).collect())
            .collect()
    }

    #[test]
    fn round_trip_is_exact_including_nan_bits() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.num_columns(), 5);
        // NaN != NaN under PartialEq, so compare bit-exact key encodings.
        assert_eq!(keys(&batch.to_rows()), keys(&rows));
    }

    #[test]
    fn lane_inference_picks_typed_lanes() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        assert!(matches!(batch.column(0).data(), ColumnData::Str { .. }));
        assert!(matches!(batch.column(1).data(), ColumnData::Int(_)));
        assert!(matches!(batch.column(2).data(), ColumnData::Float(_)));
        assert!(matches!(batch.column(3).data(), ColumnData::Time(_)));
        assert!(matches!(batch.column(4).data(), ColumnData::Mixed(_)));
    }

    #[test]
    fn heterogeneous_column_falls_back_to_mixed() {
        let col = Column::from_values(&[Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(col.data(), ColumnData::Mixed(_)));
        assert_eq!(col.value_at(0), Value::Int(1));
        assert_eq!(col.value_at(1), Value::Float(2.0));
    }

    #[test]
    fn str_dictionary_deduplicates() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        if let ColumnData::Str { codes, dict } = batch.column(0).data() {
            assert_eq!(dict.len(), 2);
            assert_eq!(codes, &vec![0, 1, 0]);
        } else {
            panic!("expected dictionary column");
        }
    }

    #[test]
    fn validity_tracks_nulls() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        assert!(batch.column(1).validity().get(0));
        assert!(!batch.column(1).validity().get(1));
        assert_eq!(batch.column(1).validity().count_valid(), 2);
        assert_eq!(batch.value_at(1, 1), Value::Null);
    }

    #[test]
    fn accessors_match_value_views() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        for (r, row) in rows.iter().enumerate() {
            for c in 0..row.len() {
                let v = row.get(c);
                assert_eq!(
                    batch.column(c).f64_at(r).map(f64::to_bits),
                    v.as_f64().map(f64::to_bits)
                );
                assert_eq!(
                    batch.column(c).time_micros_at(r),
                    v.as_time().map(|t| t.as_micros())
                );
                assert_eq!(batch.column(c).key_at(r), v.key());
            }
        }
    }

    #[test]
    fn gather_selects_and_reorders() {
        let rows = mixed_rows();
        let batch = ColumnarPartition::from_rows(&rows);
        let picked = batch.gather(&[2, 0, 0]);
        assert_eq!(picked.len(), 3);
        assert_eq!(
            keys(&picked.to_rows()),
            keys(&[rows[2].clone(), rows[0].clone(), rows[0].clone()])
        );
    }

    #[test]
    fn concat_merges_dictionaries() {
        let a = ColumnarPartition::from_rows(&[Row::new(vec![Value::str("x")])]);
        let b = ColumnarPartition::from_rows(&[
            Row::new(vec![Value::str("y")]),
            Row::new(vec![Value::str("x")]),
        ]);
        let cat = ColumnarPartition::concat(&[a, b]);
        assert_eq!(cat.len(), 3);
        if let ColumnData::Str { codes, dict } = cat.column(0).data() {
            assert_eq!(dict.len(), 2);
            assert_eq!(codes, &vec![0, 1, 0]);
        } else {
            panic!("expected dictionary column");
        }
    }

    #[test]
    fn concat_handles_lane_mismatch_and_empties() {
        let ints = ColumnarPartition::from_rows(&[Row::new(vec![Value::Int(1)])]);
        let floats = ColumnarPartition::from_rows(&[Row::new(vec![Value::Float(2.5)])]);
        let empty = ColumnarPartition::empty(1);
        let cat = ColumnarPartition::concat(&[ints, empty, floats]);
        assert_eq!(cat.len(), 2);
        assert!(matches!(cat.column(0).data(), ColumnData::Mixed(_)));
        assert_eq!(cat.value_at(0, 0), Value::Int(1));
        assert_eq!(cat.value_at(1, 0), Value::Float(2.5));
    }

    #[test]
    fn float_builder_builds_validity() {
        let mut b = FloatBuilder::with_capacity(3);
        b.push(Some(1.0));
        b.push(None);
        b.push(Some(3.0));
        let col = b.finish();
        assert_eq!(col.value_at(0), Value::Float(1.0));
        assert_eq!(col.value_at(1), Value::Null);
        assert_eq!(col.value_at(2), Value::Float(3.0));
    }

    #[test]
    fn empty_round_trip() {
        let batch = ColumnarPartition::from_rows(&[]);
        assert!(batch.is_empty());
        assert!(batch.to_rows().is_empty());
        let e = ColumnarPartition::empty(3);
        assert_eq!(e.num_columns(), 3);
        assert!(e.to_rows().is_empty());
    }

    #[test]
    fn validity_push_and_count() {
        let mut v = Validity::all_null(0);
        for i in 0..130 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        assert_eq!(Validity::all_valid(70).count_valid(), 70);
    }

    #[test]
    fn byte_size_scales_with_rows() {
        let small = ColumnarPartition::from_rows(&mixed_rows());
        let rows: Vec<Row> = (0..100).flat_map(|_| mixed_rows()).collect();
        let big = ColumnarPartition::from_rows(&rows);
        assert!(big.byte_size() > small.byte_size() * 10);
    }
}
