//! # sjcore — ScrubJay core
//!
//! A Rust reproduction of ScrubJay (SC '17): semantic annotation of
//! heterogeneous HPC performance data, reusable derivations
//! (transformations and combinations, including the paper's novel
//! interpolation join), and a derivation engine that satisfies logical
//! queries by searching — over data semantics only — for a sequence of
//! derivations, then executing it as data-parallel operations.
//!
//! The crate layers:
//! * [`value`] / [`row`] / [`schema`] — the ScrubJayRDD data model
//! * [`units`] / [`semantics`] — the semantic dictionary and type system
//! * [`dataset`] — the annotated distributed dataset
//! * [`wrappers`] — data wrappers (CSV, KV store) and unwrappers
//! * [`derivations`] — transformations and combinations
//! * [`engine`] — queries, the Algorithm-1 search, and reproducible plans
//! * [`cache`] — the opt-in LRU intermediate-result cache
//! * [`catalog`] — the knowledge base of named datasets and rules
//!
//! ```
//! use sjcore::catalog::Catalog;
//! use sjcore::engine::{Query, QueryEngine, QueryValue};
//! use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, Value};
//! use sjdf::ExecCtx;
//!
//! // Annotate and register two raw tables that share only the
//! // compute-node dimension (under different column names).
//! let ctx = ExecCtx::local();
//! let mut catalog = Catalog::default_hpc();
//! let temps = Schema::new(vec![
//!     FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
//!     FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
//! ])?;
//! catalog.register_dataset("temps", SjDataset::from_rows(
//!     &ctx,
//!     vec![Row::new(vec![Value::str("cab5"), Value::Float(67.4)])],
//!     temps, "temps", 1,
//! ))?;
//! let layout = Schema::new(vec![
//!     FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
//!     FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
//! ])?;
//! catalog.register_dataset("layout", SjDataset::from_rows(
//!     &ctx,
//!     vec![Row::new(vec![Value::str("cab5"), Value::str("rack17")])],
//!     layout, "layout", 1,
//! ))?;
//!
//! // Ask for temperatures per rack; the engine finds the natural join.
//! let query = Query::new(["rack"], vec![QueryValue::dim("temperature")]);
//! let plan = QueryEngine::new(&catalog).solve(&query)?;
//! let result = plan.execute(&catalog, None)?;
//! assert_eq!(result.count()?, 1);
//! # Ok::<(), sjcore::SjError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod column;
pub mod compress;
pub mod dataset;
pub mod derivations;
pub mod engine;
pub mod error;
pub mod fuse;
pub mod interop;
pub mod row;
pub mod schema;
pub mod semantics;
pub mod units;
pub mod value;
pub mod window;
pub mod wrappers;

pub use column::{Column, ColumnData, ColumnarPartition, Validity};
pub use dataset::SjDataset;
pub use error::{Result, SjError};
pub use fuse::ColKernel;
pub use row::Row;
pub use schema::{FieldDef, Schema};
pub use semantics::{FieldSemantics, RelationType, SemanticDictionary};
pub use units::time::{TimeSpan, Timestamp};
pub use value::Value;
