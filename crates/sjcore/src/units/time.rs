//! Time representation: instants, spans, and civil date conversion.
//!
//! ScrubJay's semantics distinguish time *stamps* (an instant a recording
//! was made — a domain element) from time *spans* (e.g. the scheduled
//! window of a job). The paper's `explode continuous` transformation turns
//! a span into the sequence of stamps it contains so span-shaped datasets
//! can be joined against stamp-shaped ones.
//!
//! Instants are microseconds since the Unix epoch. Civil (calendar)
//! conversion uses Howard Hinnant's `days_from_civil` algorithm so we can
//! parse and print `YYYY-MM-DD HH:MM:SS` without external crates.

use serde::{Deserialize, Serialize};
use sjdf::ByteSize;
use std::fmt;

/// Microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;

/// An instant in time: microseconds since the Unix epoch (UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub i64);

/// A half-open time interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeSpan {
    /// Inclusive start instant.
    pub start: Timestamp,
    /// Exclusive end instant.
    pub end: Timestamp,
}

impl Timestamp {
    /// Construct from whole seconds since the epoch.
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs * MICROS_PER_SEC)
    }

    /// Construct from microseconds since the epoch.
    pub fn from_micros(micros: i64) -> Self {
        Timestamp(micros)
    }

    /// Whole seconds since the epoch (truncated).
    pub fn as_secs(&self) -> i64 {
        self.0.div_euclid(MICROS_PER_SEC)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> i64 {
        self.0
    }

    /// Seconds since the epoch as a float (for interpolation).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant shifted by a (possibly negative) number of seconds.
    pub fn add_secs(&self, secs: f64) -> Timestamp {
        Timestamp(self.0 + (secs * MICROS_PER_SEC as f64) as i64)
    }

    /// Parse `YYYY-MM-DD HH:MM:SS` (UTC).
    pub fn parse(s: &str) -> Option<Timestamp> {
        let s = s.trim();
        let (date, time) = s.split_once([' ', 'T'])?;
        let mut dit = date.split('-');
        let y: i64 = dit.next()?.parse().ok()?;
        let m: u32 = dit.next()?.parse().ok()?;
        let d: u32 = dit.next()?.parse().ok()?;
        if dit.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        let mut tit = time.split(':');
        let hh: i64 = tit.next()?.parse().ok()?;
        let mm: i64 = tit.next()?.parse().ok()?;
        let ss: f64 = tit.next().unwrap_or("0").parse().ok()?;
        if tit.next().is_some() || !(0..24).contains(&hh) || !(0..60).contains(&mm) {
            return None;
        }
        let days = days_from_civil(y, m, d);
        let micros =
            (days * 86_400 + hh * 3600 + mm * 60) * MICROS_PER_SEC + (ss * 1e6).round() as i64;
        Some(Timestamp(micros))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0.div_euclid(MICROS_PER_SEC);
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        write!(
            f,
            "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
            sod / 3600,
            (sod % 3600) / 60,
            sod % 60
        )
    }
}

impl TimeSpan {
    /// Construct a span; `start` and `end` are swapped if reversed.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        if start <= end {
            TimeSpan { start, end }
        } else {
            TimeSpan {
                start: end,
                end: start,
            }
        }
    }

    /// Duration of the span in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end.0 - self.start.0) as f64 / MICROS_PER_SEC as f64
    }

    /// Whether an instant lies within `[start, end)`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Explode into discrete stamps every `step_secs`, starting at `start`
    /// (the paper's *explode continuous* primitive). Always yields at least
    /// the start instant so zero-length spans still produce a row.
    pub fn explode(&self, step_secs: f64) -> Vec<Timestamp> {
        let step = (step_secs.max(1e-6) * MICROS_PER_SEC as f64) as i64;
        let mut out = Vec::new();
        let mut t = self.start.0;
        loop {
            out.push(Timestamp(t));
            t += step;
            if t >= self.end.0 {
                break;
            }
        }
        out
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.start, self.end)
    }
}

impl ByteSize for Timestamp {
    fn byte_size(&self) -> usize {
        8
    }
}

impl ByteSize for TimeSpan {
    fn byte_size(&self) -> usize {
        16
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp(0).to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn civil_round_trip_over_wide_range() {
        for days in (-200_000..200_000).step_by(137) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "days={days}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = "2017-03-27 16:43:27";
        let t = Timestamp::parse(s).unwrap();
        assert_eq!(t.to_string(), s);
    }

    #[test]
    fn parse_t_separator_and_fractional_seconds() {
        let t = Timestamp::parse("2017-03-27T00:00:01.5").unwrap();
        assert_eq!(
            t.as_micros(),
            Timestamp::parse("2017-03-27 00:00:01").unwrap().as_micros() + 500_000
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Timestamp::parse("not a date").is_none());
        assert!(Timestamp::parse("2017-13-01 00:00:00").is_none());
        assert!(Timestamp::parse("2017-01-32 00:00:00").is_none());
        assert!(Timestamp::parse("2017-01-01 25:00:00").is_none());
    }

    #[test]
    fn span_normalizes_order() {
        let a = Timestamp::from_secs(100);
        let b = Timestamp::from_secs(50);
        let s = TimeSpan::new(a, b);
        assert_eq!(s.start, b);
        assert_eq!(s.end, a);
        assert_eq!(s.duration_secs(), 50.0);
    }

    #[test]
    fn span_contains_is_half_open() {
        let s = TimeSpan::new(Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(s.contains(Timestamp::from_secs(10)));
        assert!(s.contains(Timestamp::from_secs(19)));
        assert!(!s.contains(Timestamp::from_secs(20)));
        assert!(!s.contains(Timestamp::from_secs(9)));
    }

    #[test]
    fn explode_steps_through_span() {
        let s = TimeSpan::new(Timestamp::from_secs(0), Timestamp::from_secs(10));
        let stamps = s.explode(2.0);
        assert_eq!(
            stamps,
            vec![0, 2, 4, 6, 8]
                .into_iter()
                .map(Timestamp::from_secs)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn explode_zero_length_span_yields_start() {
        let t = Timestamp::from_secs(5);
        let s = TimeSpan::new(t, t);
        assert_eq!(s.explode(60.0), vec![t]);
    }

    #[test]
    fn add_secs_shifts() {
        let t = Timestamp::from_secs(100).add_secs(-0.5);
        assert_eq!(t.as_micros(), 99_500_000);
    }

    #[test]
    fn negative_timestamps_format() {
        // 1969-12-31 23:59:59
        assert_eq!(Timestamp::from_secs(-1).to_string(), "1969-12-31 23:59:59");
    }
}
