//! The units type system (§4.2).
//!
//! Units describe *how* a measurement is recorded: degrees Celsius vs
//! Fahrenheit, seconds vs minutes, a time span vs a time stamp, a single
//! identifier vs a list of identifiers. ScrubJay constrains the operations
//! available on a data element by its units — seconds convert to minutes,
//! spans explode into stamps, lists explode into elements — and the
//! derivation engine uses these capabilities to align datasets before
//! combining them.

pub mod time;

use crate::error::{Result, SjError};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// What kind of quantity a unit denotes, and therefore which operations
/// apply to values carrying it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UnitKind {
    /// An opaque identifier (node name, job id): only exact comparison.
    Identifier,
    /// A calendar instant; ordered, continuous, interpolatable.
    DateTime,
    /// A time interval; explodes into a sequence of instants.
    TimeSpanKind,
    /// A linear scalar: `base_value = value * factor + offset` converts to
    /// the dimension's base unit (e.g. Fahrenheit -> Celsius).
    Scalar {
        /// Multiplier to the dimension's base unit.
        factor: f64,
        /// Additive offset to the dimension's base unit.
        offset: f64,
    },
    /// A count of events since an arbitrary reset point. Absolute values
    /// are meaningless; only windowed rates are (§7.3).
    CumulativeCount,
    /// A derived per-time rate (e.g. instructions per millisecond). The
    /// payload is the window length in seconds the rate is expressed over.
    Rate {
        /// Length of the rate window in seconds (1.0 = per second,
        /// 0.001 = per millisecond).
        per_secs: f64,
    },
    /// A list of values with the given element units; explodes into
    /// elements.
    ListOf {
        /// Units keyword of the list elements.
        element: String,
    },
}

/// A named unit definition living in the semantic dictionary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitsDef {
    /// Dictionary keyword (unique; no homonyms).
    pub name: String,
    /// The dimension this unit measures (dictionary keyword).
    pub dimension: String,
    /// What kind of quantity this unit denotes.
    pub kind: UnitKind,
}

impl UnitsDef {
    /// Shorthand constructor.
    pub fn new(name: &str, dimension: &str, kind: UnitKind) -> Self {
        UnitsDef {
            name: name.into(),
            dimension: dimension.into(),
            kind,
        }
    }

    /// True if values with these units can be linearly converted.
    pub fn is_scalar(&self) -> bool {
        matches!(self.kind, UnitKind::Scalar { .. })
    }

    /// True if values are time spans.
    pub fn is_span(&self) -> bool {
        matches!(self.kind, UnitKind::TimeSpanKind)
    }

    /// True if values are lists.
    pub fn is_list(&self) -> bool {
        matches!(self.kind, UnitKind::ListOf { .. })
    }
}

/// Convert a numeric value between two scalar units of the same dimension.
///
/// Conversion goes through the dimension's base unit:
/// `base = v * f_from + o_from`, then `out = (base - o_to) / f_to`.
pub fn convert_scalar(v: f64, from: &UnitsDef, to: &UnitsDef) -> Result<f64> {
    if from.dimension != to.dimension {
        return Err(SjError::IncompatibleUnits {
            from: from.name.clone(),
            to: to.name.clone(),
        });
    }
    match (&from.kind, &to.kind) {
        (
            UnitKind::Scalar {
                factor: f1,
                offset: o1,
            },
            UnitKind::Scalar {
                factor: f2,
                offset: o2,
            },
        ) => {
            let base = v * f1 + o1;
            Ok((base - o2) / f2)
        }
        _ => Err(SjError::IncompatibleUnits {
            from: from.name.clone(),
            to: to.name.clone(),
        }),
    }
}

/// Convert a [`Value`] between scalar units, preserving nulls.
pub fn convert_value(v: &Value, from: &UnitsDef, to: &UnitsDef) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        _ => {
            let x = v.as_f64().ok_or_else(|| {
                SjError::TypeError(format!(
                    "cannot convert non-numeric value of type `{}`",
                    v.type_name()
                ))
            })?;
            Ok(Value::Float(convert_scalar(x, from, to)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn celsius() -> UnitsDef {
        UnitsDef::new(
            "celsius",
            "temperature",
            UnitKind::Scalar {
                factor: 1.0,
                offset: 0.0,
            },
        )
    }

    fn fahrenheit() -> UnitsDef {
        UnitsDef::new(
            "fahrenheit",
            "temperature",
            UnitKind::Scalar {
                factor: 5.0 / 9.0,
                offset: -160.0 / 9.0,
            },
        )
    }

    fn seconds() -> UnitsDef {
        UnitsDef::new(
            "seconds",
            "duration",
            UnitKind::Scalar {
                factor: 1.0,
                offset: 0.0,
            },
        )
    }

    fn minutes() -> UnitsDef {
        UnitsDef::new(
            "minutes",
            "duration",
            UnitKind::Scalar {
                factor: 60.0,
                offset: 0.0,
            },
        )
    }

    #[test]
    fn fahrenheit_to_celsius() {
        let c = convert_scalar(212.0, &fahrenheit(), &celsius()).unwrap();
        assert!((c - 100.0).abs() < 1e-9);
        let c = convert_scalar(32.0, &fahrenheit(), &celsius()).unwrap();
        assert!(c.abs() < 1e-9);
    }

    #[test]
    fn celsius_to_fahrenheit_round_trip() {
        let f = convert_scalar(67.4, &celsius(), &fahrenheit()).unwrap();
        let c = convert_scalar(f, &fahrenheit(), &celsius()).unwrap();
        assert!((c - 67.4).abs() < 1e-9);
    }

    #[test]
    fn seconds_to_minutes() {
        assert_eq!(convert_scalar(120.0, &seconds(), &minutes()).unwrap(), 2.0);
        assert_eq!(convert_scalar(2.0, &minutes(), &seconds()).unwrap(), 120.0);
    }

    #[test]
    fn cross_dimension_conversion_rejected() {
        let e = convert_scalar(1.0, &seconds(), &celsius()).unwrap_err();
        assert!(matches!(e, SjError::IncompatibleUnits { .. }));
    }

    #[test]
    fn non_scalar_conversion_rejected() {
        let dt = UnitsDef::new("datetime", "time", UnitKind::DateTime);
        let sec = UnitsDef::new(
            "t_seconds",
            "time",
            UnitKind::Scalar {
                factor: 1.0,
                offset: 0.0,
            },
        );
        assert!(convert_scalar(1.0, &dt, &sec).is_err());
    }

    #[test]
    fn convert_value_preserves_null_and_rejects_strings() {
        assert_eq!(
            convert_value(&Value::Null, &seconds(), &minutes()).unwrap(),
            Value::Null
        );
        assert!(convert_value(&Value::str("x"), &seconds(), &minutes()).is_err());
        assert_eq!(
            convert_value(&Value::Int(60), &seconds(), &minutes()).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(celsius().is_scalar());
        assert!(!celsius().is_span());
        let span = UnitsDef::new("timespan", "time", UnitKind::TimeSpanKind);
        assert!(span.is_span());
        let list = UnitsDef::new(
            "node-list",
            "compute-node",
            UnitKind::ListOf {
                element: "node-id".into(),
            },
        );
        assert!(list.is_list());
    }
}
