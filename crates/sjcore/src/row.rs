//! Rows: positional tuples of [`Value`]s interpreted through a schema.
//!
//! ScrubJayRDD rows are named tuples (§4.1). Storing names in every row
//! would waste distributed memory, so rows are positional and the schema
//! (stored once per dataset) maps names to positions.

use crate::schema::Schema;
use crate::value::{KeyAtom, Value};
use serde::{Deserialize, Serialize};
use sjdf::ByteSize;

/// One record: values in schema column order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Construct from values in schema order.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Cell at a column index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All cells in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the cell vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Exact-match key over the given column indices (for joins/grouping).
    pub fn key_of(&self, indices: &[usize]) -> Vec<KeyAtom> {
        indices.iter().map(|&i| self.values[i].key()).collect()
    }

    /// A new row with one cell replaced.
    pub fn with_value(&self, idx: usize, v: Value) -> Row {
        let mut values = self.values.clone();
        values[idx] = v;
        Row { values }
    }

    /// A new row with one cell appended.
    pub fn with_appended(&self, v: Value) -> Row {
        let mut values = self.values.clone();
        values.push(v);
        Row { values }
    }

    /// A new row without the cell at `idx`.
    pub fn without(&self, idx: usize) -> Row {
        let mut values = self.values.clone();
        values.remove(idx);
        Row { values }
    }

    /// Render as a display string using a schema for column names.
    pub fn display_with(&self, schema: &Schema) -> String {
        let parts: Vec<String> = schema
            .fields()
            .iter()
            .zip(&self.values)
            .map(|(f, v)| format!("{}={}", f.name, v))
            .collect();
        format!("({})", parts.join(", "))
    }
}

impl ByteSize for Row {
    fn byte_size(&self) -> usize {
        24 + self.values.iter().map(ByteSize::byte_size).sum::<usize>()
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDef;
    use crate::semantics::FieldSemantics;

    fn row() -> Row {
        Row::new(vec![Value::Int(5), Value::str("cab17"), Value::Float(67.4)])
    }

    #[test]
    fn get_and_len() {
        let r = row();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(0), &Value::Int(5));
        assert_eq!(r.get(1).as_str(), Some("cab17"));
    }

    #[test]
    fn key_of_selected_columns() {
        let r = row();
        let k = r.key_of(&[1, 0]);
        assert_eq!(k, vec![Value::str("cab17").key(), Value::Int(5).key()]);
    }

    #[test]
    fn editing_helpers_do_not_mutate_original() {
        let r = row();
        let r2 = r.with_value(0, Value::Int(9));
        assert_eq!(r.get(0), &Value::Int(5));
        assert_eq!(r2.get(0), &Value::Int(9));
        let r3 = r.with_appended(Value::Bool(true));
        assert_eq!(r3.len(), 4);
        let r4 = r.without(1);
        assert_eq!(r4.len(), 2);
        assert_eq!(r4.get(1), &Value::Float(67.4));
    }

    #[test]
    fn display_with_schema_names() {
        let schema = Schema::new(vec![
            FieldDef::new("id", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("name", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        ])
        .unwrap();
        assert_eq!(row().display_with(&schema), "(id=5, name=cab17, temp=67.4)");
    }

    #[test]
    fn byte_size_counts_cells() {
        assert!(row().byte_size() > 24);
    }

    #[test]
    fn from_iterator() {
        let r: Row = [Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(r.len(), 2);
    }
}
