//! Planner determinism: `engine::search` must return the same plan for
//! the same catalog every time — across repeated solves, fresh engines,
//! and dataset registration orders.
//!
//! This is load-bearing for the whole service stack: the plan
//! fingerprint keys the result cache, and the chaos suite's
//! byte-identical-replay guarantee assumes a fault-free run and a
//! faulted run of the *same query* execute the *same plan*. Rust's
//! `HashMap` seeds its iteration order per instance, so any map-order
//! leak shows up here as a flaky fingerprint.

use sjcore::catalog::Catalog;
use sjcore::engine::{Query, QueryEngine, QueryValue};
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::units::time::{TimeSpan, Timestamp};
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::ExecCtx;

/// The three DAT-1 style tables, returned as (name, dataset) pairs so
/// callers can register them in any order.
fn tables(ctx: &ExecCtx) -> Vec<(&'static str, SjDataset)> {
    let joblog_schema = Schema::new(vec![
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
        FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        ),
        FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
    ])
    .unwrap();
    let joblog_rows = vec![Row::new(vec![
        Value::str("1001"),
        Value::str("AMG"),
        Value::list([Value::str("cab1"), Value::str("cab2")]),
        Value::Float(240.0),
        Value::Span(TimeSpan::new(
            Timestamp::from_secs(0),
            Timestamp::from_secs(240),
        )),
    ])];
    let joblog = SjDataset::from_rows(ctx, joblog_rows, joblog_schema, "job_queue_log", 1);

    let layout_schema = Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
    ])
    .unwrap();
    let layout_rows = vec![
        Row::new(vec![Value::str("cab1"), Value::str("rack17")]),
        Row::new(vec![Value::str("cab2"), Value::str("rack17")]),
    ];
    let layout = SjDataset::from_rows(ctx, layout_rows, layout_schema, "node_layout", 1);

    let temps_schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new(
            "location",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap();
    let mut temps_rows = Vec::new();
    for t in [0i64, 120, 240] {
        for (aisle, base) in [("hot", 35.0), ("cold", 18.0)] {
            temps_rows.push(Row::new(vec![
                Value::str("rack17"),
                Value::str("top"),
                Value::str(aisle),
                Value::Time(Timestamp::from_secs(t)),
                Value::Float(base + t as f64 / 100.0),
            ]));
        }
    }
    let temps = SjDataset::from_rows(ctx, temps_rows, temps_schema, "rack_temps", 1);

    vec![
        ("job_queue_log", joblog),
        ("node_layout", layout),
        ("rack_temps", temps),
    ]
}

fn catalog_in_order(ctx: &ExecCtx, order: &[usize]) -> Catalog {
    let mut c = Catalog::default_hpc();
    let tables = tables(ctx);
    for &i in order {
        let (name, ds) = &tables[i];
        c.register_dataset(name, ds.clone()).unwrap();
    }
    c
}

fn rack_heat_query() -> Query {
    Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    )
}

/// One solve's identity: the canonical JSON tree plus the fingerprint
/// that keys the result cache.
fn solve_identity(catalog: &Catalog) -> (String, u64, String) {
    let plan = QueryEngine::new(catalog).solve(&rack_heat_query()).unwrap();
    (plan.to_json(), plan.fingerprint(), plan.describe())
}

/// Repeated solves over one catalog — and over freshly rebuilt catalogs,
/// whose internal maps get fresh random iteration seeds — agree exactly.
#[test]
fn repeated_solves_agree_byte_for_byte() {
    let ctx = ExecCtx::local();
    let catalog = catalog_in_order(&ctx, &[0, 1, 2]);
    let first = solve_identity(&catalog);
    for round in 0..10 {
        assert_eq!(
            solve_identity(&catalog),
            first,
            "solve {round} over one catalog diverged"
        );
        let rebuilt = catalog_in_order(&ctx, &[0, 1, 2]);
        assert_eq!(
            solve_identity(&rebuilt),
            first,
            "solve over rebuilt catalog {round} diverged"
        );
    }
}

/// Every registration order of the catalog's datasets produces the same
/// plan, fingerprint, and description.
#[test]
fn registration_order_does_not_change_the_plan() {
    let ctx = ExecCtx::local();
    let reference = solve_identity(&catalog_in_order(&ctx, &[0, 1, 2]));
    for order in [[0usize, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
        let got = solve_identity(&catalog_in_order(&ctx, &order));
        assert_eq!(
            got, reference,
            "registration order {order:?} changed the plan"
        );
    }
}

/// The executed rows are identical across registration orders too — the
/// property the chaos suite's byte-identical replays stand on.
#[test]
fn executed_rows_agree_across_registration_orders() {
    let ctx = ExecCtx::local();
    let run = |order: &[usize]| -> Vec<String> {
        let catalog = catalog_in_order(&ctx, order);
        let plan = QueryEngine::new(&catalog)
            .solve(&rack_heat_query())
            .unwrap();
        let ds = plan.execute(&catalog, None).unwrap();
        ds.collect()
            .unwrap()
            .iter()
            .map(|r| format!("{r:?}"))
            .collect()
    };
    let reference = run(&[0, 1, 2]);
    assert!(!reference.is_empty());
    assert_eq!(run(&[2, 1, 0]), reference);
    assert_eq!(run(&[1, 2, 0]), reference);
}
