//! Property tests for the LZSS codec backing the cold cache tier.

use proptest::prelude::*;
use sjcore::compress::{compress, decompress};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any byte sequence round-trips.
    #[test]
    fn arbitrary_bytes_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Highly repetitive sequences round-trip and shrink.
    #[test]
    fn repetitive_bytes_round_trip_and_shrink(
        unit in prop::collection::vec(any::<u8>(), 1..32),
        reps in 50usize..300,
    ) {
        let data: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).cloned().collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data.clone());
        prop_assert!(c.len() < data.len() / 2 + 64, "{} -> {}", data.len(), c.len());
    }

    /// Truncating a compressed stream never produces a bogus success.
    #[test]
    fn truncation_is_detected(
        data in prop::collection::vec(any::<u8>(), 16..512),
        cut in 1usize..8,
    ) {
        let mut c = compress(&data);
        let keep = c.len().saturating_sub(cut);
        c.truncate(keep);
        match decompress(&c) {
            None => {}
            Some(out) => prop_assert_ne!(out, data, "truncated stream decoded to the original"),
        }
    }

    /// Concatenated row-set JSON (the real cold-tier payload) round-trips.
    #[test]
    fn jsonish_payloads_round_trip(rows in 1usize..200, rack in 0u32..40) {
        let json: String = (0..rows)
            .map(|i| format!(
                "{{\"node\":\"cab{i}\",\"rack\":\"rack{rack}\",\"temp\":{}.5}}",
                60 + (i % 9)
            ))
            .collect();
        let c = compress(json.as_bytes());
        prop_assert_eq!(decompress(&c).unwrap(), json.as_bytes());
    }
}
