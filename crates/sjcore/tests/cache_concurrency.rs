//! Concurrency tests for the LRU result cache: many threads hammering
//! `get`/`put` on a capacity-bounded cache must never deadlock, corrupt
//! the byte accounting, or lose the LRU invariant. This is the exact
//! access pattern the query service's worker pool produces.

use sjcore::cache::ResultCache;
use sjcore::{FieldDef, FieldSemantics, Row, Schema, Value};
use std::sync::Arc;
use std::thread;

fn schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap()
}

fn rows(tag: u64, n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::str(format!("cab{tag}-{i}")),
                Value::Float(60.0 + (i % 9) as f64),
            ])
        })
        .collect()
}

#[test]
fn concurrent_get_put_with_eviction_stays_consistent() {
    // Small capacity so eviction happens constantly under load.
    let cache = Arc::new(ResultCache::new(64 << 10));
    let schema = schema();
    let threads = 8;
    let keys_per_thread = 32u64;
    let rounds = 40;

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let schema = schema.clone();
            thread::spawn(move || {
                let mut local_hits = 0u64;
                for round in 0..rounds {
                    for k in 0..keys_per_thread {
                        // Threads overlap on half the key space, so gets
                        // race puts of the same key and evictions of
                        // other keys.
                        let key = if k % 2 == 0 { k } else { t * 1000 + k };
                        match cache.get(key) {
                            Some((s, r)) => {
                                // An entry must come back whole, never a
                                // torn or partially evicted state.
                                assert_eq!(s.len(), 2);
                                assert!(!r.is_empty());
                                assert_eq!(r[0].values().len(), 2);
                                local_hits += 1;
                            }
                            None => {
                                cache.put(key, schema.clone(), rows(key, 8 + (round % 5)));
                            }
                        }
                    }
                }
                local_hits
            })
        })
        .collect();

    let total_hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = cache.stats();

    // The cache was far smaller than the working set: eviction must have
    // happened, and the byte accounting must still respect capacity.
    assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
    assert!(
        cache.bytes() <= 64 << 10,
        "cache over budget: {} bytes",
        cache.bytes()
    );
    // Overlapping keys guarantee some hits, and the shared counters must
    // at least account for every hit the threads observed.
    assert!(total_hits > 0, "overlapping keys should produce hits");
    assert!(
        stats.hits >= total_hits,
        "{stats:?} vs {total_hits} observed"
    );
    assert!(stats.misses > 0);

    // After the storm the cache still works single-threaded.
    cache.put(u64::MAX, schema.clone(), rows(9, 4));
    let (_, r) = cache.get(u64::MAX).expect("fresh entry readable");
    assert_eq!(r.len(), 4);
}

#[test]
fn concurrent_readers_of_one_hot_key_all_see_the_same_rows() {
    let cache = Arc::new(ResultCache::new(1 << 20));
    let expected = rows(7, 16);
    cache.put(7, schema(), expected.clone());

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let expected = expected.clone();
            thread::spawn(move || {
                for _ in 0..200 {
                    let (_, got) = cache.get(7).expect("hot key stays resident");
                    assert_eq!(got, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cache.stats().hits, 8 * 200);
}
