//! Byte-identity probe: the columnar execute path must produce exactly
//! the rows the rowwise reference path produces, over a 100-seed sweep of
//! deliberately disarrayed inputs — duplicate timestamps, counter resets,
//! missing and unparsable times, NaN positions, null counter samples —
//! pushed through the derive-rate → interpolation-join pipeline. Rows
//! are compared through their [`KeyAtom`] encoding, which is bit-exact
//! for floats (NaN-safe) and distinguishes Int/Float/Time lanes.

use sjcore::dataset::SjDataset;
use sjcore::derivations::combine::{InterpolationJoin, NaiveInterpolationJoin};
use sjcore::derivations::transform::DeriveRate;
use sjcore::derivations::{Combination, Transformation};
use sjcore::semantics::{FieldSemantics, SemanticDictionary};
use sjcore::units::time::Timestamp;
use sjcore::value::KeyAtom;
use sjcore::{FieldDef, Row, Schema, Value};
use sjdf::{ExecCtx, FaultPlan, RetryPolicy};

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn counter_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
        FieldDef::new(
            "mem",
            FieldSemantics::value("memory-reads", "memory-reads-count"),
        ),
    ])
    .unwrap()
}

fn readings_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("NODE", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new(
            "loc",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap()
}

/// Disarrayed counter samples: monotone counters with injected resets,
/// duplicate timestamps, missing/unparsable times and null samples.
fn counters(ctx: &ExecCtx, seed: u64) -> SjDataset {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::new();
    for node in 0..3u64 {
        let mut t = rng.below(30) as i64;
        let mut instr = rng.below(1_000_000) as i64;
        let mut mem = rng.below(500_000) as i64;
        for _ in 0..(12 + rng.below(8)) {
            // Advance (or deliberately repeat) the sample time.
            if !rng.chance(15) {
                t += 1 + rng.below(9) as i64;
            }
            instr += rng.below(50_000) as i64;
            mem += rng.below(20_000) as i64;
            if rng.chance(8) {
                instr = rng.below(1_000) as i64; // counter reset
            }
            if rng.chance(8) {
                mem = rng.below(1_000) as i64; // independent reset
            }
            let time = if rng.chance(6) {
                Value::Null // missing timestamp
            } else if rng.chance(4) {
                Value::Float(f64::NAN) // unparsable source cell
            } else {
                Value::Time(Timestamp::from_secs(t))
            };
            let instr_v = if rng.chance(5) {
                Value::Null
            } else {
                Value::Int(instr)
            };
            let mem_v = if rng.chance(5) {
                Value::Null
            } else {
                Value::Int(mem)
            };
            rows.push(Row::new(vec![
                Value::str(format!("n{node}")),
                time,
                instr_v,
                mem_v,
            ]));
        }
    }
    let parts = 2 + (seed % 3) as usize;
    SjDataset::from_rows(ctx, rows, counter_schema(), "papi", parts)
}

/// Temperature readings with a residual location domain, scattered
/// sample times, and occasional NaN positions.
fn readings(ctx: &ExecCtx, seed: u64) -> SjDataset {
    let mut rng = Rng::new(seed ^ 0xdead_beef);
    let mut rows = Vec::new();
    for node in 0..3u64 {
        for loc in ["top", "bottom"] {
            let mut t = rng.below(20) as i64;
            for _ in 0..(10 + rng.below(6)) {
                t += 1 + rng.below(12) as i64;
                let time = if rng.chance(5) {
                    Value::Float(f64::NAN)
                } else {
                    Value::Time(Timestamp::from_secs(t))
                };
                rows.push(Row::new(vec![
                    Value::str(format!("n{node}")),
                    Value::str(loc),
                    time,
                    Value::Float(15.0 + rng.below(200) as f64 / 10.0),
                ]));
            }
        }
    }
    let parts = 2 + (seed % 2) as usize;
    SjDataset::from_rows(ctx, rows, readings_schema(), "coolant", parts)
}

/// derive-rate → interpolation-join, collected and canonicalized to
/// bit-exact key encodings.
fn pipeline(ctx: &ExecCtx, seed: u64) -> Vec<Vec<KeyAtom>> {
    let dict = SemanticDictionary::default_hpc();
    let rates = DeriveRate::new(1.0)
        .apply(&counters(ctx, seed), &dict)
        .unwrap();
    let joined = InterpolationJoin::new(10.0)
        .apply(&rates, &readings(ctx, seed), &dict)
        .unwrap();
    let mut rows: Vec<Vec<KeyAtom>> = joined
        .collect()
        .unwrap()
        .iter()
        .map(|r| r.values().iter().map(Value::key).collect())
        .collect();
    rows.sort();
    rows
}

#[test]
fn columnar_rowwise_identity_100_seed_sweep() {
    let mut total = 0usize;
    for seed in 0..100u64 {
        let col = pipeline(&ExecCtx::local(), seed);
        let row = pipeline(&ExecCtx::local().with_rowwise(), seed);
        assert_eq!(col, row, "columnar != rowwise at seed {seed}");
        total += col.len();
    }
    // The sweep must actually exercise the kernels, not compare vacuums.
    assert!(total > 1000, "suspiciously small sweep output: {total}");
}

#[test]
fn identity_holds_under_fault_injection() {
    // Injected task and shuffle-fetch failures are retried; the retried
    // columnar execution must still match the clean rowwise reference.
    for seed in 0..8u64 {
        let faulty = ExecCtx::local()
            .with_retry(RetryPolicy::retries(6))
            .with_faults(
                FaultPlan::seeded(seed)
                    .with_task_fail_rate(0.05)
                    .with_shuffle_fail_rate(0.05),
            );
        let col = pipeline(&faulty, seed);
        let row = pipeline(&ExecCtx::local().with_rowwise(), seed);
        assert_eq!(col, row, "faulty columnar != clean rowwise at seed {seed}");
    }
}

#[test]
fn naive_baseline_agrees_on_sample_seeds() {
    // Third opinion: the all-pairs baseline (always rowwise internally)
    // agrees with the columnar binning join on the same inputs.
    let dict = SemanticDictionary::default_hpc();
    for seed in 0..5u64 {
        let ctx = ExecCtx::local();
        let rates = DeriveRate::new(1.0)
            .apply(&counters(&ctx, seed), &dict)
            .unwrap();
        let r = readings(&ctx, seed);
        let canon = |ds: &SjDataset| {
            let mut rows: Vec<Vec<KeyAtom>> = ds
                .collect()
                .unwrap()
                .iter()
                .map(|row| row.values().iter().map(Value::key).collect())
                .collect();
            rows.sort();
            rows
        };
        let fast = canon(
            &InterpolationJoin::new(10.0)
                .apply(&rates, &r, &dict)
                .unwrap(),
        );
        let naive = canon(
            &NaiveInterpolationJoin::new(10.0)
                .apply(&rates, &r, &dict)
                .unwrap(),
        );
        assert_eq!(fast, naive, "binned != naive at seed {seed}");
    }
}
