//! Chrome trace-event JSON export.
//!
//! Produces the "JSON object format" understood by `chrome://tracing`
//! and Perfetto: a `traceEvents` array of complete (`ph: "X"`) and
//! instant (`ph: "i"`) events with microsecond timestamps, plus metadata
//! events naming the process and one track per recording thread.
//!
//! The same structs double as a typed parser ([`ChromeTrace`]), so tests
//! and CI can validate an exported trace by round-tripping it without a
//! dynamic JSON value type.

use crate::{EventKind, SpanEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Top-level Chrome trace object: `{"traceEvents": [...]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    /// The event array; field name is dictated by the trace format.
    pub traceEvents: Vec<ChromeEvent>,
}

/// One Chrome trace event. Every field is always emitted (instants carry
/// `dur: 0`) so the struct round-trips through the vendored serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Display name.
    pub name: String,
    /// Category (constant `"scrubjay"` for span data, `"__metadata"` for
    /// process/thread naming).
    pub cat: String,
    /// Phase: `"X"` complete, `"i"` instant, `"M"` metadata.
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts: u64,
    /// Duration, microseconds (0 for instants and metadata).
    pub dur: u64,
    /// Process id (always 1; one process).
    pub pid: u64,
    /// Thread id — the tracer's process-global thread id, one track per
    /// worker thread.
    pub tid: u64,
    /// Detail payload: span detail, ids, and failure flag.
    pub args: BTreeMap<String, String>,
}

const CATEGORY: &str = "scrubjay";
const PID: u64 = 1;

fn span_args(e: &SpanEvent) -> BTreeMap<String, String> {
    let mut args = BTreeMap::new();
    args.insert("detail".into(), e.detail.clone());
    args.insert("id".into(), e.id.to_string());
    args.insert("parent".into(), e.parent.to_string());
    args.insert("root".into(), e.root.to_string());
    args.insert("failed".into(), e.failed.to_string());
    args
}

/// Convert a batch of events to the Chrome trace object form.
pub fn chrome_trace(
    events: &[SpanEvent],
    thread_names: &BTreeMap<u32, String>,
    process_name: &str,
) -> ChromeTrace {
    let mut out = Vec::with_capacity(events.len() + thread_names.len() + 1);
    let mut meta = |name: &str, tid: u64, value: &str| {
        let mut args = BTreeMap::new();
        args.insert("name".into(), value.to_string());
        out.push(ChromeEvent {
            name: name.into(),
            cat: "__metadata".into(),
            ph: "M".into(),
            ts: 0,
            dur: 0,
            pid: PID,
            tid,
            args,
        });
    };
    meta("process_name", 0, process_name);
    let used: std::collections::BTreeSet<u32> = events.iter().map(|e| e.thread).collect();
    for (tid, tname) in thread_names {
        if used.contains(tid) {
            meta("thread_name", u64::from(*tid), tname);
        }
    }
    for e in events {
        let (ph, dur) = match e.kind {
            EventKind::Span => ("X", e.duration_us()),
            EventKind::Instant => ("i", 0),
        };
        let name = if e.failed {
            format!("{} (failed)", e.name)
        } else {
            e.name.clone()
        };
        out.push(ChromeEvent {
            name,
            cat: CATEGORY.into(),
            ph: ph.into(),
            ts: e.start_us,
            dur,
            pid: PID,
            tid: u64::from(e.thread),
            args: span_args(e),
        });
    }
    ChromeTrace { traceEvents: out }
}

/// Render a batch of events straight to Chrome trace JSON.
pub fn chrome_trace_json(
    events: &[SpanEvent],
    thread_names: &BTreeMap<u32, String>,
    process_name: &str,
) -> String {
    serde_json::to_string(&chrome_trace(events, thread_names, process_name))
        .expect("chrome trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_events() -> (Vec<SpanEvent>, BTreeMap<u32, String>) {
        let tracer = Tracer::new();
        tracer.enable();
        {
            let mut outer = tracer.span("job");
            outer.set_detail("action=collect");
            {
                let mut task = tracer.span("task");
                task.set_detail("part=0 attempt=0");
                tracer.instant("cache_hit", "shuffle");
                task.fail();
            }
        }
        (tracer.drain(), tracer.thread_names())
    }

    #[test]
    fn exported_trace_round_trips_through_typed_parse() {
        let (events, names) = sample_events();
        let json = chrome_trace_json(&events, &names, "test-proc");
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, chrome_trace(&events, &names, "test-proc"));
        // 3 span/instant events + process_name + one thread_name.
        assert_eq!(back.traceEvents.len(), 5);
        let spans: Vec<_> = back.traceEvents.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 2);
        let failed = spans.iter().find(|e| e.name == "task (failed)").unwrap();
        assert_eq!(failed.args["failed"], "true");
        assert_eq!(failed.args["detail"], "part=0 attempt=0");
        let instants: Vec<_> = back.traceEvents.iter().filter(|e| e.ph == "i").collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].dur, 0);
    }

    #[test]
    fn metadata_names_process_and_threads() {
        let (events, names) = sample_events();
        let trace = chrome_trace(&events, &names, "sjserve");
        let metas: Vec<_> = trace.traceEvents.iter().filter(|e| e.ph == "M").collect();
        assert!(metas
            .iter()
            .any(|m| m.name == "process_name" && m.args["name"] == "sjserve"));
        assert!(metas.iter().any(|m| m.name == "thread_name"));
    }

    #[test]
    fn parent_and_root_ids_survive_export() {
        let (events, names) = sample_events();
        let json = chrome_trace_json(&events, &names, "p");
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        let job = back
            .traceEvents
            .iter()
            .find(|e| e.name == "job" && e.ph == "X")
            .unwrap();
        let task = back
            .traceEvents
            .iter()
            .find(|e| e.name.starts_with("task"))
            .unwrap();
        assert_eq!(task.args["parent"], job.args["id"]);
        assert_eq!(task.args["root"], job.args["id"]);
    }
}
