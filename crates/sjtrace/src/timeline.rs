//! Compact per-query text timeline.
//!
//! Renders a batch of events as an indented tree, one line per span,
//! with millisecond offsets relative to the earliest event. This is the
//! human-readable summary returned over the sjserve protocol and printed
//! by `sjq --trace`; the Chrome export ([`crate::export`]) is the
//! machine-loadable counterpart.

use crate::{EventKind, SpanEvent, SpanId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write;

fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

fn node_line(e: &SpanEvent, t0: u64) -> String {
    let detail = if e.detail.is_empty() {
        String::new()
    } else {
        format!(" {}", e.detail)
    };
    let failed = if e.failed { " [FAILED]" } else { "" };
    match e.kind {
        EventKind::Span => format!(
            "{}{detail}{failed}  [{:.3}ms +{:.3}ms]",
            e.name,
            ms(e.start_us.saturating_sub(t0)),
            ms(e.duration_us()),
        ),
        EventKind::Instant => format!(
            "* {}{detail}{failed}  [@{:.3}ms]",
            e.name,
            ms(e.start_us.saturating_sub(t0)),
        ),
    }
}

fn write_node(
    out: &mut String,
    e: &SpanEvent,
    children: &BTreeMap<SpanId, Vec<&SpanEvent>>,
    t0: u64,
    prefix: &str,
    connector: &str,
    child_prefix: &str,
) {
    let _ = writeln!(out, "{prefix}{connector}{}", node_line(e, t0));
    if let Some(kids) = children.get(&e.id) {
        let next_prefix = format!("{prefix}{child_prefix}");
        for (i, kid) in kids.iter().enumerate() {
            let last = i + 1 == kids.len();
            write_node(
                out,
                kid,
                children,
                t0,
                &next_prefix,
                if last { "`- " } else { "|- " },
                if last { "   " } else { "|  " },
            );
        }
    }
}

/// Render events (typically one request's tree) as a text timeline.
pub fn render(events: &[SpanEvent]) -> String {
    if events.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.start_us, e.id));
    let t0 = sorted.iter().map(|e| e.start_us).min().unwrap_or(0);
    let t1 = sorted.iter().map(|e| e.end_us).max().unwrap_or(t0);
    let ids: BTreeSet<SpanId> = sorted.iter().map(|e| e.id).collect();
    let mut children: BTreeMap<SpanId, Vec<&SpanEvent>> = BTreeMap::new();
    let mut roots: Vec<&SpanEvent> = Vec::new();
    for e in &sorted {
        if e.parent != 0 && ids.contains(&e.parent) {
            children.entry(e.parent).or_default().push(e);
        } else {
            roots.push(e);
        }
    }
    let spans = sorted.iter().filter(|e| e.kind == EventKind::Span).count();
    let failed = sorted.iter().filter(|e| e.failed).count();
    let mut out = format!(
        "trace: {} events ({} spans, {} failed), {:.3}ms total\n",
        sorted.len(),
        spans,
        failed,
        ms(t1.saturating_sub(t0)),
    );
    for root in roots {
        write_node(&mut out, root, &children, t0, "", "", "   ");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn renders_a_nested_tree_with_offsets() {
        let tracer = Tracer::new();
        tracer.enable();
        {
            let mut job = tracer.span("job");
            job.set_detail("action=collect");
            {
                let _wave = tracer.span("wave");
                {
                    let mut task = tracer.span("task");
                    task.set_detail("part=0 attempt=1");
                    task.fail();
                }
                tracer.instant("retry", "part=0");
            }
        }
        let text = render(&tracer.drain());
        assert!(text.contains("job action=collect"), "{text}");
        assert!(text.contains("task part=0 attempt=1 [FAILED]"), "{text}");
        assert!(text.contains("* retry part=0"), "{text}");
        assert!(text.contains("|- ") || text.contains("`- "), "{text}");
        // Header counts 4 events, 3 spans, 1 failed.
        assert!(
            text.starts_with("trace: 4 events (3 spans, 1 failed)"),
            "{text}"
        );
    }

    #[test]
    fn empty_batch_renders_placeholder() {
        assert_eq!(render(&[]), "(no spans recorded)\n");
    }

    #[test]
    fn orphans_render_as_roots() {
        let tracer = Tracer::new();
        tracer.enable();
        // Parent id 999 is not in the batch.
        let _g = tracer.child_span("orphan", 999, 999);
        drop(_g);
        let text = render(&tracer.drain());
        assert!(text.contains("orphan"), "{text}");
    }
}
