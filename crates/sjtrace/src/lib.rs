//! Low-overhead structured span tracing for ScrubJay.
//!
//! A [`Tracer`] is a cheaply clonable handle to a sharded in-memory span
//! sink. Instrumentation sites open a [`SpanGuard`] (closed on drop, even
//! during unwinding) or record a zero-duration instant event; every event
//! carries a monotonic microsecond timestamp, a parent span id, and the id
//! of the root span of its tree, so the events for one request can be
//! extracted from a shared sink ([`Tracer::take_root`]) even while other
//! requests are tracing concurrently.
//!
//! The design goals, in priority order:
//!
//! 1. **Zero cost when disabled.** Every entry point checks one relaxed
//!    atomic load and returns a no-op guard; callers are expected to guard
//!    any `format!` detail work behind [`SpanGuard::is_recording`] or
//!    [`Tracer::enabled`].
//! 2. **Panic safety.** A guard dropped during unwinding records its span
//!    as `failed`, so a killed task attempt still produces a well-formed,
//!    closed span.
//! 3. **Bounded memory.** The sink is a fixed number of mutex-protected
//!    shards (selected by thread id, so contention is rare) with a total
//!    capacity; once full, new events are dropped and counted rather than
//!    growing without bound.
//!
//! Exporters live in [`export`] (Chrome trace-event JSON, loadable in
//! Perfetto or `chrome://tracing`) and [`timeline`] (a compact text tree).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod timeline;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of one span within one [`Tracer`]. Id `0` is reserved to
/// mean "no parent".
pub type SpanId = u64;

/// Whether an event is a duration span or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A duration event with distinct start and end.
    Span,
    /// A zero-duration marker (`start_us == end_us`).
    Instant,
}

/// One recorded event: a closed span or an instant marker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Unique id within the tracer (allocated from 1).
    pub id: SpanId,
    /// Parent span id, or `0` for a tree root.
    pub parent: SpanId,
    /// Id of the root span of this event's tree (`== id` for roots).
    pub root: SpanId,
    /// Static site name, e.g. `"wave"` or `"task"`.
    pub name: String,
    /// Free-form detail, e.g. `"part=3 attempt=1"`.
    pub detail: String,
    /// Process-global id of the recording thread.
    pub thread: u32,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// End, microseconds since the tracer's epoch (equal to `start_us`
    /// for instants).
    pub end_us: u64,
    /// Duration span or instant marker.
    pub kind: EventKind,
    /// The guarded work panicked, was injected with a fault, or was
    /// explicitly marked failed.
    pub failed: bool,
    /// The span is allowed to outlive its parent's recorded interval
    /// (e.g. a speculative task attempt that loses the race and finishes
    /// after its wave has already settled).
    pub detached: bool,
}

impl SpanEvent {
    /// Duration in microseconds (zero for instants).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Default total sink capacity, in events, across all shards.
pub const DEFAULT_CAPACITY: usize = 65_536;

const SHARDS: usize = 16;

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_ID: Cell<u32> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

#[derive(Clone, Copy)]
struct StackEntry {
    tracer: u64,
    span: SpanId,
    root: SpanId,
}

/// Process-global id of the calling thread (assigned on first use).
fn thread_id() -> u32 {
    THREAD_ID.with(|id| {
        let v = id.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        id.set(v);
        v
    })
}

struct TracerInner {
    id: u64,
    enabled: AtomicBool,
    epoch: Instant,
    next_span: AtomicU64,
    shards: Vec<Mutex<Vec<SpanEvent>>>,
    shard_capacity: usize,
    dropped: AtomicU64,
    threads: Mutex<BTreeMap<u32, String>>,
}

/// A cheaply clonable handle to a shared span sink. All clones observe
/// the same enabled flag, event buffer, and id counter.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A disabled tracer with the default sink capacity.
    pub fn new() -> Self {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// A disabled tracer holding at most `capacity` events; further
    /// events are dropped (see [`Tracer::dropped`]).
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARDS).max(1);
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                enabled: AtomicBool::new(false),
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                shard_capacity,
                dropped: AtomicU64::new(0),
                threads: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Start recording. Affects every clone of this tracer.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-open guards still record on drop).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// Whether the tracer is recording. One relaxed atomic load — this is
    /// the entire cost of a disabled instrumentation site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Microseconds since this tracer was created (its timestamp epoch).
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Open a span parented to the calling thread's innermost open span
    /// of this tracer (a new root if there is none).
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard::disabled();
        }
        let start = self.now_us();
        self.open(name, start, None)
    }

    /// Open a span whose start is backdated to `start_us` (stack
    /// parenting, like [`Tracer::span`]). Used for intervals that began
    /// before the tracing code ran, e.g. time spent in an admission queue.
    pub fn span_at(&self, name: &'static str, start_us: u64) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard::disabled();
        }
        self.open(name, start_us, None)
    }

    /// Open a span with an explicit parent and root, for work that runs
    /// on a different thread than the span it belongs under (e.g. a task
    /// attempt on a pool thread, under a wave span opened by the caller).
    pub fn child_span(&self, name: &'static str, parent: SpanId, root: SpanId) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard::disabled();
        }
        let start = self.now_us();
        self.open(name, start, Some((parent, root)))
    }

    fn open(
        &self,
        name: &'static str,
        start_us: u64,
        explicit: Option<(SpanId, SpanId)>,
    ) -> SpanGuard {
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let (parent, root) = match explicit {
            Some(pr) => pr,
            None => self.current().unwrap_or((0, 0)),
        };
        let root = if root == 0 { id } else { root };
        SPAN_STACK.with(|s| {
            s.borrow_mut().push(StackEntry {
                tracer: self.inner.id,
                span: id,
                root,
            })
        });
        SpanGuard {
            tracer: Some(self.clone()),
            id,
            parent,
            root,
            name,
            detail: String::new(),
            start_us,
            failed: false,
            detached: false,
        }
    }

    /// Record an instant event parented to the calling thread's innermost
    /// open span of this tracer.
    pub fn instant(&self, name: &'static str, detail: impl Into<String>) {
        if !self.enabled() {
            return;
        }
        let now = self.now_us();
        let (parent, root) = self.current().unwrap_or((0, 0));
        self.record(RecordedSpan {
            name,
            detail: detail.into(),
            parent,
            root,
            start_us: now,
            end_us: now,
            failed: false,
            kind: EventKind::Instant,
        });
    }

    /// Record an instant event with an explicit parent and root (for
    /// cross-thread sites; see [`Tracer::child_span`]).
    pub fn instant_under(
        &self,
        name: &'static str,
        detail: impl Into<String>,
        parent: SpanId,
        root: SpanId,
    ) {
        if !self.enabled() {
            return;
        }
        let now = self.now_us();
        self.record(RecordedSpan {
            name,
            detail: detail.into(),
            parent,
            root,
            start_us: now,
            end_us: now,
            failed: false,
            kind: EventKind::Instant,
        });
    }

    /// Record a fully retroactive span (both endpoints in the past).
    pub fn record_span(&self, span: RecordedSpan) {
        if !self.enabled() {
            return;
        }
        self.record(span);
    }

    fn record(&self, span: RecordedSpan) {
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let root = if span.root == 0 { id } else { span.root };
        self.push(SpanEvent {
            id,
            parent: span.parent,
            root,
            name: span.name.to_string(),
            detail: span.detail,
            thread: thread_id(),
            start_us: span.start_us,
            end_us: span.end_us.max(span.start_us),
            kind: span.kind,
            failed: span.failed,
            detached: false,
        });
    }

    fn push(&self, event: SpanEvent) {
        self.register_thread(event.thread);
        let shard = &self.inner.shards[event.thread as usize % SHARDS];
        let mut buf = shard.lock();
        if buf.len() >= self.inner.shard_capacity {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(event);
        }
    }

    fn register_thread(&self, tid: u32) {
        let mut threads = self.inner.threads.lock();
        threads.entry(tid).or_insert_with(|| {
            std::thread::current()
                .name()
                .map(String::from)
                .unwrap_or_else(|| format!("thread-{tid}"))
        });
    }

    /// The calling thread's innermost open `(span, root)` of this tracer.
    pub fn current(&self) -> Option<(SpanId, SpanId)> {
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|e| e.tracer == self.inner.id)
                .map(|e| (e.span, e.root))
        })
    }

    fn close(&self, guard: &mut SpanGuard) {
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|e| e.tracer == self.inner.id && e.span == guard.id)
            {
                stack.remove(pos);
            }
        });
        let failed = guard.failed || std::thread::panicking();
        self.push(SpanEvent {
            id: guard.id,
            parent: guard.parent,
            root: guard.root,
            name: guard.name.to_string(),
            detail: std::mem::take(&mut guard.detail),
            thread: thread_id(),
            start_us: guard.start_us,
            end_us: self.now_us().max(guard.start_us),
            kind: EventKind::Span,
            failed,
            detached: guard.detached,
        });
    }

    /// Copy out every recorded event, sorted by `(start_us, id)`.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.extend(shard.lock().iter().cloned());
        }
        out.sort_by_key(|e| (e.start_us, e.id));
        out
    }

    /// Remove and return every recorded event, sorted by `(start_us, id)`.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.append(&mut shard.lock());
        }
        out.sort_by_key(|e| (e.start_us, e.id));
        out
    }

    /// Remove and return the events of one tree (all events whose `root`
    /// matches), sorted by `(start_us, id)`. Events of other roots stay
    /// in the sink, so concurrent requests can each extract their own
    /// trace from a shared tracer.
    pub fn take_root(&self, root: SpanId) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            let mut buf = shard.lock();
            let mut i = 0;
            while i < buf.len() {
                if buf[i].root == root {
                    out.push(buf.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        out.sort_by_key(|e| (e.start_us, e.id));
        out
    }

    /// Drop recorded events that started before `cutoff_us`, returning
    /// how many were removed. Long-running services call this after
    /// extracting a trace so stragglers from abandoned trees cannot fill
    /// the sink.
    pub fn prune_before(&self, cutoff_us: u64) -> usize {
        let mut removed = 0;
        for shard in &self.inner.shards {
            let mut buf = shard.lock();
            let before = buf.len();
            buf.retain(|e| e.start_us >= cutoff_us);
            removed += before - buf.len();
        }
        removed
    }

    /// Discard every recorded event and reset the dropped counter.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
        self.inner.dropped.store(0, Ordering::Relaxed);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events dropped because the sink was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Names of every thread that has recorded an event, by thread id.
    pub fn thread_names(&self) -> BTreeMap<u32, String> {
        self.inner.threads.lock().clone()
    }
}

/// Inputs for [`Tracer::record_span`]: a retroactive span whose both
/// endpoints are already known.
#[derive(Debug, Clone)]
pub struct RecordedSpan {
    /// Static site name.
    pub name: &'static str,
    /// Free-form detail.
    pub detail: String,
    /// Parent span id (`0` for a root).
    pub parent: SpanId,
    /// Root id of the tree (`0` to make this event its own root).
    pub root: SpanId,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// End, microseconds since the tracer's epoch.
    pub end_us: u64,
    /// Whether the recorded work failed.
    pub failed: bool,
    /// Duration span or instant marker.
    pub kind: EventKind,
}

/// An open span, recorded when dropped (including during unwinding, in
/// which case it is marked failed). Obtained from [`Tracer::span`] and
/// friends; a disabled tracer returns an inert guard whose methods are
/// all no-ops.
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard {
    tracer: Option<Tracer>,
    id: SpanId,
    parent: SpanId,
    root: SpanId,
    name: &'static str,
    detail: String,
    start_us: u64,
    failed: bool,
    detached: bool,
}

impl SpanGuard {
    /// An inert guard that records nothing.
    pub fn disabled() -> Self {
        SpanGuard {
            tracer: None,
            id: 0,
            parent: 0,
            root: 0,
            name: "",
            detail: String::new(),
            start_us: 0,
            failed: false,
            detached: false,
        }
    }

    /// Whether this guard will record a span (callers should gate any
    /// `format!` work for [`SpanGuard::set_detail`] on this).
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }

    /// This span's id (0 when not recording).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The root id of this span's tree (0 when not recording).
    pub fn root(&self) -> SpanId {
        self.root
    }

    /// Attach free-form detail, replacing any previous detail.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if self.tracer.is_some() {
            self.detail = detail.into();
        }
    }

    /// Mark the guarded work as failed.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Allow this span to end after its parent's recorded interval (used
    /// for speculative task attempts that may lose the race and finish
    /// after the wave settles). [`validate`] skips the containment check
    /// for detached spans.
    pub fn detach(&mut self) {
        self.detached = true;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer.take() {
            tracer.close(self);
        }
    }
}

/// Check the structural invariants of one batch of events (typically a
/// full [`Tracer::drain`] or one [`Tracer::take_root`] tree): unique ids,
/// `end >= start`, parentless events are their own roots, and every event
/// whose parent is present in the batch starts within the parent's
/// interval, ends within it (unless detached), and agrees on the root id.
pub fn validate(events: &[SpanEvent]) -> Result<(), String> {
    let mut by_id: BTreeMap<SpanId, &SpanEvent> = BTreeMap::new();
    for e in events {
        if e.id == 0 {
            return Err(format!("event `{}` has reserved id 0", e.name));
        }
        if by_id.insert(e.id, e).is_some() {
            return Err(format!("duplicate span id {}", e.id));
        }
    }
    for e in events {
        if e.end_us < e.start_us {
            return Err(format!(
                "span {} `{}` ends before it starts ({} < {})",
                e.id, e.name, e.end_us, e.start_us
            ));
        }
        if e.parent == 0 {
            if e.root != e.id {
                return Err(format!(
                    "parentless span {} `{}` has root {} (expected {})",
                    e.id, e.name, e.root, e.id
                ));
            }
            continue;
        }
        let Some(p) = by_id.get(&e.parent) else {
            // The parent may live in another batch (or have been dropped
            // at capacity); nothing to check against.
            continue;
        };
        if e.root != p.root {
            return Err(format!(
                "span {} `{}` has root {} but its parent {} has root {}",
                e.id, e.name, e.root, p.id, p.root
            ));
        }
        if e.start_us < p.start_us {
            return Err(format!(
                "span {} `{}` starts at {} before its parent {} `{}` at {}",
                e.id, e.name, e.start_us, p.id, p.name, p.start_us
            ));
        }
        if !e.detached && e.end_us > p.end_us {
            return Err(format!(
                "span {} `{}` ends at {} after its parent {} `{}` at {}",
                e.id, e.name, e.end_us, p.id, p.name, p.end_us
            ));
        }
    }
    Ok(())
}

/// Splice a span tree recorded by **another process** (the guest, e.g. a
/// worker answering a routed query) under span `attach_to` of the host
/// batch, producing one tree that passes [`validate`].
///
/// The two batches come from different [`Tracer`]s, so nothing lines up:
/// ids may collide and timestamps count from different epochs. Grafting
/// therefore
///
/// - rebases every guest id above the host's maximum id (parent links
///   inside the guest are rebased consistently),
/// - re-parents guest roots under `attach_to` and rewrites every guest
///   event's `root` to the host tree's root,
/// - shifts guest timestamps so the guest's earliest event starts exactly
///   when `attach_to` started (the network call that carried it), and
/// - marks former guest roots `detached`, since clock skew between the
///   two processes can make the guest appear to outlive the call span.
///
/// Relative timing *within* the guest batch is preserved exactly; only
/// its placement on the host timeline is approximate (we know the guest
/// worked sometime inside the call, not precisely when).
pub fn graft(
    host: &mut Vec<SpanEvent>,
    attach_to: SpanId,
    guest: &[SpanEvent],
) -> Result<(), String> {
    if guest.is_empty() {
        return Ok(());
    }
    let attach = host
        .iter()
        .find(|e| e.id == attach_to)
        .ok_or_else(|| format!("graft target span {attach_to} not present in host batch"))?;
    let attach_start = attach.start_us;
    let host_root = attach.root;
    let id_base = host.iter().map(|e| e.id).max().unwrap_or(0);
    let guest_min = guest.iter().map(|e| e.start_us).min().unwrap_or(0);
    for event in guest {
        let mut e = event.clone();
        e.id += id_base;
        if e.parent == 0 {
            e.parent = attach_to;
            e.detached = true;
        } else {
            e.parent += id_base;
        }
        e.root = host_root;
        e.start_us = attach_start + (e.start_us - guest_min);
        e.end_us = attach_start + (e.end_us - guest_min);
        host.push(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new();
        assert!(!tracer.enabled());
        let mut span = tracer.span("outer");
        assert!(!span.is_recording());
        assert_eq!(span.id(), 0);
        span.set_detail("ignored");
        span.fail();
        tracer.instant("marker", "x");
        drop(span);
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn spans_nest_on_the_thread_stack() {
        let tracer = Tracer::new();
        tracer.enable();
        {
            let outer = tracer.span("outer");
            assert_eq!(tracer.current(), Some((outer.id(), outer.root())));
            {
                let inner = tracer.span("inner");
                assert_eq!(inner.root(), outer.id());
                tracer.instant("marker", "detail");
            }
            assert_eq!(tracer.current(), Some((outer.id(), outer.root())));
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 3);
        validate(&events).unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let marker = events.iter().find(|e| e.name == "marker").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.root, outer.id);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.root, outer.id);
        assert_eq!(marker.parent, inner.id);
        assert_eq!(marker.kind, EventKind::Instant);
        assert_eq!(marker.detail, "detail");
    }

    #[test]
    fn explicit_parents_cross_threads() {
        let tracer = Tracer::new();
        tracer.enable();
        let parent = tracer.span("wave");
        let (pid, proot) = (parent.id(), parent.root());
        let t = {
            let tracer = tracer.clone();
            std::thread::spawn(move || {
                let mut task = tracer.child_span("task", pid, proot);
                task.set_detail("part=0");
                tracer.instant("retry", "attempt=1");
            })
        };
        t.join().unwrap();
        drop(parent);
        let events = tracer.drain();
        validate(&events).unwrap();
        let task = events.iter().find(|e| e.name == "task").unwrap();
        let retry = events.iter().find(|e| e.name == "retry").unwrap();
        assert_eq!(task.parent, pid);
        assert_eq!(task.root, proot);
        // The instant was stack-parented to the task span on its thread.
        assert_eq!(retry.parent, task.id);
        assert_eq!(retry.root, proot);
    }

    #[test]
    fn panicking_work_closes_its_span_as_failed() {
        let tracer = Tracer::new();
        tracer.enable();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = tracer.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        assert!(events[0].failed, "unwound span must be marked failed");
        assert_eq!(events[0].kind, EventKind::Span);
        // The stack entry was popped during unwinding.
        assert_eq!(tracer.current(), None);
    }

    #[test]
    fn capacity_overflow_drops_and_counts() {
        let tracer = Tracer::with_capacity(16);
        tracer.enable();
        for i in 0..100 {
            tracer.instant("e", format!("{i}"));
        }
        assert!(tracer.len() <= 16);
        assert!(tracer.dropped() >= 84);
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn take_root_extracts_one_tree_only() {
        let tracer = Tracer::new();
        tracer.enable();
        let a = tracer.span("a");
        let a_root = a.root();
        drop(a);
        let b = tracer.span("b");
        let b_root = b.root();
        tracer.instant("b_marker", "");
        drop(b);
        let got = tracer.take_root(b_root);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.root == b_root));
        let rest = tracer.drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].root, a_root);
    }

    #[test]
    fn retroactive_spans_and_prune() {
        let tracer = Tracer::new();
        tracer.enable();
        tracer.record_span(RecordedSpan {
            name: "queue_wait",
            detail: "tenant=t".into(),
            parent: 0,
            root: 0,
            start_us: 5,
            end_us: 40,
            failed: false,
            kind: EventKind::Span,
        });
        let events = tracer.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start_us, 5);
        assert_eq!(events[0].end_us, 40);
        assert_eq!(events[0].root, events[0].id);
        assert_eq!(tracer.prune_before(u64::MAX), 1);
        assert!(tracer.is_empty());
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let mk = |id, parent, root, start, end| SpanEvent {
            id,
            parent,
            root,
            name: "s".into(),
            detail: String::new(),
            thread: 1,
            start_us: start,
            end_us: end,
            kind: EventKind::Span,
            failed: false,
            detached: false,
        };
        // end < start
        assert!(validate(&[mk(1, 0, 1, 10, 5)]).is_err());
        // child escapes its parent's interval
        assert!(validate(&[mk(1, 0, 1, 0, 100), mk(2, 1, 1, 50, 150)]).is_err());
        // root mismatch between child and parent
        assert!(validate(&[mk(1, 0, 1, 0, 100), mk(2, 1, 7, 10, 20)]).is_err());
        // detached child may end late
        let mut detached = mk(2, 1, 1, 50, 150);
        detached.detached = true;
        validate(&[mk(1, 0, 1, 0, 100), detached]).unwrap();
        // well-formed
        validate(&[mk(1, 0, 1, 0, 100), mk(2, 1, 1, 10, 90)]).unwrap();
    }

    #[test]
    fn nested_tracers_do_not_cross_parent() {
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        t1.enable();
        t2.enable();
        let a = t1.span("t1_outer");
        let b = t2.span("t2_root");
        assert_eq!(t2.current(), Some((b.id(), b.root())));
        drop(b);
        drop(a);
        let e2 = t2.drain();
        assert_eq!(e2[0].parent, 0, "t2's span must not parent under t1's");
    }

    fn event(id: SpanId, parent: SpanId, root: SpanId, start: u64, end: u64) -> SpanEvent {
        SpanEvent {
            id,
            parent,
            root,
            name: "span".into(),
            detail: String::new(),
            thread: 1,
            start_us: start,
            end_us: end,
            kind: EventKind::Span,
            failed: false,
            detached: false,
        }
    }

    #[test]
    fn graft_produces_one_valid_tree() {
        // Host: a router "route" root with a "worker_call" child.
        let mut host = vec![event(1, 0, 1, 100, 900), event(2, 1, 1, 200, 800)];
        // Guest: a worker tree on a foreign timebase with colliding ids.
        let guest = vec![event(1, 0, 1, 5_000, 5_400), event(2, 1, 1, 5_050, 5_300)];
        graft(&mut host, 2, &guest).unwrap();
        assert_eq!(host.len(), 4);
        validate(&host).unwrap();
        // Guest root rebased above the host's max id, re-parented under
        // the call span, on the host root, shifted to the call start.
        let groot = host.iter().find(|e| e.id == 3).unwrap();
        assert_eq!(groot.parent, 2);
        assert_eq!(groot.root, 1);
        assert!(groot.detached);
        assert_eq!(groot.start_us, 200);
        assert_eq!(groot.end_us, 600);
        // Inner guest span keeps its relative offset and parent link.
        let gchild = host.iter().find(|e| e.id == 4).unwrap();
        assert_eq!(gchild.parent, 3);
        assert_eq!(gchild.root, 1);
        assert_eq!(gchild.start_us, 250);
    }

    #[test]
    fn graft_multiple_guests_under_sibling_calls() {
        let mut host = vec![
            event(1, 0, 1, 0, 1_000),
            event(2, 1, 1, 10, 500),
            event(3, 1, 1, 20, 600),
        ];
        graft(&mut host, 2, &[event(7, 0, 7, 100, 200)]).unwrap();
        graft(&mut host, 3, &[event(7, 0, 7, 300, 450)]).unwrap();
        validate(&host).unwrap();
        assert_eq!(host.len(), 5);
        let parents: Vec<SpanId> = host.iter().skip(3).map(|e| e.parent).collect();
        assert_eq!(parents, vec![2, 3]);
    }

    #[test]
    fn graft_rejects_missing_target_and_tolerates_empty_guest() {
        let mut host = vec![event(1, 0, 1, 0, 10)];
        assert!(graft(&mut host, 99, &[event(1, 0, 1, 0, 5)]).is_err());
        graft(&mut host, 1, &[]).unwrap();
        assert_eq!(host.len(), 1);
    }

    #[test]
    fn thread_names_are_registered() {
        let tracer = Tracer::new();
        tracer.enable();
        let t = {
            let tracer = tracer.clone();
            std::thread::Builder::new()
                .name("sjdf-worker-9".into())
                .spawn(move || tracer.instant("tick", ""))
                .unwrap()
        };
        t.join().unwrap();
        let names = tracer.thread_names();
        assert!(names.values().any(|n| n == "sjdf-worker-9"), "{names:?}");
    }
}
