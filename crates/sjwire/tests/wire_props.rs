//! Property tests for the wire codec: every message type round-trips
//! bit-exactly (including NaN/∞ floats, empty and dict-heavy string
//! lanes), and corrupt/truncated/oversized frames are rejected without
//! panicking — the daemon-side guarantee that a bad peer cannot wedge
//! a connection handler.

use proptest::prelude::*;
use sjcore::units::time::{TimeSpan, Timestamp};
use sjcore::{ColumnarPartition, Row, Value};
use sjwire::codec::{
    decode_partition, decode_rows, decode_str_rows, decode_value, encode_partition, encode_rows,
    encode_str_rows, encode_value, Reader,
};
use sjwire::{read_frame, write_frame, MsgType};

/// Deterministically expand one (tag, bits) pair into a Value. The
/// whole u64 feeds float bits, so NaN payloads, ±∞, and -0.0 all occur.
fn value_from(tag: u8, bits: u64) -> Value {
    match tag % 8 {
        0 => Value::Null,
        1 => Value::Bool(bits & 1 == 1),
        2 => Value::Int(bits as i64),
        3 => Value::Float(f64::from_bits(bits)),
        4 => Value::str(format!("node-{}", bits % 7)), // small dict: heavy reuse
        5 => Value::Time(Timestamp::from_micros(bits as i64 % 1_000_000_000)),
        6 => Value::Span(TimeSpan::new(
            Timestamp::from_micros((bits % 1_000_000) as i64),
            Timestamp::from_micros((bits % 1_000_000) as i64 + (bits >> 32) as i64 % 1_000),
        )),
        _ => Value::List(
            (0..bits % 4)
                .map(|i| value_from((bits >> (8 * i)) as u8 % 7, bits.rotate_left(i as u32 * 13)))
                .collect(),
        ),
    }
}

/// Bit-exact value equality (PartialEq on f64 fails for NaN).
fn bit_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| bit_eq(p, q))
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tagged values round-trip bit-exactly, lists and NaN included.
    #[test]
    fn values_round_trip(cells in prop::collection::vec((any::<u8>(), any::<u64>()), 0..64)) {
        let values: Vec<Value> = cells.iter().map(|&(t, b)| value_from(t, b)).collect();
        let mut buf = Vec::new();
        for v in &values {
            encode_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let back = decode_value(&mut r).unwrap();
            prop_assert!(bit_eq(&back, v), "{back:?} != {v:?}");
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Rectangular row batches ship as partition lanes and round-trip.
    #[test]
    fn row_batches_round_trip(
        nrows in 0usize..40,
        ncols in 0usize..6,
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 0..240),
    ) {
        let rows: Vec<Row> = (0..nrows)
            .map(|i| {
                Row::new(
                    (0..ncols)
                        .map(|j| {
                            let (t, b) = seeds
                                .get((i * ncols + j) % seeds.len().max(1))
                                .copied()
                                .unwrap_or((0, 0));
                            // Same tag per column keeps typed lanes in play;
                            // xor keeps cell values distinct.
                            value_from(t.wrapping_add(j as u8), b ^ (i as u64) << 7)
                        })
                        .collect(),
                )
            })
            .collect();
        let buf = encode_rows(&rows);
        let back = decode_rows(&mut Reader::new(&buf)).unwrap();
        prop_assert_eq!(back.len(), rows.len());
        for (a, b) in back.iter().zip(&rows) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.values().iter().zip(b.values()) {
                prop_assert!(bit_eq(x, y), "{x:?} != {y:?}");
            }
        }
    }

    /// Partition lanes round-trip with validity bitmaps intact.
    #[test]
    fn partitions_round_trip(
        nrows in 1usize..50,
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..64),
    ) {
        let rows: Vec<Row> = (0..nrows)
            .map(|i| {
                Row::new(
                    seeds
                        .iter()
                        .take(4)
                        .enumerate()
                        .map(|(j, &(t, b))| {
                            if (b >> (i % 60)) & 1 == 1 {
                                Value::Null // exercises the validity bitmap
                            } else {
                                value_from(t.wrapping_mul(j as u8 + 1), b ^ i as u64)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let part = ColumnarPartition::from_rows(&rows);
        let buf = encode_partition(&part);
        let back = decode_partition(&mut Reader::new(&buf)).unwrap();
        prop_assert_eq!(back.len(), part.len());
        prop_assert_eq!(back.num_columns(), part.num_columns());
        for (a, b) in back.to_rows().iter().zip(&rows) {
            for (x, y) in a.values().iter().zip(b.values()) {
                prop_assert!(bit_eq(x, y), "{x:?} != {y:?}");
            }
        }
    }

    /// Rendered string rows round-trip, from empty to dict-heavy.
    #[test]
    fn str_rows_round_trip(
        nrows in 0usize..60,
        ncols in 0usize..8,
        dict_size in 1u64..12,
        seed in any::<u64>(),
    ) {
        let rows: Vec<Vec<String>> = (0..nrows)
            .map(|i| {
                (0..ncols)
                    .map(|j| {
                        let x = seed.wrapping_mul(i as u64 + 1).wrapping_add(j as u64);
                        format!("cell-{}", x % dict_size)
                    })
                    .collect()
            })
            .collect();
        let buf = encode_str_rows(&rows);
        let back = decode_str_rows(&mut Reader::new(&buf)).unwrap();
        prop_assert_eq!(back, rows);
    }

    /// Frames round-trip over every message type; any single-byte
    /// corruption or truncation is rejected, never mis-decoded.
    #[test]
    fn frames_reject_corruption(
        type_sel in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
        victim in any::<u16>(),
        flip in 1u8..255,
    ) {
        let msg_type = MsgType::from_u8(type_sel % 5 + 1).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, msg_type, &payload).unwrap();
        let f = read_frame(&mut &buf[..]).unwrap();
        prop_assert_eq!(f.msg_type, msg_type);
        prop_assert_eq!(&f.payload, &payload);

        let mut corrupt = buf.clone();
        let at = victim as usize % corrupt.len();
        corrupt[at] ^= flip;
        prop_assert!(read_frame(&mut &corrupt[..]).is_err(), "flip at {at} decoded");

        let cut = victim as usize % buf.len();
        match read_frame(&mut &buf[..cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncation at {cut} decoded"),
        }
    }

    /// Arbitrary garbage prefixes never panic the decoders (daemon-side
    /// robustness: network bytes are untrusted).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_frame(&mut &bytes[..]);
        let _ = decode_rows(&mut Reader::new(&bytes));
        let _ = decode_partition(&mut Reader::new(&bytes));
        let _ = decode_str_rows(&mut Reader::new(&bytes));
        let _ = decode_value(&mut Reader::new(&bytes));
    }
}
