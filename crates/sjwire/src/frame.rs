//! Length-prefixed, CRC-checked frames.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   MAGIC (0x53, 'S') — must differ from '{' (0x7B) so the
//!            accept path can sniff JSON-lines vs binary on byte one
//! offset 1   message type (u8, see MsgType)
//! offset 2   flags (u16, reserved, 0)
//! offset 4   payload length (u32)
//! offset 8   payload bytes
//! offset 8+n CRC-32 (u32) over bytes [0, 8+n) — header included, so a
//!            corrupted length field fails the check too
//! ```
//!
//! A frame longer than [`MAX_FRAME_BYTES`] is rejected before any
//! allocation ([`WireError::Oversized`]); a short read is
//! [`WireError::Truncated`]; a checksum mismatch is
//! [`WireError::BadCrc`]. None of these panic or wedge the reader —
//! the server answers with a structured error and drops the
//! connection, which is the only safe resync point once framing is
//! suspect.

use std::io::{self, Read, Write};

use crate::crc::{crc32, Crc32};

/// First byte of every binary frame. Anything that is not `{` would
/// do; `S` (for ScrubJay) reads nicely in hex dumps.
pub const MAGIC: u8 = 0x53;

/// Version of the binary protocol spoken by this build. JSON-lines is
/// protocol v1; the framed binary transport starts at 2.
pub const WIRE_VERSION: u32 = 2;

/// Hard ceiling on one frame's payload. Large enough for any real
/// response (the service truncates results at its row limit), small
/// enough that a corrupted or malicious length field cannot OOM the
/// daemon.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Client's opening move: version/feature/codec offer (JSON payload).
    Hello = 1,
    /// Server's negotiated reply to a Hello (JSON payload).
    HelloAck = 2,
    /// A request envelope (+ columnar sections).
    Request = 3,
    /// The response to a request (+ columnar sections).
    Response = 4,
    /// An unsolicited pushed frame: a standing query's window emission
    /// or its teardown error. Same payload shape as `Response`; the
    /// distinct type lets a client loop tell pushes from replies.
    WindowFrame = 5,
}

impl MsgType {
    pub fn from_u8(b: u8) -> Option<MsgType> {
        match b {
            1 => Some(MsgType::Hello),
            2 => Some(MsgType::HelloAck),
            3 => Some(MsgType::Request),
            4 => Some(MsgType::Response),
            5 => Some(MsgType::WindowFrame),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub msg_type: MsgType,
    pub flags: u16,
    pub payload: Vec<u8>,
}

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Transport failure (connection reset, timeout, ...).
    Io(io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// First byte was neither `{` nor the frame magic.
    BadMagic(u8),
    /// Unknown message-type byte.
    UnknownType(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized { len: usize, max: usize },
    /// Checksum mismatch: the frame was corrupted in flight.
    BadCrc { expected: u32, found: u32 },
    /// The payload did not decode (bad envelope JSON, bad section).
    Decode(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Truncated => write!(f, "frame truncated mid-stream"),
            WireError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02X}"),
            WireError::UnknownType(b) => write!(f, "unknown frame type 0x{b:02X}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadCrc { expected, found } => {
                write!(
                    f,
                    "frame CRC mismatch: computed {expected:08X}, frame says {found:08X}"
                )
            }
            WireError::Decode(m) => write!(f, "decode: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Serialize one frame. Header, payload, and trailing CRC go out as a
/// single buffered write so frames interleave atomically under a shared
/// writer lock.
pub fn write_frame(w: &mut impl Write, msg_type: MsgType, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.push(MAGIC);
    buf.push(msg_type as u8);
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Read and verify one frame.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    if header[0] != MAGIC {
        return Err(WireError::BadMagic(header[0]));
    }
    let msg_type = MsgType::from_u8(header[1]).ok_or(WireError::UnknownType(header[1]))?;
    let flags = u16::from_le_bytes([header[2], header[3]]);
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let found = u32::from_le_bytes(trailer);
    let mut h = Crc32::new();
    h.update(&header);
    h.update(&payload);
    let expected = h.finish();
    if expected != found {
        return Err(WireError::BadCrc { expected, found });
    }
    Ok(Frame {
        msg_type,
        flags,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg_type: MsgType, payload: &[u8]) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg_type, payload).unwrap();
        read_frame(&mut &buf[..]).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for (t, p) in [
            (MsgType::Hello, &b"{}"[..]),
            (MsgType::Request, &b""[..]),
            (MsgType::Response, &[0u8, 255, 1, 2, 3][..]),
            (MsgType::WindowFrame, &vec![0xAB; 4096][..]),
        ] {
            let f = round_trip(t, p);
            assert_eq!(f.msg_type, t);
            assert_eq!(f.payload, p);
        }
    }

    #[test]
    fn corrupt_bytes_fail_the_crc() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Response, b"hello columnar world").unwrap();
        for i in 1..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            match read_frame(&mut &bad[..]) {
                Err(_) => {}
                Ok(f) => panic!("corruption at byte {i} decoded as {f:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(&mut buf, MsgType::Request, b"payload bytes").unwrap();
        for cut in 0..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = vec![MAGIC, MsgType::Request as u8, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Err(WireError::Oversized { .. }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn json_lines_first_byte_is_a_bad_magic() {
        let buf = b"{\"id\":\"1\",\"verb\":\"health\"}\n";
        match read_frame(&mut &buf[..]) {
            Err(WireError::BadMagic(0x7B)) => {}
            other => panic!("{other:?}"),
        }
    }
}
