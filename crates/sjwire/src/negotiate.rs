//! Per-connection version and feature negotiation.
//!
//! A binary client's first frame is a [`Hello`] offering its protocol
//! version, preferred payload codec, and feature set; the server
//! answers with a [`HelloAck`] pinning what the connection will
//! actually speak (the lower version, the intersection of features, the
//! offered codec if the server knows it). Hello payloads are JSON —
//! they run once per connection and being human-readable in a packet
//! capture is worth more than the nanoseconds.

use serde::{Deserialize, Serialize};

use crate::frame::WIRE_VERSION;

/// Payload codec: columnar sections for hot row payloads.
pub const CODEC_COLUMNAR: &str = "columnar";
/// Payload codec name reported for plain JSON-lines connections.
pub const CODEC_JSON_LINES: &str = "json-lines";

/// Client's opening offer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    pub wire_version: u32,
    /// Payload codec the client wants (`columnar`).
    pub codec: String,
    /// Capability strings; unknown ones are ignored by either side.
    #[serde(default)]
    pub features: Vec<String>,
}

impl Default for Hello {
    fn default() -> Self {
        Hello {
            wire_version: WIRE_VERSION,
            codec: CODEC_COLUMNAR.to_string(),
            features: vec!["stream".into()],
        }
    }
}

/// Server's pinned reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloAck {
    /// Version both sides will speak: `min(client, server)`.
    pub wire_version: u32,
    /// Codec the server will actually use for payloads.
    pub codec: String,
    #[serde(default)]
    pub features: Vec<String>,
}

/// Server-side negotiation: pin the connection's version, codec, and
/// feature set from the client's offer.
pub fn negotiate(hello: &Hello) -> HelloAck {
    let codec = if hello.codec == CODEC_COLUMNAR {
        CODEC_COLUMNAR
    } else {
        // Unknown codec: fall back to JSON payloads inside binary
        // frames — still framed and CRC-checked, just not columnar.
        CODEC_JSON_LINES
    };
    let ours = ["stream"];
    let features = hello
        .features
        .iter()
        .filter(|f| ours.contains(&f.as_str()))
        .cloned()
        .collect();
    HelloAck {
        wire_version: hello.wire_version.min(WIRE_VERSION),
        codec: codec.to_string(),
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_pins_min_version_and_known_features() {
        let ack = negotiate(&Hello {
            wire_version: 99,
            codec: CODEC_COLUMNAR.into(),
            features: vec!["stream".into(), "quantum".into()],
        });
        assert_eq!(ack.wire_version, WIRE_VERSION);
        assert_eq!(ack.codec, CODEC_COLUMNAR);
        assert_eq!(ack.features, vec!["stream".to_string()]);
    }

    #[test]
    fn unknown_codec_falls_back_to_json_payloads() {
        let ack = negotiate(&Hello {
            wire_version: 2,
            codec: "protobuf".into(),
            features: vec![],
        });
        assert_eq!(ack.codec, CODEC_JSON_LINES);
    }

    #[test]
    fn hello_round_trips_through_json() {
        let h = Hello::default();
        let back: Hello = serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
