//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320), slicing-by-8.
//!
//! Hand-rolled because the build environment is offline: no `crc32fast`.
//! Eight 256-entry tables consume the input 8 bytes per step (the
//! classic slicing-by-8 construction), which matters on the hot path:
//! every frame is CRC'd once by the writer and once by the reader, and
//! multi-hundred-kilobyte result frames would otherwise spend more time
//! in the checksum than in the payload codec. The CRC guards against
//! truncation and corruption, not adversaries.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Incremental CRC-32 hasher (for frame writers that stream header and
/// payload without concatenating them first).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32 { state: !0 }
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"scrubjay wire protocol";
        let mut h = Crc32::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let data: Vec<u8> = (0u8..=255).collect();
        let reference = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
