//! Columnar payload sections: the binary codecs for hot row payloads.
//!
//! Three codecs, composed by `sjserve::wire` into full messages:
//!
//! - **String tables** ([`encode_str_rows`]) for rendered result rows
//!   (`QueryResult::rows`, `WindowEmission::rows`, both
//!   `Vec<Vec<String>>`): either plain length-prefixed cells or a
//!   shared dict of distinct cell strings plus a `u32` code per cell,
//!   picked adaptively from a sample of the data. Either way the cells
//!   skip per-cell JSON escape/parse entirely.
//! - **Values** ([`encode_value`]): a tagged binary encoding of
//!   [`sjcore::Value`] that is *bit-exact* — float NaN payloads and
//!   ±∞ survive, which JSON cannot do (`serde_json` renders
//!   non-finite floats as `null`).
//! - **Partitions** ([`encode_partition`]): [`ColumnarPartition`]
//!   lanes shipped directly — lane tag, validity bitmap, then the
//!   typed array (`i64`s, `f64` bit patterns, dict-encoded strings,
//!   or tagged values for `Mixed`). Append batches ride this codec,
//!   so ingested rows never materialize as JSON at all.
//!
//! All integers little-endian. Every decoder is bounds-checked and
//! returns [`WireError::Decode`]/[`WireError::Truncated`] instead of
//! panicking: payloads arrive from the network.

use std::collections::HashMap;
use std::sync::Arc;

use sjcore::column::{Column, ColumnData, ColumnarPartition, Validity};
use sjcore::units::time::{TimeSpan, Timestamp};
use sjcore::{Row, Value};

use crate::frame::WireError;

/// Bounds-checked little-endian reader over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| WireError::Decode(format!("bad utf-8: {e}")))
    }

    /// Guard a count field against allocation bombs: each counted item
    /// must occupy at least `min_item_bytes` in what remains.
    fn check_count(&self, n: usize, min_item_bytes: usize) -> Result<(), WireError> {
        if n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(())
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// String tables: Vec<Vec<String>> as dict-encoded lanes.
// ---------------------------------------------------------------------------

/// [`encode_str_rows`] body format: plain length-prefixed cells.
const STRS_PLAIN: u8 = 0;
/// [`encode_str_rows`] body format: shared dict + `u32` code per cell.
const STRS_DICT: u8 = 1;

/// How many leading cells to sample when deciding plain vs dict.
const DICT_SAMPLE: usize = 1024;

/// Encode rendered rows with an adaptive body format.
///
/// Layout: `[nrows u32][ncols u32][ragged u8]` then, when ragged, one
/// `u32` length per row; then a format byte and the cells:
///
/// - [`STRS_PLAIN`]: one `u32` length per cell (row-major), then
///   `[blob_len u32]` and every cell's bytes as one contiguous UTF-8
///   blob, validated once on decode.
/// - [`STRS_DICT`]: the dict (`[count u32]` + strings) and one `u32`
///   code per cell in row-major order.
///
/// Telemetry rows repeat node names, racks, and quantized readings
/// heavily, so the dict is usually both smaller and cheaper than
/// per-cell JSON escape/parse — but a high-cardinality result (every
/// cell distinct) would pay the dict's hashing and bloat its payload
/// with codes for nothing. A sample of the leading cells picks the
/// format; a misprediction costs bytes, never correctness.
pub fn encode_str_rows(rows: &[Vec<String>]) -> Vec<u8> {
    let mut out = Vec::new();
    let ncols = rows.first().map(Vec::len).unwrap_or(0);
    let ragged = rows.iter().any(|r| r.len() != ncols);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    out.extend_from_slice(&(ncols as u32).to_le_bytes());
    out.push(ragged as u8);
    if ragged {
        for r in rows {
            out.extend_from_slice(&(r.len() as u32).to_le_bytes());
        }
    }
    let cells = rows.iter().flatten();
    let mut sampled = 0usize;
    let mut sample: HashMap<&str, ()> = HashMap::with_capacity(DICT_SAMPLE);
    for cell in cells.clone().take(DICT_SAMPLE) {
        sampled += 1;
        sample.insert(cell.as_str(), ());
    }
    // Dict wins when at least half the sampled cells repeat.
    if sampled > 0 && sample.len() * 2 <= sampled {
        out.push(STRS_DICT);
        let mut index: HashMap<&str, u32> = HashMap::new();
        let mut dict: Vec<&str> = Vec::new();
        let mut codes: Vec<u32> = Vec::new();
        for cell in cells {
            let code = *index.entry(cell.as_str()).or_insert_with(|| {
                dict.push(cell.as_str());
                (dict.len() - 1) as u32
            });
            codes.push(code);
        }
        out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
        for s in &dict {
            put_str(&mut out, s);
        }
        for c in &codes {
            out.extend_from_slice(&c.to_le_bytes());
        }
    } else {
        out.push(STRS_PLAIN);
        // Cell lengths first, then one contiguous UTF-8 blob: the
        // decoder validates the whole blob once and slices it, instead
        // of validating 4-byte-prefixed cells one at a time.
        let mut blob_len = 0usize;
        for cell in cells.clone() {
            out.extend_from_slice(&(cell.len() as u32).to_le_bytes());
            blob_len += cell.len();
        }
        out.extend_from_slice(&(blob_len as u32).to_le_bytes());
        out.reserve(blob_len);
        for cell in cells {
            out.extend_from_slice(cell.as_bytes());
        }
    }
    out
}

/// Decode [`encode_str_rows`].
pub fn decode_str_rows(r: &mut Reader) -> Result<Vec<Vec<String>>, WireError> {
    let nrows = r.u32()? as usize;
    let ncols = r.u32()? as usize;
    let ragged = r.u8()? != 0;
    let lens: Vec<usize> = if ragged {
        r.check_count(nrows, 4)?;
        (0..nrows)
            .map(|_| r.u32().map(|v| v as usize))
            .collect::<Result<_, _>>()?
    } else {
        r.check_count(nrows.saturating_mul(ncols), 4)?;
        vec![ncols; nrows]
    };
    let format = r.u8()?;
    match format {
        STRS_PLAIN => {
            let total = lens.iter().fold(0usize, |a, &b| a.saturating_add(b));
            r.check_count(total, 4)?;
            let mut cell_lens = Vec::with_capacity(total);
            for _ in 0..total {
                cell_lens.push(r.u32()? as usize);
            }
            let blob_len = r.u32()? as usize;
            let blob = std::str::from_utf8(r.take(blob_len)?)
                .map_err(|e| WireError::Decode(format!("bad utf-8: {e}")))?;
            let mut pos = 0usize;
            let mut next = cell_lens.into_iter();
            let mut rows = Vec::with_capacity(nrows);
            for &len in &lens {
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    let n = next.next().expect("cell_lens covers every cell");
                    let end = pos
                        .checked_add(n)
                        .ok_or_else(|| WireError::Decode("cell length overflow".into()))?;
                    let cell = blob.get(pos..end).ok_or_else(|| {
                        WireError::Decode("cell exceeds blob or splits a code point".into())
                    })?;
                    pos = end;
                    row.push(cell.to_string());
                }
                rows.push(row);
            }
            Ok(rows)
        }
        STRS_DICT => {
            let dict_len = r.u32()? as usize;
            r.check_count(dict_len, 4)?;
            let mut dict: Vec<String> = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(r.str()?.to_string());
            }
            let mut rows = Vec::with_capacity(nrows);
            for &len in &lens {
                r.check_count(len, 4)?;
                let mut row = Vec::with_capacity(len);
                for _ in 0..len {
                    let code = r.u32()? as usize;
                    let cell = dict.get(code).ok_or_else(|| {
                        WireError::Decode(format!("string code {code} out of range"))
                    })?;
                    row.push(cell.clone());
                }
                rows.push(row);
            }
            Ok(rows)
        }
        other => Err(WireError::Decode(format!(
            "unknown string-rows format {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Tagged values: bit-exact Value encoding.
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL_FALSE: u8 = 1;
const VAL_BOOL_TRUE: u8 = 2;
const VAL_INT: u8 = 3;
const VAL_FLOAT: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_TIME: u8 = 6;
const VAL_SPAN: u8 = 7;
const VAL_LIST: u8 = 8;

/// Append one value, tag byte first. Floats go out as raw bit
/// patterns: NaN payloads and infinities round-trip exactly.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(false) => out.push(VAL_BOOL_FALSE),
        Value::Bool(true) => out.push(VAL_BOOL_TRUE),
        Value::Int(i) => {
            out.push(VAL_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        Value::Time(t) => {
            out.push(VAL_TIME);
            out.extend_from_slice(&t.as_micros().to_le_bytes());
        }
        Value::Span(s) => {
            out.push(VAL_SPAN);
            out.extend_from_slice(&s.start.as_micros().to_le_bytes());
            out.extend_from_slice(&s.end.as_micros().to_le_bytes());
        }
        Value::List(items) => {
            out.push(VAL_LIST);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items.iter() {
                encode_value(out, item);
            }
        }
    }
}

/// Decode one tagged value.
pub fn decode_value(r: &mut Reader) -> Result<Value, WireError> {
    Ok(match r.u8()? {
        VAL_NULL => Value::Null,
        VAL_BOOL_FALSE => Value::Bool(false),
        VAL_BOOL_TRUE => Value::Bool(true),
        VAL_INT => Value::Int(r.i64()?),
        VAL_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        VAL_STR => Value::str(r.str()?),
        VAL_TIME => Value::Time(Timestamp::from_micros(r.i64()?)),
        VAL_SPAN => {
            let start = Timestamp::from_micros(r.i64()?);
            let end = Timestamp::from_micros(r.i64()?);
            Value::Span(TimeSpan::new(start, end))
        }
        VAL_LIST => {
            let n = r.u32()? as usize;
            r.check_count(n, 1)?;
            let items: Vec<Value> = (0..n).map(|_| decode_value(r)).collect::<Result<_, _>>()?;
            Value::List(items.into())
        }
        tag => return Err(WireError::Decode(format!("unknown value tag {tag}"))),
    })
}

// ---------------------------------------------------------------------------
// Partitions: ColumnarPartition lanes shipped directly.
// ---------------------------------------------------------------------------

const LANE_INT: u8 = 0;
const LANE_FLOAT: u8 = 1;
const LANE_TIME: u8 = 2;
const LANE_STR: u8 = 3;
const LANE_MIXED: u8 = 4;

fn encode_validity(out: &mut Vec<u8>, v: &Validity) {
    let all_valid = v.count_valid() == v.len();
    out.push(all_valid as u8);
    if all_valid {
        return;
    }
    let mut word = 0u64;
    for i in 0..v.len() {
        if v.get(i) {
            word |= 1u64 << (i % 64);
        }
        if i % 64 == 63 {
            out.extend_from_slice(&word.to_le_bytes());
            word = 0;
        }
    }
    if !v.len().is_multiple_of(64) {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

fn decode_validity(r: &mut Reader, rows: usize) -> Result<Validity, WireError> {
    if r.u8()? != 0 {
        return Ok(Validity::all_valid(rows));
    }
    let mut v = Validity::all_null(rows);
    let words = rows.div_ceil(64);
    for w in 0..words {
        let bits = r.u64()?;
        let lo = w * 64;
        let hi = (lo + 64).min(rows);
        for i in lo..hi {
            if bits >> (i - lo) & 1 == 1 {
                v.set(i, true);
            }
        }
    }
    Ok(v)
}

/// Encode a partition: `[rows u32][ncols u32]` then per column a lane
/// tag, the validity bitmap, and the lane's typed array.
pub fn encode_partition(part: &ColumnarPartition) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(part.len() as u32).to_le_bytes());
    out.extend_from_slice(&(part.num_columns() as u32).to_le_bytes());
    for col in part.columns() {
        encode_validity(&mut out, col.validity());
        match col.data() {
            ColumnData::Int(v) => {
                out.push(LANE_INT);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                out.push(LANE_FLOAT);
                for x in v {
                    out.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            ColumnData::Time(v) => {
                out.push(LANE_TIME);
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Str { codes, dict } => {
                out.push(LANE_STR);
                out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for s in dict {
                    put_str(&mut out, s);
                }
                for c in codes {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            ColumnData::Mixed(v) => {
                out.push(LANE_MIXED);
                for x in v {
                    encode_value(&mut out, x);
                }
            }
        }
    }
    out
}

/// Decode [`encode_partition`].
pub fn decode_partition(r: &mut Reader) -> Result<ColumnarPartition, WireError> {
    let rows = r.u32()? as usize;
    let ncols = r.u32()? as usize;
    r.check_count(ncols, 2)?;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let validity = decode_validity(r, rows)?;
        let data = match r.u8()? {
            LANE_INT => {
                r.check_count(rows, 8)?;
                ColumnData::Int((0..rows).map(|_| r.i64()).collect::<Result<_, _>>()?)
            }
            LANE_FLOAT => {
                r.check_count(rows, 8)?;
                ColumnData::Float(
                    (0..rows)
                        .map(|_| r.u64().map(f64::from_bits))
                        .collect::<Result<_, _>>()?,
                )
            }
            LANE_TIME => {
                r.check_count(rows, 8)?;
                ColumnData::Time((0..rows).map(|_| r.i64()).collect::<Result<_, _>>()?)
            }
            LANE_STR => {
                let dict_len = r.u32()? as usize;
                r.check_count(dict_len, 4)?;
                let mut dict: Vec<Arc<str>> = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(Arc::from(r.str()?));
                }
                r.check_count(rows, 4)?;
                let codes: Vec<u32> = (0..rows).map(|_| r.u32()).collect::<Result<_, _>>()?;
                for &c in &codes {
                    if c as usize >= dict.len().max(1) {
                        return Err(WireError::Decode(format!("dict code {c} out of range")));
                    }
                }
                ColumnData::Str { codes, dict }
            }
            LANE_MIXED => {
                r.check_count(rows, 1)?;
                ColumnData::Mixed(
                    (0..rows)
                        .map(|_| decode_value(r))
                        .collect::<Result<_, _>>()?,
                )
            }
            tag => return Err(WireError::Decode(format!("unknown lane tag {tag}"))),
        };
        if data_len(&data) != rows {
            return Err(WireError::Decode("lane length mismatch".into()));
        }
        columns.push(Column::from_parts(data, validity));
    }
    Ok(ColumnarPartition::from_columns(columns))
}

fn data_len(d: &ColumnData) -> usize {
    match d {
        ColumnData::Int(v) => v.len(),
        ColumnData::Float(v) => v.len(),
        ColumnData::Time(v) => v.len(),
        ColumnData::Str { codes, .. } => codes.len(),
        ColumnData::Mixed(v) => v.len(),
    }
}

// ---------------------------------------------------------------------------
// Row batches: the append-path payload.
// ---------------------------------------------------------------------------

/// Encode a row batch. Rectangular batches (the normal case) ship as
/// [`ColumnarPartition`] lanes; ragged ones fall back to tagged
/// row-major values. Both are bit-exact.
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = Vec::new();
    let ncols = rows.first().map(Row::len).unwrap_or(0);
    // Zero-column rows would lose their count through a partition
    // (`from_columns` derives the row count from the first column), so
    // they take the row-major fallback too.
    let rectangular = ncols > 0 && rows.iter().all(|r| r.len() == ncols);
    out.push(rectangular as u8);
    if rectangular {
        out.extend_from_slice(&encode_partition(&ColumnarPartition::from_rows(rows)));
    } else {
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for row in rows {
            out.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for v in row.values() {
                encode_value(&mut out, v);
            }
        }
    }
    out
}

/// Decode [`encode_rows`].
pub fn decode_rows(r: &mut Reader) -> Result<Vec<Row>, WireError> {
    if r.u8()? != 0 {
        return Ok(decode_partition(r)?.to_rows());
    }
    let nrows = r.u32()? as usize;
    r.check_count(nrows, 4)?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let ncells = r.u32()? as usize;
        r.check_count(ncells, 1)?;
        let values: Vec<Value> = (0..ncells)
            .map(|_| decode_value(r))
            .collect::<Result<_, _>>()?;
        rows.push(Row::new(values));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_rows(rows: Vec<Row>) {
        let buf = encode_rows(&rows);
        let back = decode_rows(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn str_rows_round_trip_including_empty_and_dict_heavy() {
        for rows in [
            vec![],
            vec![vec!["a".to_string(), "b".to_string()]],
            vec![vec![String::new(); 4]; 100],
            (0..50)
                .map(|i| {
                    vec![
                        format!("node{}", i % 3),
                        "rack0".to_string(),
                        format!("{i}"),
                    ]
                })
                .collect::<Vec<_>>(),
        ] {
            let buf = encode_str_rows(&rows);
            let back = decode_str_rows(&mut Reader::new(&buf)).unwrap();
            assert_eq!(back, rows);
        }
    }

    #[test]
    fn ragged_str_rows_round_trip() {
        let rows = vec![vec!["a".into()], vec!["b".into(), "c".into()], vec![]];
        let buf = encode_str_rows(&rows);
        assert_eq!(decode_str_rows(&mut Reader::new(&buf)).unwrap(), rows);
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        let nan_payload = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(nan_payload),
            Value::Float(-0.0),
            Value::str("höstlöv"),
            Value::Time(Timestamp::from_micros(-1)),
            Value::Span(TimeSpan::new(
                Timestamp::from_micros(10),
                Timestamp::from_micros(20),
            )),
            Value::list([Value::Int(1), Value::list([Value::Null])]),
        ];
        let mut buf = Vec::new();
        for v in &values {
            encode_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            let back = decode_value(&mut r).unwrap();
            match (v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(&back, v),
            }
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn partitions_round_trip_with_nulls_and_nan() {
        let rows = vec![
            Row::new(vec![
                Value::Int(1),
                Value::Float(f64::NAN),
                Value::str("cab1"),
                Value::Time(Timestamp::from_micros(1_000_000)),
                Value::Bool(true),
            ]),
            Row::new(vec![
                Value::Null,
                Value::Float(2.5),
                Value::Null,
                Value::Time(Timestamp::from_micros(2_000_000)),
                Value::Null,
            ]),
        ];
        let part = ColumnarPartition::from_rows(&rows);
        let buf = encode_partition(&part);
        let back = decode_partition(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back.len(), part.len());
        for (a, b) in back.to_rows().iter().zip(&rows) {
            for (x, y) in a.values().iter().zip(b.values()) {
                match (x, y) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    _ => assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn row_batches_round_trip() {
        rt_rows(vec![]);
        rt_rows(vec![Row::new(vec![Value::Int(1), Value::str("a")]); 10]);
        // Ragged batch takes the tagged-value fallback.
        rt_rows(vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Int(1), Value::str("a")]),
        ]);
    }

    #[test]
    fn truncated_payloads_never_panic() {
        let rows = vec![Row::new(vec![Value::Int(7), Value::str("node"), Value::Float(1.5)]); 8];
        let buf = encode_rows(&rows);
        for cut in 0..buf.len() {
            // Any prefix must error or decode to something; no panic.
            let _ = decode_rows(&mut Reader::new(&buf[..cut]));
        }
    }
}
