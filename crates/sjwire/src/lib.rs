//! sjwire: the binary wire protocol between `sjq`, `sjserved`, and
//! `sjrouted`.
//!
//! JSON-lines (protocol v1) pays a per-cell encode/escape/parse tax that
//! dominates wide results now that the execute path is columnar. This
//! crate replaces it on the hot path with versioned, length-prefixed,
//! CRC-checked frames whose row payloads travel as columnar lanes
//! (typed arrays + validity bitmaps + string dictionaries) instead of
//! JSON text.
//!
//! The first byte of a connection decides the protocol: `{` (0x7B) is a
//! JSON-lines request, anything else must be the frame magic. Old
//! clients and `nc` debugging therefore keep working against a
//! binary-default daemon, byte for byte.
//!
//! Layering: this crate knows **nothing** about `sjserve`'s request or
//! response types. It owns the frame format, CRC, version negotiation
//! ([`Hello`]/[`HelloAck`]), and the columnar section codecs over
//! [`sjcore`] types; `sjserve::wire` composes them into full messages
//! (an envelope JSON with the hot row payloads stripped, plus binary
//! sections).

pub mod codec;
pub mod crc;
pub mod frame;
pub mod negotiate;

pub use crc::{crc32, Crc32};
pub use frame::{
    read_frame, write_frame, Frame, MsgType, WireError, MAGIC, MAX_FRAME_BYTES, WIRE_VERSION,
};
pub use negotiate::{negotiate, Hello, HelloAck, CODEC_COLUMNAR, CODEC_JSON_LINES};
