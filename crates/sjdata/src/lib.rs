//! # sjdata — synthetic HPC facility data for ScrubJay
//!
//! The paper's case studies (§7) ran against production monitoring data
//! from LLNL's Cab cluster during two dedicated-access-time (DAT)
//! sessions. That data is not available, so this crate simulates the
//! facility: a node/rack layout, a SLURM-like job schedule, workload
//! signature models (AMG's steadily rising heat, mg.C's memory-bound full
//! frequency, prime95's aggressively throttled compute), and the
//! monitoring sources the paper ingests — job queue logs, rack
//! temperature sensors (OSIsoft PI), node/rack layout tables, IPMI
//! motherboard counters, PAPI CPU counters, and /proc/cpuinfo CPU
//! specifications.
//!
//! The generated tables are *raw and disordered* on purpose: different
//! sampling intervals, different column names for the same things,
//! cumulative counters with resets, and compound cells (node lists, time
//! spans). Deriving the case-study correlations out of them is ScrubJay's
//! job, not the generator's.
//!
//! Everything is deterministic under a seed ([`rand_chacha`]).
//!
//! ```
//! use sjdata::{dat1, Dat1Config};
//! use sjdf::ExecCtx;
//!
//! let ctx = ExecCtx::local();
//! let cfg = Dat1Config {
//!     racks: 3, nodes_per_rack: 2, amg_rack_index: 1, amg_nodes: 2,
//!     background_jobs: 1, duration_secs: 900,
//!     ..Dat1Config::default()
//! };
//! let (catalog, truth) = dat1(&ctx, &cfg).unwrap();
//! assert_eq!(
//!     catalog.dataset_names(),
//!     vec!["job_queue_log", "node_layout", "rack_temps"],
//! );
//! assert_eq!(truth.amg_rack, "rack1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod append;
pub mod dat;
pub mod facility;
pub mod jobs;
pub mod layout;
pub mod sources;
pub mod synth;
pub mod workloads;

pub use append::{disarray_schedule, stream_catalog, Disarray};
pub use dat::{dat1, dat2, Dat1Config, Dat2Config};
pub use facility::Facility;
pub use jobs::Job;
pub use layout::FacilityLayout;
pub use workloads::Workload;
