//! Append-mode session generator: seeded disarray schedules.
//!
//! The facility simulator's batch generators freeze a session into
//! datasets; this module replays the same kind of telemetry as a
//! *stream* of [`AppendBatch`]es — the "disarray" ScrubJay's title
//! promises, in five reproducible shapes:
//!
//! 1. [`Disarray::InOrder`] — every source advances in lockstep.
//! 2. [`Disarray::ClockSkew`] — the coolant source's clock lags the
//!    counter sources, holding the watermark back.
//! 3. [`Disarray::LateDuplicates`] — a slice of samples arrives one to
//!    two steps late (inside allowed lateness, forcing re-emission) and
//!    a few rows are re-sent verbatim (dropped by ingest dedup).
//! 4. [`Disarray::CounterWrap`] — hardware counters wrap mid-stream,
//!    exercising the rate derivation's reset handling incrementally.
//! 5. [`Disarray::RackSkew`] — one rack produces 80% of all rows.
//!
//! Every schedule is a pure function of its seed, so the equivalence
//! suite (`tests/streaming_equivalence.rs`) can replay identical streams
//! under both planners and both partition representations.

use crate::synth::{counters_schema, right_schema};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sjcore::catalog::Catalog;
use sjcore::{Result, Row, SjDataset, Timestamp, Value};
use sjdf::ExecCtx;
use sjstream::AppendBatch;
use std::collections::BTreeMap;

/// The five seeded disarray shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disarray {
    /// Sources advance in lockstep; no late or duplicate rows.
    InOrder,
    /// The coolant source's clock lags three steps behind the counter
    /// sources.
    ClockSkew,
    /// Some samples arrive late (within allowed lateness) and some rows
    /// are duplicated.
    LateDuplicates,
    /// Cumulative counters wrap to near zero mid-stream.
    CounterWrap,
    /// Rack 0 produces 80% of all rows.
    RackSkew,
}

impl Disarray {
    /// All five schedules, in a stable order.
    pub const ALL: [Disarray; 5] = [
        Disarray::InOrder,
        Disarray::ClockSkew,
        Disarray::LateDuplicates,
        Disarray::CounterWrap,
        Disarray::RackSkew,
    ];

    /// Stable scenario name (used in reports and artifacts).
    pub fn name(&self) -> &'static str {
        match self {
            Disarray::InOrder => "in_order",
            Disarray::ClockSkew => "clock_skew",
            Disarray::LateDuplicates => "late_duplicates",
            Disarray::CounterWrap => "counter_wrap",
            Disarray::RackSkew => "rack_skew",
        }
    }
}

/// Nodes cab0..cab3; cab0/cab1 are rack 0, cab2/cab3 rack 1.
const NODES: usize = 4;
/// Event-time width of one schedule step, seconds.
pub const STEP_SECS: i64 = 10;

/// A catalog with the two streamable datasets the schedules append to:
/// `papi_counters` (cumulative hardware counters) and `coolant`
/// (temperature readings), both registered empty — the stream is the
/// data.
pub fn stream_catalog(ctx: &ExecCtx) -> Result<Catalog> {
    let mut catalog = Catalog::default_hpc();
    catalog.register_dataset(
        "papi_counters",
        SjDataset::from_rows(ctx, Vec::new(), counters_schema(), "papi_counters", 1),
    )?;
    catalog.register_dataset(
        "coolant",
        SjDataset::from_rows(ctx, Vec::new(), right_schema(), "coolant", 1),
    )?;
    Ok(catalog)
}

/// Generate one disarray schedule: `steps` rounds of appends covering
/// `steps × STEP_SECS` seconds of event time, deterministically from
/// `seed`. Batches are emitted in delivery order; replaying them through
/// a [`sjstream::StreamEngine`] reproduces the same accepted prefix and
/// the same emissions every time.
pub fn disarray_schedule(kind: Disarray, seed: u64, steps: usize) -> Vec<AppendBatch> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x571_3EA3);
    let step_us = STEP_SECS * 1_000_000;
    // Per-node cumulative counter state [instr, cycles, memr, memw].
    let mut counters: Vec<[i64; 4]> = vec![[0; 4]; NODES];
    let rates: [i64; 4] = [2_000_000, 2_600_000, 400_000, 150_000];
    let wrap_step = steps / 2;
    let mut batches = Vec::new();
    // Rows held back for late delivery: (deliver_at_step, row).
    let mut held: Vec<(usize, Row)> = Vec::new();
    // Recent counter rows eligible for duplication.
    let mut recent: Vec<Row> = Vec::new();

    for step in 0..steps {
        let t0 = step as i64 * step_us;
        // How many samples each node produces this step.
        let samples_of = |node: usize| -> usize {
            match kind {
                Disarray::RackSkew if node < 2 => 4, // rack 0 carries 80% of the traffic
                _ => 1,
            }
        };

        let mut counter_rows: BTreeMap<usize, Vec<Row>> = BTreeMap::new();
        let mut coolant_rows: Vec<Row> = Vec::new();
        for (node, node_counters) in counters.iter_mut().enumerate() {
            let rack = node / 2;
            let n = samples_of(node);
            for s in 0..n {
                let t = t0 + (s as i64 * step_us) / n as i64 + rng.gen_range(0..step_us / 4);
                let dt_secs = STEP_SECS / n as i64;
                if kind == Disarray::CounterWrap && step == wrap_step && s == 0 {
                    // The counter register wraps: restart near zero.
                    for c in node_counters.iter_mut() {
                        *c = rng.gen_range(0..1_000);
                    }
                } else {
                    for (c, r) in node_counters.iter_mut().zip(rates) {
                        *c += dt_secs * r + rng.gen_range(0..r.max(1));
                    }
                }
                let [instr, cycles, memr, memw] = *node_counters;
                let row = Row::new(vec![
                    Value::str(format!("cab{node}")),
                    Value::Time(Timestamp::from_micros(t)),
                    Value::Int(instr),
                    Value::Int(cycles),
                    Value::Int(memr),
                    Value::Int(memw),
                ]);
                if kind == Disarray::LateDuplicates
                    && rng.gen_range(0..100) < 15
                    && step + 2 < steps
                {
                    held.push((step + 1 + rng.gen_range(0..2), row));
                } else {
                    counter_rows.entry(rack).or_default().push(row.clone());
                    recent.push(row);
                }
            }
            // One coolant reading per node per step.
            let t = t0 + rng.gen_range(0..step_us);
            let temp = 25.0
                + 4.0 * ((t as f64 / 180e6) * std::f64::consts::TAU).sin()
                + rng.gen_range(-50..50) as f64 / 100.0;
            coolant_rows.push(Row::new(vec![
                Value::str(format!("cab{node}")),
                Value::Time(Timestamp::from_micros(t)),
                Value::Float(temp),
            ]));
        }

        // Late re-deliveries and verbatim duplicates ride along with the
        // current step's rack-0 batch.
        if kind == Disarray::LateDuplicates {
            let mut still_held = Vec::new();
            for (deliver_at, row) in held.drain(..) {
                if deliver_at <= step {
                    counter_rows.entry(0).or_default().push(row);
                } else {
                    still_held.push((deliver_at, row));
                }
            }
            held = still_held;
            if !recent.is_empty() && rng.gen_range(0..100) < 40 {
                let dup = recent[rng.gen_range(0..recent.len())].clone();
                counter_rows.entry(0).or_default().push(dup);
            }
        }

        // Per-source clocks: counters report one clock per rack.
        let counter_clock = t0 + step_us;
        for (rack, rows) in counter_rows {
            batches.push(AppendBatch {
                dataset: "papi_counters".into(),
                source: format!("papi@rack{rack}"),
                source_clock_us: counter_clock,
                rows,
            });
        }
        // Make sure silent racks still advance their clock so the
        // watermark is not pinned by an idle source.
        for rack in 0..2 {
            let source = format!("papi@rack{rack}");
            if !batches
                .iter()
                .rev()
                .take(4)
                .any(|b| b.source == source && b.source_clock_us == counter_clock)
            {
                batches.push(AppendBatch {
                    dataset: "papi_counters".into(),
                    source,
                    source_clock_us: counter_clock,
                    rows: Vec::new(),
                });
            }
        }
        let coolant_clock = match kind {
            // The coolant daemon flushes on a delay: its clock trails
            // three steps behind the counter sources.
            Disarray::ClockSkew => (t0 - 3 * step_us + step_us).max(0),
            _ => counter_clock,
        };
        batches.push(AppendBatch {
            dataset: "coolant".into(),
            source: "coolant".into(),
            source_clock_us: coolant_clock,
            rows: coolant_rows,
        });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        for kind in Disarray::ALL {
            let a = disarray_schedule(kind, 7, 12);
            let b = disarray_schedule(kind, 7, 12);
            assert_eq!(a, b, "{} not deterministic", kind.name());
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn late_duplicates_schedule_contains_duplicates() {
        let batches = disarray_schedule(Disarray::LateDuplicates, 3, 20);
        let rows: Vec<&Row> = batches
            .iter()
            .filter(|b| b.dataset == "papi_counters")
            .flat_map(|b| &b.rows)
            .collect();
        let distinct: std::collections::BTreeSet<String> =
            rows.iter().map(|r| format!("{r:?}")).collect();
        assert!(
            distinct.len() < rows.len(),
            "expected verbatim duplicates in the late_duplicates schedule"
        );
    }

    #[test]
    fn rack_skew_puts_most_rows_on_rack0() {
        let batches = disarray_schedule(Disarray::RackSkew, 11, 20);
        let (mut rack0, mut total) = (0usize, 0usize);
        for b in batches.iter().filter(|b| b.dataset == "papi_counters") {
            for r in &b.rows {
                total += 1;
                let node = r.get(0).to_string();
                if node == "cab0" || node == "cab1" {
                    rack0 += 1;
                }
            }
        }
        assert!(rack0 * 10 >= total * 7, "rack0 {rack0}/{total}");
    }
}
