//! Workload signature models.
//!
//! Each workload the case studies exercise has a distinct performance and
//! thermal signature (§7.2–7.3):
//!
//! * **AMG** — adaptive mesh refinement; a fairly regularly *increasing*
//!   heat curve over the run (Figure 4's outlier on rack 17).
//! * **mg.C** — memory-intensive NAS MG class C; runs at *full* CPU
//!   frequency with a comparatively *low* instruction rate and heavy
//!   memory traffic (Figure 6, runs 1–3).
//! * **prime95** — compute-intensive stress test; *high* instruction rate
//!   that triggers *aggressive CPU throttling* (Figure 6, runs 4–6).
//! * **Lulesh / Kripke** — background phase-structured workloads whose
//!   heat rises and falls with application phases.
//!
//! Signatures are smooth functions of run progress `frac ∈ [0, 1]`; the
//! generators add sampling noise on top.

use serde::{Deserialize, Serialize};

/// A modeled application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Adaptive mesh refinement (steadily rising heat).
    Amg,
    /// NAS MG class C (memory-bound, full frequency, low IPC).
    MgC,
    /// prime95 torture test (compute-bound, heavy throttling).
    Prime95,
    /// LULESH hydrodynamics proxy (phased).
    Lulesh,
    /// Kripke transport proxy (phased).
    Kripke,
}

impl Workload {
    /// SLURM job-name string.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Amg => "AMG",
            Workload::MgC => "mg.C",
            Workload::Prime95 => "prime95",
            Workload::Lulesh => "lulesh",
            Workload::Kripke => "kripke",
        }
    }

    /// Parse a job-name string.
    pub fn parse(name: &str) -> Option<Workload> {
        match name {
            "AMG" => Some(Workload::Amg),
            "mg.C" => Some(Workload::MgC),
            "prime95" => Some(Workload::Prime95),
            "lulesh" => Some(Workload::Lulesh),
            "kripke" => Some(Workload::Kripke),
            _ => None,
        }
    }

    /// Per-node heat contribution (°C of hot/cold aisle separation) at
    /// run progress `frac`.
    pub fn heat_delta(&self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        match self {
            // Fairly regularly increasing heat curve (Figure 4).
            Workload::Amg => 6.0 + 9.0 * frac,
            // Moderate, flat-ish heat.
            Workload::MgC => 5.0 + 1.0 * phase_wave(frac, 3.0),
            // Hot but capped by throttling.
            Workload::Prime95 => 8.0 + 1.5 * phase_wave(frac, 5.0),
            // Rise-and-fall application phases.
            Workload::Lulesh => 4.0 + 2.5 * phase_wave(frac, 2.0),
            Workload::Kripke => 3.5 + 2.0 * phase_wave(frac, 4.0),
        }
    }

    /// Active/base frequency ratio (the APERF/MPERF ratio) at progress
    /// `frac`. prime95 throttles aggressively; mg.C holds full frequency.
    pub fn freq_ratio(&self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        match self {
            Workload::MgC => 1.0,
            Workload::Prime95 => 0.62 + 0.06 * phase_wave(frac, 6.0),
            Workload::Amg => 0.95,
            Workload::Lulesh => 0.9,
            Workload::Kripke => 0.92,
        }
    }

    /// Instructions retired per millisecond per CPU at progress `frac`.
    pub fn instr_per_ms(&self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        match self {
            // Memory-bound: low instruction rate despite full frequency.
            Workload::MgC => 1.1e6 + 0.1e6 * phase_wave(frac, 3.0),
            // Compute-bound: high instruction rate even while throttled.
            Workload::Prime95 => 3.4e6 + 0.2e6 * phase_wave(frac, 6.0),
            Workload::Amg => 1.8e6 + 0.2e6 * frac,
            Workload::Lulesh => 2.0e6 + 0.3e6 * phase_wave(frac, 2.0),
            Workload::Kripke => 1.6e6 + 0.2e6 * phase_wave(frac, 4.0),
        }
    }

    /// Memory reads per millisecond per socket.
    pub fn mem_reads_per_ms(&self, frac: f64) -> f64 {
        match self {
            Workload::MgC => 9.0e5 + 1.0e5 * phase_wave(frac, 3.0),
            Workload::Prime95 => 1.2e5,
            Workload::Amg => 5.0e5 + 0.5e5 * frac,
            Workload::Lulesh => 6.0e5,
            Workload::Kripke => 5.5e5,
        }
    }

    /// Memory writes per millisecond per socket.
    pub fn mem_writes_per_ms(&self, frac: f64) -> f64 {
        self.mem_reads_per_ms(frac) * 0.45
    }

    /// Socket power draw in watts.
    pub fn socket_power(&self, frac: f64) -> f64 {
        match self {
            Workload::MgC => 95.0 + 5.0 * phase_wave(frac, 3.0),
            // Throttling caps prime95's power near the socket limit.
            Workload::Prime95 => 128.0 + 2.0 * phase_wave(frac, 6.0),
            Workload::Amg => 105.0 + 10.0 * frac,
            Workload::Lulesh => 100.0,
            Workload::Kripke => 92.0,
        }
    }

    /// CPU thermal margin (°C below the trip point; smaller = hotter).
    pub fn thermal_margin(&self, frac: f64) -> f64 {
        match self {
            Workload::MgC => 28.0 - 2.0 * phase_wave(frac, 3.0),
            Workload::Prime95 => 9.0 - 2.0 * phase_wave(frac, 6.0),
            Workload::Amg => 20.0 - 4.0 * frac,
            Workload::Lulesh => 22.0,
            Workload::Kripke => 24.0,
        }
    }
}

/// A smooth 0-centred wave with `cycles` peaks over the run — the
/// rise-and-fall of application phases.
fn phase_wave(frac: f64, cycles: f64) -> f64 {
    (frac * cycles * std::f64::consts::TAU).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for w in [
            Workload::Amg,
            Workload::MgC,
            Workload::Prime95,
            Workload::Lulesh,
            Workload::Kripke,
        ] {
            assert_eq!(Workload::parse(w.name()), Some(w));
        }
        assert_eq!(Workload::parse("hpl"), None);
    }

    #[test]
    fn amg_heat_rises_monotonically() {
        let w = Workload::Amg;
        let mut last = f64::MIN;
        for i in 0..=10 {
            let h = w.heat_delta(i as f64 / 10.0);
            assert!(h > last);
            last = h;
        }
    }

    #[test]
    fn amg_is_the_hottest_average_workload() {
        let avg = |w: Workload| -> f64 {
            (0..=100)
                .map(|i| w.heat_delta(i as f64 / 100.0))
                .sum::<f64>()
                / 101.0
        };
        let amg = avg(Workload::Amg);
        for w in [Workload::MgC, Workload::Lulesh, Workload::Kripke] {
            assert!(amg > avg(w), "AMG should out-heat {}", w.name());
        }
    }

    #[test]
    fn prime95_throttles_and_mgc_does_not() {
        for i in 0..=10 {
            let frac = i as f64 / 10.0;
            assert!(Workload::Prime95.freq_ratio(frac) < 0.75);
            assert_eq!(Workload::MgC.freq_ratio(frac), 1.0);
        }
    }

    #[test]
    fn prime95_has_higher_instruction_rate_than_mgc() {
        for i in 0..=10 {
            let frac = i as f64 / 10.0;
            assert!(Workload::Prime95.instr_per_ms(frac) > 2.0 * Workload::MgC.instr_per_ms(frac));
        }
    }

    #[test]
    fn mgc_dominates_memory_traffic() {
        for i in 0..=10 {
            let frac = i as f64 / 10.0;
            assert!(
                Workload::MgC.mem_reads_per_ms(frac)
                    > 4.0 * Workload::Prime95.mem_reads_per_ms(frac)
            );
        }
    }

    #[test]
    fn prime95_runs_hot_on_thermal_margin() {
        for i in 0..=10 {
            let frac = i as f64 / 10.0;
            assert!(Workload::Prime95.thermal_margin(frac) < Workload::MgC.thermal_margin(frac));
        }
    }
}
