//! DAT scenario builders: complete ScrubJay catalogs for the paper's two
//! dedicated-access-time sessions (§7).

use crate::facility::Facility;
use crate::jobs::{dat1_schedule, dat2_schedule, job_log_dataset, ScheduleConfig};
use crate::layout::{rack_name, FacilityLayout};
use crate::sources::{
    cpu_spec_dataset, ipmi_dataset, ldms_ingest, ldms_wrap, papi_dataset, rack_temperature_dataset,
    SamplingConfig,
};
use sjcore::catalog::Catalog;
use sjcore::wrappers::KvStore;
use sjcore::{Result, TimeSpan, Timestamp};
use sjdf::ExecCtx;

/// Configuration of the first DAT (facility-level sources, §7.2).
#[derive(Debug, Clone)]
pub struct Dat1Config {
    /// Number of racks in the simulated machine.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Rack index the AMG job is pinned to (the paper's rack 17).
    pub amg_rack_index: usize,
    /// Number of nodes AMG occupies on its rack.
    pub amg_nodes: usize,
    /// Background jobs to schedule on other racks.
    pub background_jobs: usize,
    /// DAT length in seconds.
    pub duration_secs: i64,
    /// Rack sensor interval in seconds (the paper: two minutes).
    pub sensor_interval_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Partitions for the generated datasets.
    pub partitions: usize,
}

impl Default for Dat1Config {
    fn default() -> Self {
        Dat1Config {
            racks: 20,
            nodes_per_rack: 12,
            amg_rack_index: 17,
            amg_nodes: 10,
            background_jobs: 12,
            duration_secs: 4 * 3600,
            sensor_interval_secs: 120.0,
            seed: 0x5C8B,
            partitions: 4,
        }
    }
}

/// Ground truth for DAT1 test assertions.
#[derive(Debug, Clone)]
pub struct Dat1Truth {
    /// The facility model the datasets were sampled from.
    pub facility: Facility,
    /// The rack hosting the AMG job.
    pub amg_rack: String,
    /// The DAT window.
    pub window: TimeSpan,
}

/// Build the first DAT: a catalog with `job_queue_log`, `node_layout`,
/// and `rack_temps` registered.
pub fn dat1(ctx: &ExecCtx, cfg: &Dat1Config) -> Result<(Catalog, Dat1Truth)> {
    let layout = FacilityLayout::regular(cfg.racks, cfg.nodes_per_rack);
    let amg_rack = rack_name(cfg.amg_rack_index % cfg.racks.max(1));
    let start = Timestamp::parse("2017-03-27 10:00:00").expect("valid start");
    let schedule_cfg = ScheduleConfig {
        background_jobs: cfg.background_jobs,
        start,
        duration_secs: cfg.duration_secs,
        seed: cfg.seed,
        ..ScheduleConfig::default()
    };
    let jobs = dat1_schedule(&layout, &amg_rack, cfg.amg_nodes, &schedule_cfg);
    let window = TimeSpan::new(start, start.add_secs(cfg.duration_secs as f64));
    let facility = Facility::new(layout.clone(), jobs.clone());

    let mut catalog = Catalog::default_hpc();
    catalog.register_dataset("job_queue_log", job_log_dataset(ctx, &jobs, cfg.partitions))?;
    catalog.register_dataset("node_layout", layout.dataset(ctx, cfg.partitions))?;
    catalog.register_dataset(
        "rack_temps",
        rack_temperature_dataset(
            ctx,
            &facility,
            &SamplingConfig {
                window,
                interval_secs: cfg.sensor_interval_secs,
                seed: cfg.seed ^ 0xA15E,
                partitions: cfg.partitions,
            },
        ),
    )?;
    Ok((
        catalog,
        Dat1Truth {
            facility,
            amg_rack,
            window,
        },
    ))
}

/// Configuration of the second DAT (node/CPU-level sources, §7.3).
#[derive(Debug, Clone)]
pub struct Dat2Config {
    /// Nodes in the test allocation.
    pub nodes: usize,
    /// CPUs per node.
    pub cpus_per_node: usize,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Base CPU frequency in MHz.
    pub base_mhz: f64,
    /// Length of each of the six runs, seconds.
    pub run_secs: i64,
    /// Idle gap between runs, seconds.
    pub gap_secs: i64,
    /// CPU/node sampling interval, seconds (the paper: one to three).
    pub sample_interval_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Partitions for the generated datasets.
    pub partitions: usize,
}

impl Default for Dat2Config {
    fn default() -> Self {
        Dat2Config {
            nodes: 2,
            cpus_per_node: 4,
            sockets_per_node: 2,
            base_mhz: 3200.0,
            run_secs: 600,
            gap_secs: 60,
            sample_interval_secs: 2.0,
            seed: 0xDA72,
            partitions: 4,
        }
    }
}

/// Ground truth for DAT2 test assertions.
#[derive(Debug, Clone)]
pub struct Dat2Truth {
    /// The facility model the datasets were sampled from.
    pub facility: Facility,
    /// The node names in the allocation.
    pub nodes: Vec<String>,
    /// The six run windows in order (3× mg.C then 3× prime95).
    pub runs: Vec<TimeSpan>,
    /// The full sampling window.
    pub window: TimeSpan,
}

/// Build the second DAT: a catalog with `papi`, `ipmi`, `cpu_specs`,
/// `ldms` (ingested through the NoSQL store, as in §7.1), and the DAT's
/// own `job_queue_log` registered.
pub fn dat2(ctx: &ExecCtx, cfg: &Dat2Config) -> Result<(Catalog, Dat2Truth)> {
    let layout = FacilityLayout::regular(1, cfg.nodes);
    let nodes: Vec<String> = layout.all_nodes().map(String::from).collect();
    let start = Timestamp::parse("2017-06-12 09:00:00").expect("valid start");
    let jobs = dat2_schedule(&nodes, start, cfg.run_secs, cfg.gap_secs);
    let runs: Vec<TimeSpan> = jobs.iter().map(|j| j.span).collect();
    let end = runs.last().expect("six runs").end.add_secs(60.0);
    let window = TimeSpan::new(start.add_secs(-60.0), end);
    let facility = Facility::new(layout, jobs);

    let sampling = SamplingConfig {
        window,
        interval_secs: cfg.sample_interval_secs,
        seed: cfg.seed,
        partitions: cfg.partitions,
    };
    let mut catalog = Catalog::default_hpc();
    catalog.register_dataset(
        "papi",
        papi_dataset(
            ctx,
            &facility,
            &nodes,
            cfg.cpus_per_node,
            cfg.base_mhz,
            &sampling,
        ),
    )?;
    catalog.register_dataset(
        "ipmi",
        ipmi_dataset(
            ctx,
            &facility,
            &nodes,
            cfg.sockets_per_node,
            &SamplingConfig {
                seed: cfg.seed ^ 0x19A1,
                ..sampling.clone()
            },
        ),
    )?;
    catalog.register_dataset(
        "cpu_specs",
        cpu_spec_dataset(ctx, &nodes, cfg.cpus_per_node, cfg.base_mhz, cfg.partitions),
    )?;
    // LDMS node data arrives through the NoSQL ingestion path (§7.1):
    // documents in the KV store, wrapped into an annotated dataset.
    let store = KvStore::new();
    ldms_ingest(
        &store,
        &facility,
        &nodes,
        &SamplingConfig {
            interval_secs: cfg.sample_interval_secs * 2.0,
            seed: cfg.seed ^ 0x7D35,
            ..sampling.clone()
        },
    );
    catalog.register_dataset(
        "ldms",
        ldms_wrap(ctx, &store, catalog.dict(), cfg.partitions)?,
    )?;
    // The DAT's own job queue log (the six runs).
    catalog.register_dataset(
        "job_queue_log",
        crate::jobs::job_log_dataset(ctx, facility.jobs(), cfg.partitions),
    )?;
    Ok((
        catalog,
        Dat2Truth {
            facility,
            nodes,
            runs,
            window,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dat1_registers_the_three_sources() {
        let ctx = ExecCtx::local();
        let cfg = Dat1Config {
            racks: 4,
            nodes_per_rack: 4,
            amg_rack_index: 2,
            amg_nodes: 3,
            background_jobs: 3,
            duration_secs: 1800,
            ..Dat1Config::default()
        };
        let (catalog, truth) = dat1(&ctx, &cfg).unwrap();
        assert_eq!(
            catalog.dataset_names(),
            vec!["job_queue_log", "node_layout", "rack_temps"]
        );
        assert_eq!(truth.amg_rack, "rack2");
        assert!(catalog.dataset("rack_temps").unwrap().count().unwrap() > 0);
        assert_eq!(catalog.dataset("node_layout").unwrap().count().unwrap(), 16);
    }

    #[test]
    fn dat2_registers_the_three_sources() {
        let ctx = ExecCtx::local();
        let cfg = Dat2Config {
            nodes: 1,
            cpus_per_node: 2,
            run_secs: 120,
            gap_secs: 20,
            sample_interval_secs: 4.0,
            ..Dat2Config::default()
        };
        let (catalog, truth) = dat2(&ctx, &cfg).unwrap();
        assert_eq!(
            catalog.dataset_names(),
            vec!["cpu_specs", "ipmi", "job_queue_log", "ldms", "papi"]
        );
        assert_eq!(truth.runs.len(), 6);
        assert_eq!(catalog.dataset("cpu_specs").unwrap().count().unwrap(), 2);
        assert!(catalog.dataset("papi").unwrap().count().unwrap() > 100);
        assert!(catalog.dataset("ldms").unwrap().count().unwrap() > 50);
        assert_eq!(
            catalog.dataset("job_queue_log").unwrap().count().unwrap(),
            6
        );
    }

    #[test]
    fn dat2_ldms_power_tracks_workloads() {
        let ctx = ExecCtx::local();
        let cfg = Dat2Config {
            nodes: 1,
            cpus_per_node: 1,
            run_secs: 200,
            gap_secs: 20,
            sample_interval_secs: 5.0,
            ..Dat2Config::default()
        };
        let (catalog, truth) = dat2(&ctx, &cfg).unwrap();
        let ldms = catalog.dataset("ldms").unwrap();
        let schema = ldms.schema().clone();
        let t_i = schema.index_of("time").unwrap();
        let p_i = schema.index_of("node_power").unwrap();
        let rows = ldms.collect().unwrap();
        let mean_power = |run: usize| -> f64 {
            let span = truth.runs[run];
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.get(t_i).as_time().is_some_and(|t| span.contains(t)))
                .filter_map(|r| r.get(p_i).as_f64())
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        // prime95 (run 4) draws more node power than mg.C (run 1).
        assert!(mean_power(3) > mean_power(0) + 20.0);
    }

    #[test]
    fn dat1_amg_rack_wraps_around_small_layouts() {
        let ctx = ExecCtx::local();
        let cfg = Dat1Config {
            racks: 3,
            nodes_per_rack: 2,
            amg_rack_index: 17,
            amg_nodes: 2,
            background_jobs: 1,
            duration_secs: 1800,
            ..Dat1Config::default()
        };
        let (_, truth) = dat1(&ctx, &cfg).unwrap();
        assert_eq!(truth.amg_rack, "rack2");
    }
}
