//! Monitoring-source generators: sampled views of the facility model.
//!
//! Each generator mimics one of the paper's ingestion paths (§7.1):
//!
//! * [`rack_temperature_dataset`] — OSIsoft-PI-style rack sensors: 6 per
//!   rack (bottom/middle/top × hot/cold aisle), an instantaneous reading
//!   every two minutes.
//! * [`papi_dataset`] — per-(node, CPU) cumulative counters at one-to-
//!   three-second intervals: APERF, MPERF, instructions; counters reset
//!   at arbitrary intervals.
//! * [`ipmi_dataset`] — per-(node, socket) motherboard data: cumulative
//!   memory read/write counters plus instantaneous power and thermal
//!   margin.
//! * [`cpu_spec_dataset`] — static `/proc/cpuinfo`-style CPU
//!   specifications: the base frequency of every CPU.

use crate::facility::Facility;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, TimeSpan, Timestamp, Value};
use sjdf::ExecCtx;

/// Common sampling parameters.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Sampling window.
    pub window: TimeSpan,
    /// Seconds between samples.
    pub interval_secs: f64,
    /// RNG seed for measurement noise.
    pub seed: u64,
    /// Partitions of the produced dataset.
    pub partitions: usize,
}

impl SamplingConfig {
    /// Sample instants across the window.
    fn instants(&self) -> Vec<Timestamp> {
        self.window.explode(self.interval_secs)
    }
}

/// Ambient cold-aisle temperature with slow drift.
fn cold_aisle_temp(t: Timestamp, rng: &mut ChaCha8Rng) -> f64 {
    17.5 + 0.5 * (t.as_secs_f64() / 3600.0).sin() + rng.gen_range(-0.2..0.2)
}

/// OSIsoft-PI-style rack temperature/humidity sensor table.
///
/// Schema: `rack, location, aisle, time, temp, humidity` — note the hot
/// and cold aisle readings arrive as separate rows; turning them into a
/// heat measure is the `derive_heat` rule's job, not the generator's.
pub fn rack_temperature_dataset(
    ctx: &ExecCtx,
    facility: &Facility,
    cfg: &SamplingConfig,
) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        FieldDef::new(
            "location",
            FieldSemantics::domain("rack-location", "location-name"),
        ),
        FieldDef::new("aisle", FieldSemantics::domain("aisle", "aisle-name")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
        FieldDef::new("humidity", FieldSemantics::value("humidity", "percent-rh")),
    ])
    .expect("rack sensor schema");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut rows = Vec::new();
    for t in cfg.instants() {
        for rack in facility.layout().rack_names() {
            let load = facility.rack_heat_load(rack, t);
            for (loc, exposure) in Facility::sensor_locations() {
                let cold = cold_aisle_temp(t, &mut rng);
                let hot = cold + 2.0 + load * exposure + rng.gen_range(-0.3..0.3);
                let humidity = 35.0 + rng.gen_range(-3.0..3.0);
                for (aisle, temp) in [("cold", cold), ("hot", hot)] {
                    rows.push(Row::new(vec![
                        Value::str(rack),
                        Value::str(loc),
                        Value::str(aisle),
                        Value::Time(t),
                        Value::Float(temp),
                        Value::Float(humidity),
                    ]));
                }
            }
        }
    }
    SjDataset::from_rows(ctx, rows, schema, "rack_temps", cfg.partitions)
}

/// PAPI-style per-(node, CPU) cumulative counters.
///
/// APERF increments at the active frequency, MPERF at the base frequency;
/// instructions at the workload's instruction rate. Counters reset to
/// zero at pseudo-random sample boundaries (roughly one in 200), as real
/// counters do.
pub fn papi_dataset(
    ctx: &ExecCtx,
    facility: &Facility,
    nodes: &[String],
    cpus_per_node: usize,
    base_mhz: f64,
    cfg: &SamplingConfig,
) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("nodeid", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("cpuid", FieldSemantics::domain("cpu", "cpu-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("aperf", FieldSemantics::value("aperf", "aperf-count")),
        FieldDef::new("mperf", FieldSemantics::value("mperf", "mperf-count")),
        FieldDef::new(
            "instructions",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
    ])
    .expect("papi schema");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut rows = Vec::new();
    let instants = cfg.instants();
    for node in nodes {
        for cpu in 0..cpus_per_node {
            let cpu_id = format!("{node}-cpu{cpu}");
            let (mut aperf, mut mperf, mut instr) = (0f64, 0f64, 0f64);
            let mut last: Option<Timestamp> = None;
            for &t in &instants {
                if let Some(prev) = last {
                    let dt_ms = (t.as_secs_f64() - prev.as_secs_f64()) * 1e3;
                    // Idle CPUs tick MPERF slowly and retire few
                    // instructions; busy ones follow the workload model.
                    let (ratio, ipms) = match facility.workload_on(node, t) {
                        Some((w, frac)) => {
                            let jitter = rng.gen_range(0.97..1.03);
                            (w.freq_ratio(frac), w.instr_per_ms(frac) * jitter)
                        }
                        None => (0.35, 2.0e4),
                    };
                    mperf += base_mhz * 1e3 * dt_ms;
                    aperf += base_mhz * 1e3 * dt_ms * ratio;
                    instr += ipms * dt_ms;
                }
                // Occasional counter reset.
                if rng.gen_ratio(1, 200) {
                    aperf = 0.0;
                    mperf = 0.0;
                    instr = 0.0;
                }
                rows.push(Row::new(vec![
                    Value::str(node),
                    Value::str(&cpu_id),
                    Value::Time(t),
                    Value::Int(aperf as i64),
                    Value::Int(mperf as i64),
                    Value::Int(instr as i64),
                ]));
                last = Some(t);
            }
        }
    }
    SjDataset::from_rows(ctx, rows, schema, "papi", cfg.partitions)
}

/// IPMI-style per-(node, socket) motherboard table: cumulative memory
/// read/write counters, instantaneous socket power and thermal margin.
pub fn ipmi_dataset(
    ctx: &ExecCtx,
    facility: &Facility,
    nodes: &[String],
    sockets_per_node: usize,
    cfg: &SamplingConfig,
) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("nodeid", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("socket", FieldSemantics::domain("socket", "socket-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "mem_reads",
            FieldSemantics::value("memory-reads", "memory-reads-count"),
        ),
        FieldDef::new(
            "mem_writes",
            FieldSemantics::value("memory-writes", "memory-writes-count"),
        ),
        FieldDef::new("power", FieldSemantics::value("power", "watts")),
        FieldDef::new(
            "thermal_margin",
            FieldSemantics::value("thermal-margin", "margin-celsius"),
        ),
    ])
    .expect("ipmi schema");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut rows = Vec::new();
    let instants = cfg.instants();
    for node in nodes {
        for socket in 0..sockets_per_node {
            let socket_id = format!("{node}-s{socket}");
            let (mut reads, mut writes) = (0f64, 0f64);
            let mut last: Option<Timestamp> = None;
            for &t in &instants {
                if let Some(prev) = last {
                    let dt_ms = (t.as_secs_f64() - prev.as_secs_f64()) * 1e3;
                    let (rd, wr) = match facility.workload_on(node, t) {
                        Some((w, frac)) => {
                            let jitter = rng.gen_range(0.95..1.05);
                            (
                                w.mem_reads_per_ms(frac) * jitter,
                                w.mem_writes_per_ms(frac) * jitter,
                            )
                        }
                        None => (1.0e3, 5.0e2),
                    };
                    reads += rd * dt_ms;
                    writes += wr * dt_ms;
                }
                let (power, margin) = match facility.workload_on(node, t) {
                    Some((w, frac)) => (
                        w.socket_power(frac) + rng.gen_range(-2.0..2.0),
                        w.thermal_margin(frac) + rng.gen_range(-0.5..0.5),
                    ),
                    None => (42.0 + rng.gen_range(-1.0..1.0), 45.0),
                };
                if rng.gen_ratio(1, 250) {
                    reads = 0.0;
                    writes = 0.0;
                }
                rows.push(Row::new(vec![
                    Value::str(node),
                    Value::str(&socket_id),
                    Value::Time(t),
                    Value::Int(reads as i64),
                    Value::Int(writes as i64),
                    Value::Float(power),
                    Value::Float(margin),
                ]));
                last = Some(t);
            }
        }
    }
    SjDataset::from_rows(ctx, rows, schema, "ipmi", cfg.partitions)
}

/// LDMS-style node metrics, continuously ingested into a NoSQL store.
///
/// The paper's second DAT "employed a distributed ingestion framework to
/// continuously collect LDMS data into a distributed NoSQL database
/// store" (§7.1). This generator writes per-(node, time) documents —
/// CPU utilization, memory used, node power — into a
/// [`sjcore::wrappers::KvStore`] table;
/// wrap it with [`ldms_wrap`] to obtain the annotated dataset.
pub fn ldms_ingest(
    store: &sjcore::wrappers::KvStore,
    facility: &Facility,
    nodes: &[String],
    cfg: &SamplingConfig,
) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut count = 0usize;
    for t in cfg.instants() {
        for node in nodes {
            let (util, mem_mb, power) = match facility.workload_on(node, t) {
                Some((w, frac)) => (
                    (92.0f64 + rng.gen_range(-4.0..4.0)).min(100.0),
                    24_000.0 + 4_000.0 * w.mem_reads_per_ms(frac) / 1.0e6,
                    2.0 * w.socket_power(frac) + 60.0 + rng.gen_range(-5.0..5.0),
                ),
                None => (
                    rng.gen_range(0.5..3.0),
                    6_000.0 + rng.gen_range(-500.0..500.0),
                    100.0 + rng.gen_range(-3.0..3.0),
                ),
            };
            let mut doc = std::collections::BTreeMap::new();
            doc.insert("node".to_string(), node.clone());
            doc.insert("time".to_string(), t.to_string());
            doc.insert("cpu_util".to_string(), format!("{util:.2}"));
            doc.insert("mem_used".to_string(), format!("{mem_mb:.1}"));
            doc.insert("node_power".to_string(), format!("{power:.1}"));
            store.insert("ldms", doc);
            count += 1;
        }
    }
    count
}

/// Schema for the LDMS table written by [`ldms_ingest`].
pub fn ldms_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "cpu_util",
            FieldSemantics::value("utilization", "percent-util"),
        ),
        FieldDef::new("mem_used", FieldSemantics::value("memory", "megabytes")),
        FieldDef::new("node_power", FieldSemantics::value("power", "watts")),
    ])
    .expect("ldms schema")
}

/// Wrap the LDMS table out of the NoSQL store into an annotated dataset.
pub fn ldms_wrap(
    ctx: &ExecCtx,
    store: &sjcore::wrappers::KvStore,
    dict: &sjcore::SemanticDictionary,
    partitions: usize,
) -> sjcore::Result<SjDataset> {
    store.wrap(ctx, "ldms", ldms_schema(), dict, partitions)
}

/// `/proc/cpuinfo`-style static CPU specifications.
pub fn cpu_spec_dataset(
    ctx: &ExecCtx,
    nodes: &[String],
    cpus_per_node: usize,
    base_mhz: f64,
    partitions: usize,
) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("nodeid", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("cpuid", FieldSemantics::domain("cpu", "cpu-id")),
        FieldDef::new(
            "base_frequency",
            FieldSemantics::value("base-frequency", "base-megahertz"),
        ),
    ])
    .expect("cpu spec schema");
    let rows: Vec<Row> = nodes
        .iter()
        .flat_map(|node| {
            (0..cpus_per_node).map(move |cpu| {
                Row::new(vec![
                    Value::str(node),
                    Value::str(format!("{node}-cpu{cpu}")),
                    Value::Float(base_mhz),
                ])
            })
        })
        .collect();
    SjDataset::from_rows(ctx, rows, schema, "cpu_specs", partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::{dat2_schedule, Job};
    use crate::layout::FacilityLayout;
    use crate::workloads::Workload;
    use sjcore::SemanticDictionary;

    fn window(secs: i64) -> TimeSpan {
        TimeSpan::new(Timestamp::from_secs(0), Timestamp::from_secs(secs))
    }

    fn amg_facility() -> Facility {
        let layout = FacilityLayout::regular(2, 2);
        let jobs = vec![Job {
            id: 1,
            app: Workload::Amg,
            nodes: vec!["cab0".into(), "cab1".into()],
            span: window(1200),
        }];
        Facility::new(layout, jobs)
    }

    fn cfg(interval: f64) -> SamplingConfig {
        SamplingConfig {
            window: window(1200),
            interval_secs: interval,
            seed: 7,
            partitions: 2,
        }
    }

    #[test]
    fn rack_sensors_emit_six_rows_per_rack_per_instant() {
        let ctx = ExecCtx::local();
        let ds = rack_temperature_dataset(&ctx, &amg_facility(), &cfg(120.0));
        // 10 instants x 2 racks x 3 locations x 2 aisles.
        assert_eq!(ds.count().unwrap(), 10 * 2 * 6);
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
    }

    #[test]
    fn busy_rack_hot_aisle_exceeds_cold_aisle() {
        let ctx = ExecCtx::local();
        let ds = rack_temperature_dataset(&ctx, &amg_facility(), &cfg(120.0));
        let rows = ds.collect().unwrap();
        let mean = |rack: &str, aisle: &str| -> f64 {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.get(0).as_str() == Some(rack) && r.get(2).as_str() == Some(aisle))
                .map(|r| r.get(4).as_f64().unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // The busy rack's separation clearly exceeds the idle rack's.
        let busy = mean("rack0", "hot") - mean("rack0", "cold");
        let idle = mean("rack1", "hot") - mean("rack1", "cold");
        assert!(busy > idle + 3.0, "busy={busy} idle={idle}");
    }

    #[test]
    fn papi_counters_are_cumulative_with_resets() {
        let ctx = ExecCtx::local();
        let nodes = vec!["cab0".to_string()];
        let jobs = dat2_schedule(&nodes, Timestamp::from_secs(0), 300, 0);
        let f = Facility::new(FacilityLayout::regular(1, 1), jobs);
        let ds = papi_dataset(&ctx, &f, &nodes, 2, 3200.0, &cfg(2.0));
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
        let rows = ds.collect().unwrap();
        // Counters mostly increase over consecutive samples of one CPU.
        let cpu0: Vec<i64> = rows
            .iter()
            .filter(|r| r.get(1).as_str() == Some("cab0-cpu0"))
            .map(|r| r.get(3).as_i64().unwrap())
            .collect();
        let increasing = cpu0.windows(2).filter(|w| w[1] >= w[0]).count();
        assert!(increasing as f64 > cpu0.len() as f64 * 0.95);
    }

    #[test]
    fn papi_mgc_runs_at_full_frequency_prime95_throttles() {
        let ctx = ExecCtx::local();
        let nodes = vec!["cab0".to_string()];
        let jobs = dat2_schedule(&nodes, Timestamp::from_secs(0), 300, 30);
        let f = Facility::new(FacilityLayout::regular(1, 1), jobs.clone());
        let ds = papi_dataset(&ctx, &f, &nodes, 1, 3200.0, &cfg(2.0));
        let rows = ds.collect().unwrap();
        // Estimate APERF/MPERF ratio over windows inside run 1 (mg.C) and
        // run 4 (prime95).
        let ratio_at = |lo: i64, hi: i64| -> f64 {
            let samples: Vec<(i64, i64, i64)> = rows
                .iter()
                .filter_map(|r| {
                    let t = r.get(2).as_time()?.as_secs();
                    ((lo..hi).contains(&t))
                        .then(|| (t, r.get(3).as_i64().unwrap(), r.get(4).as_i64().unwrap()))
                })
                .collect();
            let (first, last) = (samples.first().unwrap(), samples.last().unwrap());
            (last.1 - first.1) as f64 / (last.2 - first.2) as f64
        };
        let mgc = ratio_at(50, 250);
        assert!(mgc > 0.97, "mg.C ratio {mgc}");
        // Run 4 starts at 3*330=990.
        let prime = ratio_at(1040, 1200);
        assert!(prime < 0.75, "prime95 ratio {prime}");
    }

    #[test]
    fn ipmi_shows_mgc_memory_traffic_dominance() {
        let ctx = ExecCtx::local();
        let nodes = vec!["cab0".to_string()];
        let jobs = dat2_schedule(&nodes, Timestamp::from_secs(0), 300, 30);
        let f = Facility::new(FacilityLayout::regular(1, 1), jobs);
        let ds = ipmi_dataset(&ctx, &f, &nodes, 1, &cfg(2.0));
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
        let rows = ds.collect().unwrap();
        let reads_rate = |lo: i64, hi: i64| -> f64 {
            let s: Vec<(i64, i64)> = rows
                .iter()
                .filter_map(|r| {
                    let t = r.get(2).as_time()?.as_secs();
                    ((lo..hi).contains(&t)).then(|| (t, r.get(3).as_i64().unwrap()))
                })
                .collect();
            let (first, last) = (s.first().unwrap(), s.last().unwrap());
            (last.1 - first.1) as f64 / (last.0 - first.0) as f64
        };
        assert!(reads_rate(50, 250) > 3.0 * reads_rate(1040, 1200));
    }

    #[test]
    fn cpu_specs_cover_every_cpu() {
        let ctx = ExecCtx::local();
        let nodes = vec!["cab0".to_string(), "cab1".to_string()];
        let ds = cpu_spec_dataset(&ctx, &nodes, 4, 3200.0, 1);
        assert_eq!(ds.count().unwrap(), 8);
        ds.validate(&SemanticDictionary::default_hpc()).unwrap();
        let rows = ds.collect().unwrap();
        assert!(rows.iter().all(|r| r.get(2).as_f64() == Some(3200.0)));
    }

    #[test]
    fn generators_are_deterministic() {
        let ctx = ExecCtx::local();
        let f = amg_facility();
        let a = rack_temperature_dataset(&ctx, &f, &cfg(120.0))
            .collect()
            .unwrap();
        let b = rack_temperature_dataset(&ctx, &f, &cfg(120.0))
            .collect()
            .unwrap();
        assert_eq!(a, b);
    }
}
