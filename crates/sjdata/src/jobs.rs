//! SLURM-style job queue logs (§7.1).
//!
//! The resource scheduler records, per job: an id, the application name,
//! the allocated node list (a compound cell — one of the reasons explode
//! transformations exist), the elapsed time, and the scheduled time span.

use crate::layout::FacilityLayout;
use crate::workloads::Workload;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, TimeSpan, Timestamp, Value};
use sjdf::ExecCtx;

/// One scheduled job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Scheduler job id.
    pub id: u64,
    /// The application.
    pub app: Workload,
    /// Allocated nodes.
    pub nodes: Vec<String>,
    /// Scheduled execution window.
    pub span: TimeSpan,
}

impl Job {
    /// Elapsed wall-clock seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.span.duration_secs()
    }

    /// Run progress at an instant, if the job is active then.
    pub fn progress_at(&self, t: Timestamp) -> Option<f64> {
        if !self.span.contains(t) {
            return None;
        }
        let total = self.span.duration_secs();
        if total <= 0.0 {
            return Some(0.0);
        }
        Some((t.as_secs_f64() - self.span.start.as_secs_f64()) / total)
    }
}

/// Configuration for random background schedules.
#[derive(Debug, Clone)]
pub struct ScheduleConfig {
    /// Number of background jobs to place.
    pub background_jobs: usize,
    /// DAT window start.
    pub start: Timestamp,
    /// DAT window length in seconds.
    pub duration_secs: i64,
    /// Min/max nodes per background job.
    pub nodes_per_job: (usize, usize),
    /// Min/max job runtime in seconds.
    pub job_secs: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            background_jobs: 12,
            start: Timestamp::parse("2017-03-27 10:00:00").unwrap(),
            duration_secs: 4 * 3600,
            nodes_per_job: (2, 8),
            job_secs: (600, 3600),
            seed: 0xC0FFEE,
        }
    }
}

/// Build a schedule: one pinned AMG job on `amg_nodes` nodes of
/// `amg_rack`, plus random background jobs on other racks (no node runs
/// two jobs at once).
pub fn dat1_schedule(
    layout: &FacilityLayout,
    amg_rack: &str,
    amg_nodes: usize,
    cfg: &ScheduleConfig,
) -> Vec<Job> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut jobs = Vec::new();
    let mut next_id = 1000u64;

    // The pinned AMG job spans most of the DAT on one rack (§7.2: AMG on
    // 60 of rack 17's nodes generated the most heat).
    let amg_span = TimeSpan::new(
        cfg.start.add_secs(600.0),
        cfg.start.add_secs((cfg.duration_secs - 600) as f64),
    );
    let amg_alloc: Vec<String> = layout
        .nodes_of(amg_rack)
        .iter()
        .take(amg_nodes)
        .cloned()
        .collect();
    assert!(!amg_alloc.is_empty(), "AMG rack has no nodes");
    jobs.push(Job {
        id: next_id,
        app: Workload::Amg,
        nodes: amg_alloc,
        span: amg_span,
    });
    next_id += 1;

    // Background jobs on the remaining racks, one job per node at a time.
    let mut free_at: std::collections::HashMap<String, Timestamp> =
        std::collections::HashMap::new();
    let background = [Workload::Lulesh, Workload::Kripke, Workload::MgC];
    let other_racks: Vec<&str> = layout.rack_names().filter(|r| *r != amg_rack).collect();
    // `next_id` is not a loop counter: placements that do not fit the DAT
    // window are skipped without consuming an id, keeping job ids dense.
    #[allow(clippy::explicit_counter_loop)]
    for _ in 0..cfg.background_jobs {
        let rack = other_racks[rng.gen_range(0..other_racks.len())];
        let mut nodes: Vec<String> = layout.nodes_of(rack).to_vec();
        nodes.shuffle(&mut rng);
        let want = rng.gen_range(cfg.nodes_per_job.0..=cfg.nodes_per_job.1);
        let run_secs = rng.gen_range(cfg.job_secs.0..=cfg.job_secs.1);
        let earliest = cfg
            .start
            .add_secs(rng.gen_range(0..cfg.duration_secs / 2) as f64);
        let alloc: Vec<String> = nodes.into_iter().take(want).collect();
        let start = alloc
            .iter()
            .filter_map(|n| free_at.get(n))
            .max()
            .copied()
            .unwrap_or(earliest)
            .max(earliest);
        let end = start.add_secs(run_secs as f64);
        if end > cfg.start.add_secs(cfg.duration_secs as f64) {
            continue;
        }
        for n in &alloc {
            free_at.insert(n.clone(), end);
        }
        jobs.push(Job {
            id: next_id,
            app: background[rng.gen_range(0..background.len())],
            nodes: alloc,
            span: TimeSpan::new(start, end),
        });
        next_id += 1;
    }
    jobs
}

/// A back-to-back run sequence on a fixed node set (the second DAT's
/// 3×mg.C then 3×prime95 workloads, §7.3).
pub fn dat2_schedule(nodes: &[String], start: Timestamp, run_secs: i64, gap_secs: i64) -> Vec<Job> {
    let mut jobs = Vec::new();
    let mut t = start;
    let apps = [
        Workload::MgC,
        Workload::MgC,
        Workload::MgC,
        Workload::Prime95,
        Workload::Prime95,
        Workload::Prime95,
    ];
    for (i, app) in apps.into_iter().enumerate() {
        let end = t.add_secs(run_secs as f64);
        jobs.push(Job {
            id: 2000 + i as u64,
            app,
            nodes: nodes.to_vec(),
            span: TimeSpan::new(t, end),
        });
        t = end.add_secs(gap_secs as f64);
    }
    jobs
}

/// Render a schedule as the SLURM-flavoured job queue log dataset.
pub fn job_log_dataset(ctx: &ExecCtx, jobs: &[Job], partitions: usize) -> SjDataset {
    let schema = Schema::new(vec![
        FieldDef::new("job", FieldSemantics::domain("job", "job-id")),
        FieldDef::new("job_name", FieldSemantics::value("application", "app-name")),
        FieldDef::new(
            "nodelist",
            FieldSemantics::domain("compute-node", "node-list"),
        ),
        FieldDef::new("elapsed", FieldSemantics::value("time", "t-seconds")),
        FieldDef::new("timespan", FieldSemantics::domain("time", "timespan")),
    ])
    .expect("job log schema");
    let rows: Vec<Row> = jobs
        .iter()
        .map(|j| {
            Row::new(vec![
                Value::str(j.id.to_string()),
                Value::str(j.app.name()),
                Value::list(j.nodes.iter().map(Value::str)),
                Value::Float(j.elapsed_secs()),
                Value::Span(j.span),
            ])
        })
        .collect();
    SjDataset::from_rows(ctx, rows, schema, "job_queue_log", partitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> FacilityLayout {
        FacilityLayout::regular(4, 8)
    }

    #[test]
    fn dat1_schedule_pins_amg() {
        let cfg = ScheduleConfig::default();
        let jobs = dat1_schedule(&layout(), "rack2", 6, &cfg);
        let amg: Vec<&Job> = jobs.iter().filter(|j| j.app == Workload::Amg).collect();
        assert_eq!(amg.len(), 1);
        assert_eq!(amg[0].nodes.len(), 6);
        assert!(amg[0]
            .nodes
            .iter()
            .all(|n| layout().rack_of(n) == Some("rack2")));
        // No background job lands on the AMG rack.
        for j in jobs.iter().filter(|j| j.app != Workload::Amg) {
            assert!(j.nodes.iter().all(|n| layout().rack_of(n) != Some("rack2")));
        }
    }

    #[test]
    fn dat1_schedule_has_no_node_overlap() {
        let cfg = ScheduleConfig::default();
        let jobs = dat1_schedule(&layout(), "rack0", 4, &cfg);
        for (i, a) in jobs.iter().enumerate() {
            for b in &jobs[i + 1..] {
                let share_node = a.nodes.iter().any(|n| b.nodes.contains(n));
                if share_node {
                    let overlap = a.span.start < b.span.end && b.span.start < a.span.end;
                    assert!(!overlap, "jobs {} and {} overlap on a node", a.id, b.id);
                }
            }
        }
    }

    #[test]
    fn dat1_schedule_is_deterministic() {
        let cfg = ScheduleConfig::default();
        let a = dat1_schedule(&layout(), "rack1", 4, &cfg);
        let b = dat1_schedule(&layout(), "rack1", 4, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn dat2_schedule_orders_mgc_before_prime95() {
        let nodes = vec!["cab0".to_string(), "cab1".to_string()];
        let start = Timestamp::from_secs(0);
        let jobs = dat2_schedule(&nodes, start, 600, 60);
        assert_eq!(jobs.len(), 6);
        assert!(jobs[..3].iter().all(|j| j.app == Workload::MgC));
        assert!(jobs[3..].iter().all(|j| j.app == Workload::Prime95));
        for pair in jobs.windows(2) {
            assert!(pair[0].span.end <= pair[1].span.start);
        }
    }

    #[test]
    fn progress_tracks_span() {
        let j = Job {
            id: 1,
            app: Workload::Amg,
            nodes: vec![],
            span: TimeSpan::new(Timestamp::from_secs(0), Timestamp::from_secs(100)),
        };
        assert_eq!(j.progress_at(Timestamp::from_secs(50)), Some(0.5));
        assert_eq!(j.progress_at(Timestamp::from_secs(100)), None);
        assert_eq!(j.elapsed_secs(), 100.0);
    }

    #[test]
    fn job_log_dataset_has_compound_cells() {
        let ctx = ExecCtx::local();
        let jobs = dat2_schedule(
            &["cab0".to_string(), "cab1".to_string()],
            Timestamp::from_secs(0),
            60,
            0,
        );
        let ds = job_log_dataset(&ctx, &jobs, 2);
        assert_eq!(ds.count().unwrap(), 6);
        let row = &ds.head(1).unwrap()[0];
        assert_eq!(row.get(2).as_list().unwrap().len(), 2);
        assert!(row.get(4).as_span().is_some());
        ds.validate(&sjcore::SemanticDictionary::default_hpc())
            .unwrap();
    }
}
