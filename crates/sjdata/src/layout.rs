//! Node/rack layout: the static facility topology (§7.1).
//!
//! "Which nodes reside on which racks" is the glue information that lets
//! ScrubJay attribute node-level activity to rack-level sensors. The paper
//! obtained it from a facility administrator as a table; we generate it.

use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, Value};
use sjdf::ExecCtx;
use std::collections::HashMap;

/// The facility topology: racks, each holding a fixed set of nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilityLayout {
    racks: Vec<(String, Vec<String>)>,
    node_to_rack: HashMap<String, String>,
}

/// Node name for a global node index (Cab-style `cabN`).
pub fn node_name(i: usize) -> String {
    format!("cab{i}")
}

/// Rack name for a rack index.
pub fn rack_name(i: usize) -> String {
    format!("rack{i}")
}

impl FacilityLayout {
    /// A regular layout: `racks` racks of `nodes_per_rack` nodes each.
    pub fn regular(racks: usize, nodes_per_rack: usize) -> Self {
        let mut out = Vec::with_capacity(racks);
        let mut node_to_rack = HashMap::new();
        for r in 0..racks {
            let rname = rack_name(r);
            let nodes: Vec<String> = (0..nodes_per_rack)
                .map(|n| node_name(r * nodes_per_rack + n))
                .collect();
            for n in &nodes {
                node_to_rack.insert(n.clone(), rname.clone());
            }
            out.push((rname, nodes));
        }
        FacilityLayout {
            racks: out,
            node_to_rack,
        }
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_to_rack.len()
    }

    /// All rack names in order.
    pub fn rack_names(&self) -> impl Iterator<Item = &str> {
        self.racks.iter().map(|(r, _)| r.as_str())
    }

    /// Nodes on one rack.
    pub fn nodes_of(&self, rack: &str) -> &[String] {
        self.racks
            .iter()
            .find(|(r, _)| r == rack)
            .map(|(_, ns)| ns.as_slice())
            .unwrap_or(&[])
    }

    /// All node names in rack order.
    pub fn all_nodes(&self) -> impl Iterator<Item = &str> {
        self.racks
            .iter()
            .flat_map(|(_, ns)| ns.iter().map(String::as_str))
    }

    /// Rack hosting a node, if known.
    pub fn rack_of(&self, node: &str) -> Option<&str> {
        self.node_to_rack.get(node).map(String::as_str)
    }

    /// The layout as a ScrubJay dataset (node, rack) — note the column is
    /// deliberately named `NODEID` as real administrator exports are,
    /// exercising the dictionary's synonym handling.
    pub fn dataset(&self, ctx: &ExecCtx, partitions: usize) -> SjDataset {
        let schema = Schema::new(vec![
            FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
            FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
        ])
        .expect("layout schema");
        let rows: Vec<Row> = self
            .racks
            .iter()
            .flat_map(|(rack, nodes)| {
                nodes
                    .iter()
                    .map(move |n| Row::new(vec![Value::str(n), Value::str(rack)]))
            })
            .collect();
        SjDataset::from_rows(ctx, rows, schema, "node_layout", partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_layout_partitions_nodes() {
        let l = FacilityLayout::regular(4, 8);
        assert_eq!(l.num_racks(), 4);
        assert_eq!(l.num_nodes(), 32);
        assert_eq!(l.nodes_of("rack2").len(), 8);
        assert_eq!(l.rack_of("cab16"), Some("rack2"));
        assert_eq!(l.rack_of("nope"), None);
    }

    #[test]
    fn nodes_are_globally_unique() {
        let l = FacilityLayout::regular(3, 5);
        let mut names: Vec<&str> = l.all_nodes().collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 15);
    }

    #[test]
    fn dataset_round_trips() {
        let ctx = ExecCtx::local();
        let l = FacilityLayout::regular(2, 3);
        let ds = l.dataset(&ctx, 2);
        assert_eq!(ds.count().unwrap(), 6);
        let rows = ds.collect().unwrap();
        for r in rows {
            let node = r.get(0).as_str().unwrap();
            let rack = r.get(1).as_str().unwrap();
            assert_eq!(l.rack_of(node), Some(rack));
        }
    }
}
