//! Synthetic join workloads for the Figure 3 performance study.
//!
//! The paper's scaling study times the two most expensive derivations —
//! Natural Join and Interpolation Join — on synthetic row sweeps (2 M to
//! 40 M rows) over the 10-node cluster. These generators build pairs of
//! datasets with controlled row counts, key cardinalities, and time
//! densities, using [`sjdf::Rdd::generate`] so rows are produced inside
//! the partitions rather than on the driver.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sjcore::{
    Column, ColumnData, ColumnarPartition, FieldDef, FieldSemantics, Row, Schema, SjDataset,
    Timestamp, Validity, Value,
};
use sjdf::{ExecCtx, Rdd};
use std::sync::Arc;

/// Parameters for the Figure 3 workloads.
#[derive(Debug, Clone)]
pub struct JoinWorkload {
    /// Rows in each input dataset.
    pub rows: usize,
    /// Distinct node identifiers (join-key cardinality).
    pub nodes: usize,
    /// Time range covered by the samples, in seconds.
    pub time_range_secs: i64,
    /// Partitions per dataset.
    pub partitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JoinWorkload {
    fn default() -> Self {
        JoinWorkload {
            rows: 100_000,
            nodes: 1_000,
            time_range_secs: 4 * 3600,
            partitions: 8,
            seed: 42,
        }
    }
}

fn left_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("power", FieldSemantics::value("power", "watts")),
    ])
    .expect("left schema")
}

pub(crate) fn right_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .expect("right schema")
}

/// The node-name dictionary shared by the columnar generators: codes are
/// node indices, so `dict[code]` reproduces exactly the strings the
/// rowwise generator formats per row.
pub(crate) fn node_dict(nodes: usize) -> Vec<Arc<str>> {
    (0..nodes).map(|i| Arc::from(format!("cab{i}"))).collect()
}

fn gen_rows(
    ctx: &ExecCtx,
    w: &JoinWorkload,
    seed_salt: u64,
    exact_times: bool,
    schema: Schema,
    name: &str,
) -> SjDataset {
    let rows = w.rows;
    let nodes = w.nodes.max(1);
    let range = w.time_range_secs.max(1);
    let parts = w.partitions.max(1);
    let per_part = rows.div_ceil(parts);
    let seed = w.seed ^ seed_salt;
    // One row's draws, in a fixed order shared by both representations.
    let sample = move |rng: &mut ChaCha8Rng| {
        let node = rng.gen_range(0..nodes);
        let secs = rng.gen_range(0..range);
        let t = if exact_times {
            // Snap to 60 s boundaries so both sides share exact
            // timestamps (the natural-join workload).
            Timestamp::from_secs(secs - secs % 60)
        } else {
            Timestamp::from_micros(secs * 1_000_000 + rng.gen_range(0..1_000_000))
        };
        (node, t, rng.gen_range(0.0..100.0f64))
    };
    if ctx.columnar() {
        // Generate straight into typed columns — no per-row `Value`
        // boxing on the columnar ingest path.
        let rdd = Rdd::generate(ctx, parts, move |p| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(p as u64));
            let count = per_part.min(rows.saturating_sub(p * per_part));
            let mut codes = Vec::with_capacity(count);
            let mut times = Vec::with_capacity(count);
            let mut vals = Vec::with_capacity(count);
            for _ in 0..count {
                let (node, t, v) = sample(&mut rng);
                codes.push(node as u32);
                times.push(t.as_micros());
                vals.push(v);
            }
            vec![ColumnarPartition::from_columns(vec![
                Column::from_parts(
                    ColumnData::Str {
                        codes,
                        dict: node_dict(nodes),
                    },
                    Validity::all_valid(count),
                ),
                Column::from_parts(ColumnData::Time(times), Validity::all_valid(count)),
                Column::from_parts(ColumnData::Float(vals), Validity::all_valid(count)),
            ])]
        });
        return SjDataset::from_batches(rdd, schema, name);
    }
    let rdd = Rdd::generate(ctx, parts, move |p| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(p as u64));
        let count = per_part.min(rows.saturating_sub(p * per_part));
        (0..count)
            .map(|_| {
                let (node, t, v) = sample(&mut rng);
                Row::new(vec![
                    Value::str(format!("cab{node}")),
                    Value::Time(t),
                    Value::Float(v),
                ])
            })
            .collect()
    });
    SjDataset::new(rdd, schema, name)
}

/// Two datasets sharing (node, time) domains with *exactly matching*
/// timestamps — the Natural Join workload of Figure 3 (left/top).
pub fn natural_join_inputs(ctx: &ExecCtx, w: &JoinWorkload) -> (SjDataset, SjDataset) {
    (
        gen_rows(ctx, w, 0x1EF7, true, left_schema(), "nj_left"),
        gen_rows(ctx, w, 0x819B7, true, right_schema(), "nj_right"),
    )
}

/// Two datasets sharing (node, time) domains with *continuous* timestamps
/// requiring windowed matching — the Interpolation Join workload of
/// Figure 3 (bottom).
pub fn interp_join_inputs(ctx: &ExecCtx, w: &JoinWorkload) -> (SjDataset, SjDataset) {
    (
        gen_rows(ctx, w, 0x1EF7, false, left_schema(), "ij_left"),
        gen_rows(ctx, w, 0x819B7, false, right_schema(), "ij_right"),
    )
}

pub(crate) fn counters_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
        FieldDef::new(
            "instr",
            FieldSemantics::value("instructions", "instructions-count"),
        ),
        FieldDef::new("cycles", FieldSemantics::value("cycles", "cycles-count")),
        FieldDef::new(
            "memr",
            FieldSemantics::value("memory-reads", "memory-reads-count"),
        ),
        FieldDef::new(
            "memw",
            FieldSemantics::value("memory-writes", "memory-writes-count"),
        ),
    ])
    .expect("counters schema")
}

/// Inputs for the execute-path kernel bench: a left dataset of four
/// cumulative hardware counters per `(node, time)` sample (grist for
/// [`DeriveRate`](sjcore::derivations::transform)) and a right dataset of
/// continuous temperature readings for the interpolation join. Counters
/// grow roughly linearly in time per node, with occasional resets so the
/// rate kernel's reset handling is exercised at scale.
pub fn rate_pipeline_inputs(ctx: &ExecCtx, w: &JoinWorkload) -> (SjDataset, SjDataset) {
    let rows = w.rows;
    let nodes = w.nodes.max(1);
    let range = w.time_range_secs.max(1);
    let parts = w.partitions.max(1);
    let per_part = rows.div_ceil(parts);
    let seed = w.seed ^ 0xC0_47;
    // One sample's draws, in a fixed order shared by both representations.
    let sample = move |rng: &mut ChaCha8Rng| {
        let node = rng.gen_range(0..nodes);
        let secs = rng.gen_range(0..range);
        let t = secs * 1_000_000 + rng.gen_range(0..1_000_000);
        let reset = rng.gen_range(0..100) < 2;
        let mut counter = |per_sec: i64| {
            if reset {
                rng.gen_range(0..1_000)
            } else {
                secs * per_sec + rng.gen_range(0..per_sec.max(1))
            }
        };
        let instr = counter(2_000_000);
        let cycles = counter(2_600_000);
        let memr = counter(400_000);
        let memw = counter(150_000);
        (node, t, [instr, cycles, memr, memw])
    };
    let counters = if ctx.columnar() {
        // Typed-column generation: the ingest itself is columnar, so the
        // execute path never sees a boxed row.
        let rdd = Rdd::generate(ctx, parts, move |p| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(p as u64));
            let count = per_part.min(rows.saturating_sub(p * per_part));
            let mut codes = Vec::with_capacity(count);
            let mut times = Vec::with_capacity(count);
            let mut ctrs: [Vec<i64>; 4] = std::array::from_fn(|_| Vec::with_capacity(count));
            for _ in 0..count {
                let (node, t, cs) = sample(&mut rng);
                codes.push(node as u32);
                times.push(t);
                for (col, c) in ctrs.iter_mut().zip(cs) {
                    col.push(c);
                }
            }
            let mut columns = vec![
                Column::from_parts(
                    ColumnData::Str {
                        codes,
                        dict: node_dict(nodes),
                    },
                    Validity::all_valid(count),
                ),
                Column::from_parts(ColumnData::Time(times), Validity::all_valid(count)),
            ];
            columns.extend(
                ctrs.into_iter()
                    .map(|c| Column::from_parts(ColumnData::Int(c), Validity::all_valid(count))),
            );
            vec![ColumnarPartition::from_columns(columns)]
        });
        SjDataset::from_batches(rdd, counters_schema(), "papi_counters")
    } else {
        let rdd = Rdd::generate(ctx, parts, move |p| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(p as u64));
            let count = per_part.min(rows.saturating_sub(p * per_part));
            (0..count)
                .map(|_| {
                    let (node, t, [instr, cycles, memr, memw]) = sample(&mut rng);
                    Row::new(vec![
                        Value::str(format!("cab{node}")),
                        Value::Time(Timestamp::from_micros(t)),
                        Value::Int(instr),
                        Value::Int(cycles),
                        Value::Int(memr),
                        Value::Int(memw),
                    ])
                })
                .collect()
        });
        SjDataset::new(rdd, counters_schema(), "papi_counters")
    };
    let readings = gen_rows(ctx, w, 0x5EA5, false, right_schema(), "coolant");
    (counters, readings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
    use sjcore::derivations::Combination;
    use sjcore::SemanticDictionary;

    fn small() -> JoinWorkload {
        JoinWorkload {
            rows: 2_000,
            nodes: 20,
            time_range_secs: 600,
            partitions: 4,
            seed: 7,
        }
    }

    #[test]
    fn generators_hit_requested_row_counts() {
        let ctx = ExecCtx::local();
        let (l, r) = natural_join_inputs(&ctx, &small());
        assert_eq!(l.count().unwrap(), 2_000);
        assert_eq!(r.count().unwrap(), 2_000);
        l.validate(&SemanticDictionary::default_hpc()).unwrap();
        r.validate(&SemanticDictionary::default_hpc()).unwrap();
    }

    #[test]
    fn natural_join_workload_produces_matches() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let (l, r) = natural_join_inputs(&ctx, &small());
        let out = NaturalJoin.apply(&l, &r, &dict).unwrap();
        assert!(out.count().unwrap() > 0);
    }

    #[test]
    fn interp_join_workload_produces_matches() {
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let (l, r) = interp_join_inputs(&ctx, &small());
        let out = InterpolationJoin::new(30.0).apply(&l, &r, &dict).unwrap();
        assert!(out.count().unwrap() > 0);
    }

    #[test]
    fn rate_pipeline_workload_supports_rate_then_interp() {
        use sjcore::derivations::transform::DeriveRate;
        use sjcore::derivations::Transformation;
        let ctx = ExecCtx::local();
        let dict = SemanticDictionary::default_hpc();
        let (counters, readings) = rate_pipeline_inputs(&ctx, &small());
        let rates = DeriveRate::new(1.0).apply(&counters, &dict).unwrap();
        assert!(rates.schema().has_column("instr_rate"));
        let out = InterpolationJoin::new(30.0)
            .apply(&rates, &readings, &dict)
            .unwrap();
        assert!(out.count().unwrap() > 0);
    }

    #[test]
    fn workload_is_deterministic() {
        let ctx = ExecCtx::local();
        let (a, _) = interp_join_inputs(&ctx, &small());
        let (b, _) = interp_join_inputs(&ctx, &small());
        assert_eq!(a.collect().unwrap(), b.collect().unwrap());
    }

    #[test]
    fn row_count_scales_linearly() {
        let ctx = ExecCtx::local();
        let mut w = small();
        w.rows = 4_000;
        let (l, _) = natural_join_inputs(&ctx, &w);
        assert_eq!(l.count().unwrap(), 4_000);
    }
}
