//! The coupled facility model.
//!
//! Ties the static layout and the job schedule into time-varying physical
//! state: which job runs on a node at an instant, how much heat a rack's
//! workload pushes into the hot aisle, and what the node/CPU activity
//! levels are. The monitoring-source generators in [`crate::sources`]
//! sample this model (with noise) the way real sensors sample a real
//! machine room.

use crate::jobs::Job;
use crate::layout::FacilityLayout;
use crate::workloads::Workload;
use sjcore::Timestamp;

/// The simulated facility: topology plus schedule.
#[derive(Debug, Clone)]
pub struct Facility {
    layout: FacilityLayout,
    jobs: Vec<Job>,
}

impl Facility {
    /// Couple a layout with a schedule.
    pub fn new(layout: FacilityLayout, jobs: Vec<Job>) -> Self {
        Facility { layout, jobs }
    }

    /// The facility topology.
    pub fn layout(&self) -> &FacilityLayout {
        &self.layout
    }

    /// The job schedule.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The job active on `node` at `t` (with its run progress), if any.
    pub fn activity(&self, node: &str, t: Timestamp) -> Option<(&Job, f64)> {
        self.jobs.iter().find_map(|j| {
            if !j.nodes.iter().any(|n| n == node) {
                return None;
            }
            j.progress_at(t).map(|frac| (j, frac))
        })
    }

    /// The workload on `node` at `t`, if any.
    pub fn workload_on(&self, node: &str, t: Timestamp) -> Option<(Workload, f64)> {
        self.activity(node, t).map(|(j, frac)| (j.app, frac))
    }

    /// Aggregate heat load on a rack at `t`: mean per-active-node heat
    /// delta, scaled by the fraction of the rack's nodes that are busy.
    /// This is what separates the hot aisle from the cold aisle.
    pub fn rack_heat_load(&self, rack: &str, t: Timestamp) -> f64 {
        let nodes = self.layout.nodes_of(rack);
        if nodes.is_empty() {
            return 0.0;
        }
        let total: f64 = nodes
            .iter()
            .filter_map(|n| self.workload_on(n, t))
            .map(|(w, frac)| w.heat_delta(frac))
            .sum();
        total / nodes.len() as f64
    }

    /// Sensor positions: vertical location name and its heat exposure
    /// factor (heat rises — top sensors read hotter).
    pub fn sensor_locations() -> [(&'static str, f64); 3] {
        [("bottom", 0.8), ("middle", 1.0), ("top", 1.25)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::dat2_schedule;
    use sjcore::TimeSpan;

    fn facility() -> Facility {
        let layout = FacilityLayout::regular(2, 4);
        let jobs = vec![Job {
            id: 1,
            app: Workload::Amg,
            nodes: vec!["cab0".into(), "cab1".into()],
            span: TimeSpan::new(Timestamp::from_secs(100), Timestamp::from_secs(200)),
        }];
        Facility::new(layout, jobs)
    }

    #[test]
    fn activity_respects_schedule_and_allocation() {
        let f = facility();
        assert!(f.activity("cab0", Timestamp::from_secs(150)).is_some());
        assert!(f.activity("cab0", Timestamp::from_secs(50)).is_none());
        assert!(f.activity("cab2", Timestamp::from_secs(150)).is_none());
        let (w, frac) = f.workload_on("cab1", Timestamp::from_secs(150)).unwrap();
        assert_eq!(w, Workload::Amg);
        assert!((frac - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rack_heat_load_scales_with_busy_nodes() {
        let f = facility();
        // rack0 has 2 of 4 nodes busy at t=150.
        let load = f.rack_heat_load("rack0", Timestamp::from_secs(150));
        let expected = 2.0 * Workload::Amg.heat_delta(0.5) / 4.0;
        assert!((load - expected).abs() < 1e-9);
        // Idle rack produces no load.
        assert_eq!(f.rack_heat_load("rack1", Timestamp::from_secs(150)), 0.0);
        // Idle time produces no load.
        assert_eq!(f.rack_heat_load("rack0", Timestamp::from_secs(10)), 0.0);
    }

    #[test]
    fn dat2_sequence_activity_transitions() {
        let nodes: Vec<String> = vec!["cab0".into()];
        let jobs = dat2_schedule(&nodes, Timestamp::from_secs(0), 100, 10);
        let f = Facility::new(FacilityLayout::regular(1, 1), jobs);
        assert_eq!(
            f.workload_on("cab0", Timestamp::from_secs(50)).unwrap().0,
            Workload::MgC
        );
        // In the gap between runs: idle.
        assert!(f.workload_on("cab0", Timestamp::from_secs(105)).is_none());
        // Fourth run (index 3) is prime95: starts at 3*(110) = 330.
        assert_eq!(
            f.workload_on("cab0", Timestamp::from_secs(380)).unwrap().0,
            Workload::Prime95
        );
    }

    #[test]
    fn sensor_locations_order_heat_exposure() {
        let locs = Facility::sensor_locations();
        assert!(locs[0].1 < locs[1].1 && locs[1].1 < locs[2].1);
    }
}
