//! Wire-transport throughput: the same hot query-response path over
//! the framed binary transport (sjwire, columnar payload codec) versus
//! the original JSON-lines transport, against one `sjserved` worker.
//!
//! The worker holds a single wide dataset and answers the identical
//! query from its result cache, so each round trip costs admission,
//! response encoding, the loopback socket, and client decoding — the
//! transport is the variable. Before the clock starts, a byte-identity
//! probe asserts both transports decode the same result (columns, rows,
//! row count, truncation) from the same server.
//!
//! The run asserts the binary transport clears the 2x throughput floor
//! over JSON-lines and writes both rates to `BENCH_wire.json` (the CI
//! `wire` job gates on >10% regression against the committed numbers).
//!
//! Custom harness (`harness = false`); does nothing unless `--bench` is
//! on the command line, matching the vendored criterion's behaviour.

use std::time::{Duration, Instant};

use sjcore::catalog::Catalog;
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::ExecCtx;
use sjserve::protocol::QuerySpec;
use sjserve::server::{serve, wait_ready};
use sjserve::service::{QueryService, ServiceConfig};
use sjserve::Client;

const ROWS: usize = 8_000;
const ITERS: usize = 150;
const SPEEDUP_FLOOR: f64 = 2.0;

fn service() -> QueryService {
    let ctx = ExecCtx::local();
    let schema = Schema::new(vec![
        FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("power", FieldSemantics::value("power", "watts")),
    ])
    .expect("bench schema");
    // Fully-qualified node locators, the shape real joined telemetry
    // rows take after derivation (hierarchical position, not a bare
    // hostname).
    let rows = (0..ROWS)
        .map(|i| {
            Row::new(vec![
                Value::str(format!(
                    "cluster-a/rack{:02}/chassis{}/board{}/node{i:05}/cpu{}",
                    i % 48,
                    i % 6,
                    i % 4,
                    i % 2,
                )),
                Value::Float(100.0 + (i as f64) * 0.125),
            ])
        })
        .collect();
    let dataset = SjDataset::from_rows(&ctx, rows, schema, "node_power", 1);
    let mut catalog = Catalog::default_hpc();
    catalog
        .register_dataset("node_power", dataset)
        .expect("register");
    QueryService::new(
        ctx,
        catalog,
        ServiceConfig {
            // The measurement targets the wire, not the executor: every
            // request after the warm-up is a result-cache hit.
            result_cache_bytes: 32 << 20,
            ..ServiceConfig::default()
        },
    )
}

fn spec() -> QuerySpec {
    let mut spec = QuerySpec::new(["compute-node"], ["power"]);
    spec.limit = Some(ROWS);
    spec
}

fn drive(client: &mut Client) -> f64 {
    // Warm-up: populate the result cache and fault in the code path.
    let warm = client.query(spec(), None).expect("warm-up query");
    assert_eq!(warm.result.as_ref().map(|r| r.rows.len()), Some(ROWS));
    let started = Instant::now();
    for i in 0..ITERS {
        let resp = client.query(spec(), None).expect("bench query");
        let result = resp.result.as_ref().expect("result");
        assert_eq!(result.rows.len(), ROWS, "iteration {i} lost rows");
        assert!(result.result_cache_hit, "iteration {i} missed the cache");
    }
    ITERS as f64 / started.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }

    let handle = serve(service(), "127.0.0.1:0").expect("bind worker");
    assert!(wait_ready(handle.addr, Duration::from_secs(5)));

    let mut binary = Client::connect_as(handle.addr, "bench").expect("binary connect");
    let mut json = Client::connect_json_as(handle.addr, "bench").expect("json connect");
    assert_eq!(binary.wire_info().codec, sjwire::CODEC_COLUMNAR);
    assert_eq!(json.wire_info().codec, sjwire::CODEC_JSON_LINES);

    // Byte-identity probe: both transports must decode the same answer.
    let b = binary.query(spec(), None).expect("binary probe");
    let j = json.query(spec(), None).expect("json probe");
    let (b, j) = (
        b.result.expect("binary result"),
        j.result.expect("json result"),
    );
    let identity_verified = b.columns == j.columns
        && b.rows == j.rows
        && b.row_count == j.row_count
        && b.truncated == j.truncated;
    assert!(identity_verified, "transports decoded different results");

    let json_qps = drive(&mut json);
    let binary_qps = drive(&mut binary);
    let speedup = binary_qps / json_qps;
    handle.stop();

    assert!(
        speedup >= SPEEDUP_FLOOR,
        "binary transport must clear {SPEEDUP_FLOOR}x JSON-lines throughput on the hot \
         path (got {speedup:.2}x: binary {binary_qps:.1} q/s vs json {json_qps:.1} q/s)"
    );

    let out_json = format!(
        "{{\n  \"bench\": \"wire_throughput\",\n  \"rows\": {ROWS},\n  \
         \"iters\": {ITERS},\n  \"json_qps\": {json_qps:.2},\n  \
         \"binary_qps\": {binary_qps:.2},\n  \"speedup\": {speedup:.2},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \"identity_verified\": {identity_verified}\n}}\n",
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(out, &out_json).expect("write BENCH_wire.json");
    println!(
        "wire_throughput: binary {binary_qps:.1} q/s vs json-lines {json_qps:.1} q/s \
         ({speedup:.2}x, floor {SPEEDUP_FLOOR}x) -> BENCH_wire.json"
    );
}
