//! §5.2 claim: the derivation engine answers queries "at interactive
//! rates" because the search runs over data semantics only (constant-time
//! schema checks, memoization, polynomial search).
//!
//! Measures `QueryEngine::solve` latency against catalogs of growing
//! size, plus the two case-study queries on their real DAT catalogs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrubjay_bench::{bench_ctx, synthetic_catalog};
use sjcore::engine::{Query, QueryEngine, QueryValue};
use sjdata::{dat1, dat2, Dat1Config, Dat2Config};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();

    let mut group = c.benchmark_group("query_latency_catalog_size");
    group.sample_size(20);
    for n in [2usize, 4, 8, 16, 32] {
        let catalog = synthetic_catalog(&ctx, n);
        let query = Query::new(
            ["node", "rack"],
            vec![QueryValue::dim("temperature"), QueryValue::dim("power")],
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // A fresh engine per iteration: measure cold-memo search.
                let engine = QueryEngine::new(&catalog);
                engine.solve(&query).expect("solvable")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("query_latency_case_studies");
    group.sample_size(20);
    let (cat1, _) = dat1(
        &ctx,
        &Dat1Config {
            racks: 6,
            nodes_per_rack: 4,
            amg_rack_index: 3,
            amg_nodes: 3,
            background_jobs: 4,
            duration_secs: 1800,
            ..Dat1Config::default()
        },
    )
    .expect("dat1");
    let rack_heat = Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    );
    group.bench_function("rack_heat_fig5", |b| {
        b.iter(|| QueryEngine::new(&cat1).solve(&rack_heat).expect("solvable"))
    });

    let (cat2, _) = dat2(
        &ctx,
        &Dat2Config {
            nodes: 1,
            cpus_per_node: 2,
            run_secs: 60,
            gap_secs: 10,
            sample_interval_secs: 5.0,
            ..Dat2Config::default()
        },
    )
    .expect("dat2");
    let throttle = Query::new(
        ["cpu", "node", "socket"],
        vec![
            QueryValue::dim("frequency"),
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::dim("power"),
        ],
    );
    group.bench_function("active_frequency_fig7", |b| {
        b.iter(|| QueryEngine::new(&cat2).solve(&throttle).expect("solvable"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
