//! Ablation: the §5.3 binning scheme vs the naive all-pairs baseline.
//!
//! The paper motivates the interpolation join by the unscalability of
//! computing all pairwise distances. Both implementations produce
//! identical results (property-tested); this bench shows the binned join
//! staying near-linear in rows while the naive join grows quadratically
//! on the same dense workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sjcore::derivations::combine::{InterpolationJoin, NaiveInterpolationJoin};
use sjcore::derivations::Combination;
use sjcore::SemanticDictionary;
use sjdata::synth::{interp_join_inputs, JoinWorkload};
use sjdf::{ClusterSpec, ExecCtx};

/// Low key-cardinality workload: with only a handful of distinct nodes,
/// the shared discrete domain barely fragments the problem, so the naive
/// join's all-pairs scan inside each group is genuinely quadratic — the
/// regime §5.3's scalability argument targets. (With many distinct keys,
/// small groups make the naive scan competitive; the binning scheme is
/// what keeps cost bounded when they are not.)
fn low_cardinality(rows: usize) -> JoinWorkload {
    JoinWorkload {
        rows,
        nodes: 2,
        time_range_secs: 4 * 3600,
        partitions: 8,
        seed: 42,
    }
}

/// A narrow window: few actual matches per element, so the naive join's
/// cost is dominated by the all-pairs distance checks the binning scheme
/// exists to avoid.
const NARROW_WINDOW_SECS: f64 = 5.0;

fn bench(c: &mut Criterion) {
    let dict = SemanticDictionary::default_hpc();
    let mut group = c.benchmark_group("ablation_interp_binning");
    group.sample_size(10);
    for rows in [4_000usize, 8_000, 16_000, 32_000, 64_000] {
        group.throughput(Throughput::Elements(rows as u64));
        for (label, naive) in [("binned", false), ("naive", true)] {
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, &rows| {
                b.iter_batched(
                    || {
                        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
                        interp_join_inputs(&ctx, &low_cardinality(rows))
                    },
                    |(l, r)| {
                        if naive {
                            NaiveInterpolationJoin::new(NARROW_WINDOW_SECS)
                                .apply(&l, &r, &dict)
                                .expect("join")
                                .count()
                                .expect("count")
                        } else {
                            InterpolationJoin::new(NARROW_WINDOW_SECS)
                                .apply(&l, &r, &dict)
                                .expect("join")
                                .count()
                                .expect("count")
                        }
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
