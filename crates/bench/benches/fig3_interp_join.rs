//! Figure 3c: Interpolation Join time vs input rows.
//!
//! Criterion measures the real binning interpolation join over a local
//! row sweep (linear in rows), and the setup prints the paper-scale
//! series — 2M to 40M rows on the 10-node virtual cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scrubjay_bench::{bench_ctx, interp_workload, INTERP_WINDOW_SECS};
use sjcore::derivations::combine::InterpolationJoin;
use sjcore::derivations::Combination;
use sjcore::SemanticDictionary;
use sjdata::synth::interp_join_inputs;
use sjdf::simtime::{estimate, scale_report, CostParams};
use sjdf::{ClusterSpec, ExecCtx};

fn print_paper_series() {
    let ctx = bench_ctx();
    let dict = SemanticDictionary::default_hpc();
    let calib = 40_000usize;
    let (l, r) = interp_join_inputs(&ctx, &interp_workload(calib));
    InterpolationJoin::new(INTERP_WINDOW_SECS)
        .apply(&l, &r, &dict)
        .expect("join")
        .count()
        .expect("count");
    let report = ctx.metrics.report();
    let cluster = ClusterSpec::paper_cluster();
    let params = CostParams::paper();
    eprintln!("\n# Figure 3c — Interpolation Join, 10 nodes x 32 cores (simulated)");
    eprintln!("# rows, seconds   [paper: ~10s @2M .. ~120s @40M, linear]");
    for rows in (2..=40).step_by(4).map(|m| m * 1_000_000usize) {
        let scaled = scale_report(&report, rows as f64 / calib as f64);
        eprintln!(
            "{rows}, {:.2}",
            estimate(&scaled, &cluster, &params).total()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_paper_series();
    let dict = SemanticDictionary::default_hpc();
    let mut group = c.benchmark_group("fig3c_interp_join_rows");
    group.sample_size(10);
    for rows in [5_000usize, 10_000, 20_000, 40_000] {
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, &rows| {
            b.iter_batched(
                || {
                    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
                    interp_join_inputs(&ctx, &interp_workload(rows))
                },
                |(l, r)| {
                    InterpolationJoin::new(INTERP_WINDOW_SECS)
                        .apply(&l, &r, &dict)
                        .expect("join")
                        .count()
                        .expect("count")
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
