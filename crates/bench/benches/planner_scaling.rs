//! Planner scaling benchmark: the constraint-guided planner against the
//! legacy widening search on rare-dimension catalogs.
//!
//! The sweep builds [`planner_catalog`]s of growing size — each zone
//! dimension lives in ~2 datasets, each metric in ~4, mirroring real
//! sites where any one query touches a sliver of the catalog — and
//! times a fixed batch of distinct queries per engine. The legacy
//! planner saturates and orders every registered dataset per solve, so
//! its batch time grows linearly with catalog size; the constraint
//! planner proposes candidates from the (engine-cached) catalog index
//! and only ever touches datasets a constraint confirms, so its batch
//! time should be nearly flat.
//!
//! The run asserts:
//!
//! * a parity probe — both planners produce identical plan
//!   fingerprints for every query at every size;
//! * the constraint planner's growth from the smallest to the largest
//!   catalog is sub-linear: strictly under half the legacy growth;
//! * the constraint planner beats legacy outright at the largest size.
//!
//! Results land in `BENCH_planner.json` (committed; CI re-runs the
//! bench and fails on a >10% regression of the headline speedup).
//! Custom harness (`harness = false`); does nothing unless `--bench`
//! is on the command line.

use scrubjay_bench::{bench_ctx, planner_catalog};
use sjcore::catalog::Catalog;
use sjcore::engine::{EngineConfig, PlannerKind, Query, QueryEngine, QueryValue};
use std::time::Instant;

const SIZES: [usize; 3] = [50, 250, 1000];
const QUERIES: usize = 200;
const EVALS: usize = 9;

/// The query batch for a catalog of `n` datasets: `QUERIES` distinct
/// single-zone queries spread evenly across the catalog, each solvable
/// by the dataset recording that zone's metric.
fn batch(n: usize) -> Vec<Query> {
    let (zones, metrics) = ((n / 2).max(1), (n / 4).max(1));
    (0..QUERIES)
        .map(|j| {
            let i = j * n / QUERIES;
            Query {
                domains: vec![format!("zone-{}", i % zones)],
                values: vec![QueryValue::dim(&format!("metric-{}", i % metrics))],
            }
        })
        .collect()
}

/// Wall time to solve the whole batch on one engine, in seconds. A
/// fresh engine per pass means the constraint planner's catalog index
/// is rebuilt once per batch and amortized across its queries — the
/// deployment shape (sjserve holds one engine config per catalog
/// epoch, solving many queries).
fn batch_secs(catalog: &Catalog, planner: PlannerKind, queries: &[Query]) -> f64 {
    let start = Instant::now();
    let engine = QueryEngine::with_config(
        catalog,
        EngineConfig {
            planner,
            ..EngineConfig::default()
        },
    );
    for q in queries {
        engine.solve(q).expect("bench query must solve");
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-`EVALS` batch time. The batches are small (hundreds of
/// microseconds to tens of milliseconds), where the minimum is the
/// standard noise-robust estimator: every source of error — scheduler
/// preemption, cache eviction, frequency dips — only ever adds time.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let ctx = bench_ctx();

    let mut legacy_best = Vec::new();
    let mut constraint_best = Vec::new();
    for &n in &SIZES {
        let catalog = planner_catalog(&ctx, n);
        let queries = batch(n);

        // Parity probe before timing anything: identical fingerprints
        // on every query at this size.
        let fp = |planner: PlannerKind, q: &Query| {
            QueryEngine::with_config(
                &catalog,
                EngineConfig {
                    planner,
                    ..EngineConfig::default()
                },
            )
            .solve(q)
            .expect("parity probe query must solve")
            .fingerprint()
        };
        for q in &queries {
            assert_eq!(
                fp(PlannerKind::Legacy, q),
                fp(PlannerKind::Constraint, q),
                "planners diverged at n={n} on {}",
                q.describe()
            );
        }

        let legacy = best(
            (0..EVALS)
                .map(|_| batch_secs(&catalog, PlannerKind::Legacy, &queries))
                .collect(),
        );
        let constraint = best(
            (0..EVALS)
                .map(|_| batch_secs(&catalog, PlannerKind::Constraint, &queries))
                .collect(),
        );
        println!(
            "planner_scaling: n={n}: legacy {legacy:.4}s, constraint {constraint:.4}s \
             ({:.2}x) for {QUERIES} queries",
            legacy / constraint.max(1e-9)
        );
        legacy_best.push(legacy);
        constraint_best.push(constraint);
    }

    let legacy_growth = legacy_best[SIZES.len() - 1] / legacy_best[0].max(1e-9);
    let constraint_growth = constraint_best[SIZES.len() - 1] / constraint_best[0].max(1e-9);
    let speedup = legacy_best[SIZES.len() - 1] / constraint_best[SIZES.len() - 1].max(1e-9);
    assert!(
        constraint_growth < legacy_growth / 2.0,
        "constraint planner must scale sub-linearly vs legacy \
         (constraint grew {constraint_growth:.1}x, legacy {legacy_growth:.1}x \
         over a {}x catalog sweep)",
        SIZES[SIZES.len() - 1] / SIZES[0]
    );
    assert!(
        speedup > 1.0,
        "constraint planner must beat legacy at n={} ({speedup:.2}x)",
        SIZES[SIZES.len() - 1]
    );

    let fmt_series = |xs: &[f64]| {
        xs.iter()
            .map(|x| format!("{x:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"planner_scaling\",\n  \"catalog_sizes\": [{}],\n  \
         \"queries_per_size\": {QUERIES},\n  \"evals\": {EVALS},\n  \
         \"legacy_batch_best_secs\": [{}],\n  \
         \"constraint_batch_best_secs\": [{}],\n  \
         \"legacy_growth\": {legacy_growth:.2},\n  \
         \"constraint_growth\": {constraint_growth:.2},\n  \
         \"speedup\": {speedup:.2},\n  \"parity_probe\": \"pass\"\n}}\n",
        SIZES
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        fmt_series(&legacy_best),
        fmt_series(&constraint_best),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");
    std::fs::write(out, &json).expect("write BENCH_planner.json");
    println!(
        "planner_scaling: {speedup:.2}x at n={}, growth {constraint_growth:.1}x vs \
         legacy {legacy_growth:.1}x -> BENCH_planner.json",
        SIZES[SIZES.len() - 1]
    );
}
