//! Execute-path kernel benchmark: the columnar partition layout against
//! the rowwise baseline on the derive-rate → interpolation-join pipeline.
//!
//! Both modes run the *same* derivations over the *same* synthetic
//! counter/sensor inputs; the only difference is `ExecCtx` mode
//! (columnar batches by default, `with_rowwise()` for the baseline).
//! Each mode is timed end to end — dataset generation, rate derivation,
//! windowed join, count — for `EVALS` evaluations and reported as the
//! median. The run asserts:
//!
//! * a byte-identity probe — both modes produce exactly the same row
//!   set (compared through bit-exact `KeyAtom` encodings);
//! * the columnar path is at least 3x faster end to end.
//!
//! Results land in `BENCH_exec.json` (committed; see PERF.md for the
//! measurement protocol). Custom harness (`harness = false`); does
//! nothing unless `--bench` is on the command line.

use scrubjay_bench::bench_ctx;
use sjcore::derivations::combine::InterpolationJoin;
use sjcore::derivations::transform::DeriveRate;
use sjcore::derivations::{Combination, Transformation};
use sjcore::value::KeyAtom;
use sjcore::{SemanticDictionary, SjDataset, Value};
use sjdata::synth::{rate_pipeline_inputs, JoinWorkload};
use sjdf::ExecCtx;
use std::time::Instant;

const ROWS: usize = 30_000;
const EVALS: usize = 5;
const WINDOW_SECS: f64 = 30.0;

fn workload() -> JoinWorkload {
    JoinWorkload {
        rows: ROWS,
        nodes: 100,
        time_range_secs: ((ROWS as f64 * 0.18) as i64).max(600),
        partitions: 8,
        seed: 42,
    }
}

/// Build and fully evaluate the pipeline; returns the joined dataset.
fn pipeline(ctx: &ExecCtx, dict: &SemanticDictionary) -> SjDataset {
    let (counters, readings) = rate_pipeline_inputs(ctx, &workload());
    let rates = DeriveRate::new(1.0)
        .apply(&counters, dict)
        .expect("derive_rate");
    InterpolationJoin::new(WINDOW_SECS)
        .apply(&rates, &readings, dict)
        .expect("interpolation_join")
}

/// Median of `EVALS` end-to-end wall times, in seconds. The lineage is
/// rebuilt from scratch each evaluation so no shuffle cell or cache slot
/// survives between passes.
fn median_secs(ctx: &ExecCtx, dict: &SemanticDictionary) -> (f64, usize) {
    let mut times = Vec::with_capacity(EVALS);
    let mut rows = 0;
    for _ in 0..EVALS {
        let start = Instant::now();
        rows = pipeline(ctx, dict).count().expect("count");
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[EVALS / 2], rows)
}

/// Bit-exact canonical form of a dataset's rows.
fn canon(ds: &SjDataset) -> Vec<Vec<KeyAtom>> {
    let mut rows: Vec<Vec<KeyAtom>> = ds
        .collect()
        .expect("collect")
        .iter()
        .map(|r| r.values().iter().map(Value::key).collect())
        .collect();
    rows.sort();
    rows
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let dict = SemanticDictionary::default_hpc();

    // Byte-identity probe before timing anything.
    let columnar_ctx = bench_ctx();
    let rowwise_ctx = bench_ctx().with_rowwise();
    assert!(columnar_ctx.columnar() && !rowwise_ctx.columnar());
    let a = canon(&pipeline(&columnar_ctx, &dict));
    let b = canon(&pipeline(&rowwise_ctx, &dict));
    assert_eq!(a, b, "columnar and rowwise pipelines disagree");
    assert!(!a.is_empty(), "identity probe compared empty results");

    let (rowwise_median, rowwise_rows) = median_secs(&rowwise_ctx, &dict);
    let (columnar_median, columnar_rows) = median_secs(&columnar_ctx, &dict);
    assert_eq!(rowwise_rows, columnar_rows);

    let speedup = rowwise_median / columnar_median.max(1e-9);
    assert!(
        speedup >= 3.0,
        "columnar execute path must be at least 3x faster end to end \
         (rowwise {rowwise_median:.3}s, columnar {columnar_median:.3}s, {speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"exec_kernels\",\n  \"pipeline\": \"derive_rate+interpolation_join\",\n  \
         \"input_rows\": {},\n  \"output_rows\": {},\n  \"evals\": {},\n  \
         \"rowwise_median_secs\": {:.4},\n  \"columnar_median_secs\": {:.4},\n  \
         \"speedup\": {:.2},\n  \"identity_probe\": \"pass\"\n}}\n",
        ROWS * 2,
        columnar_rows,
        EVALS,
        rowwise_median,
        columnar_median,
        speedup,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(out, &json).expect("write BENCH_exec.json");
    println!(
        "exec_kernels: rowwise {rowwise_median:.3}s, columnar {columnar_median:.3}s \
         ({speedup:.2}x, {columnar_rows} rows) -> BENCH_exec.json"
    );
}
