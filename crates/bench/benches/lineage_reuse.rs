//! Lineage-reuse benchmark: the cost of re-evaluating a shuffle-bearing
//! lineage with and without [`Rdd::persist`].
//!
//! "Cold" rebuilds the lineage from scratch for every evaluation, so each
//! one pays the full shuffle. "Persisted" builds the lineage once, calls
//! `persist()`, and re-evaluates the same handle, so warm evaluations are
//! served from the stage cache. The run asserts the warm path is at least
//! 5x faster and performs zero shuffle-task work, then writes both rates
//! to `BENCH_lineage.json` so CI can archive the numbers.
//!
//! Custom harness (`harness = false`); does nothing unless `--bench` is
//! on the command line, matching the vendored criterion's behaviour.

use scrubjay_bench::bench_ctx;
use sjdf::{ExecCtx, Rdd};
use std::time::Instant;

const PARTS: usize = 8;
const PAIRS_PER_PART: u64 = 20_000;
const COLD_EVALS: usize = 5;
const WARM_EVALS: usize = 50;

/// The measured lineage: a generated pair source into a shuffle
/// (`reduce_by_key`) and a narrow map on the reduced side.
fn build_lineage(ctx: &ExecCtx) -> Rdd<(u64, u64)> {
    Rdd::generate(ctx, PARTS, |i| {
        let base = i as u64 * PAIRS_PER_PART;
        (base..base + PAIRS_PER_PART)
            .map(|x| (x % 512, x))
            .collect()
    })
    .reduce_by_key(PARTS, |a, b| a + b)
    .map(|(k, v)| (k, v / 2))
}

fn evals_per_sec(evals: usize, elapsed_secs: f64) -> f64 {
    evals as f64 / elapsed_secs.max(1e-9)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }

    // Cold: a fresh lineage per evaluation — every pass shuffles.
    let cold_ctx = bench_ctx();
    let expected = build_lineage(&cold_ctx).count().expect("warm-up eval");
    let start = Instant::now();
    for _ in 0..COLD_EVALS {
        let n = build_lineage(&cold_ctx).count().expect("cold eval");
        assert_eq!(n, expected);
    }
    let cold_rate = evals_per_sec(COLD_EVALS, start.elapsed().as_secs_f64());

    // Persisted: one lineage, one shuffle, warm re-evaluations after.
    let warm_ctx = bench_ctx();
    let persisted = build_lineage(&warm_ctx).persist();
    assert_eq!(persisted.count().expect("populating eval"), expected);
    let baseline = warm_ctx.metrics.report();
    let start = Instant::now();
    for _ in 0..WARM_EVALS {
        assert_eq!(persisted.count().expect("warm eval"), expected);
    }
    let warm_rate = evals_per_sec(WARM_EVALS, start.elapsed().as_secs_f64());
    let delta = warm_ctx.metrics.report().delta_since(&baseline);

    assert_eq!(
        delta.wide_ops(),
        0,
        "persisted re-evaluations must not reach the shuffle: {delta:?}"
    );
    assert!(
        delta.cache_hits > 0,
        "persisted re-evaluations must be served by the stage cache"
    );
    let speedup = warm_rate / cold_rate;
    assert!(
        speedup >= 5.0,
        "persist() must make re-evaluation at least 5x faster \
         (cold {cold_rate:.1}/s, persisted {warm_rate:.1}/s, {speedup:.1}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"lineage_reuse\",\n  \"pairs\": {},\n  \"partitions\": {},\n  \
         \"cold_evals_per_sec\": {:.3},\n  \"persisted_evals_per_sec\": {:.3},\n  \
         \"speedup\": {:.2},\n  \"warm_wide_ops\": {},\n  \"warm_cache_hits\": {}\n}}\n",
        PARTS as u64 * PAIRS_PER_PART,
        PARTS,
        cold_rate,
        warm_rate,
        speedup,
        delta.wide_ops(),
        delta.cache_hits,
    );
    // Anchor the output at the workspace root regardless of the cwd
    // cargo picked for the bench binary.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lineage.json");
    std::fs::write(out, &json).expect("write BENCH_lineage.json");
    println!(
        "lineage_reuse: cold {cold_rate:.1} evals/s, persisted {warm_rate:.1} evals/s \
         ({speedup:.1}x) -> BENCH_lineage.json"
    );
}
