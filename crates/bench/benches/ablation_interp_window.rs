//! Ablation: interpolation-join window sensitivity (§5.3).
//!
//! The window `W` bounds both match quality and cost: wider windows admit
//! more in-bin pairs (more quadratic work), narrower windows drop
//! matches. Sweeps W over the interp workload, reporting wall time;
//! match counts per W are printed by the setup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrubjay_bench::interp_workload;
use sjcore::derivations::combine::InterpolationJoin;
use sjcore::derivations::Combination;
use sjcore::SemanticDictionary;
use sjdata::synth::interp_join_inputs;
use sjdf::{ClusterSpec, ExecCtx};

const WINDOWS: [f64; 5] = [15.0, 30.0, 60.0, 120.0, 240.0];

fn bench(c: &mut Criterion) {
    let dict = SemanticDictionary::default_hpc();
    let rows = 20_000usize;

    eprintln!("\n# Interpolation-join window sensitivity ({rows} rows/side)");
    eprintln!("# W_secs, output_rows");
    for w in WINDOWS {
        let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
        let (l, r) = interp_join_inputs(&ctx, &interp_workload(rows));
        let n = InterpolationJoin::new(w)
            .apply(&l, &r, &dict)
            .expect("join")
            .count()
            .expect("count");
        eprintln!("{w}, {n}");
    }

    let mut group = c.benchmark_group("ablation_interp_window");
    group.sample_size(10);
    for w in WINDOWS {
        group.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter_batched(
                || {
                    let ctx = ExecCtx::new(ClusterSpec::new(1, 2).unwrap());
                    interp_join_inputs(&ctx, &interp_workload(rows))
                },
                |(l, r)| {
                    InterpolationJoin::new(w)
                        .apply(&l, &r, &dict)
                        .expect("join")
                        .count()
                        .expect("count")
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
