//! Figures 3b and 3d: strong scaling of both joins, 1–10 nodes.
//!
//! The node sweep cannot run physically on one machine; the setup prints
//! both simulated series (real local task metrics, costed per node
//! count), and criterion measures the end-to-end
//! measure-scale-estimate pipeline that produces them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrubjay_bench::{bench_ctx, interp_workload, natural_workload, INTERP_WINDOW_SECS};
use sjcore::derivations::combine::{InterpolationJoin, NaturalJoin};
use sjcore::derivations::Combination;
use sjcore::SemanticDictionary;
use sjdata::synth::{interp_join_inputs, natural_join_inputs};
use sjdf::metrics::MetricsReport;
use sjdf::simtime::{estimate, scale_report, CostParams};
use sjdf::ClusterSpec;

fn measure(join: &str, rows: usize) -> MetricsReport {
    let ctx = bench_ctx();
    let dict = SemanticDictionary::default_hpc();
    match join {
        "natural" => {
            let (l, r) = natural_join_inputs(&ctx, &natural_workload(rows));
            NaturalJoin
                .apply(&l, &r, &dict)
                .expect("join")
                .count()
                .expect("count");
        }
        _ => {
            let (l, r) = interp_join_inputs(&ctx, &interp_workload(rows));
            InterpolationJoin::new(INTERP_WINDOW_SECS)
                .apply(&l, &r, &dict)
                .expect("join")
                .count()
                .expect("count");
        }
    }
    ctx.metrics.report()
}

fn print_paper_series() {
    let params = CostParams::paper();
    let calib = 40_000usize;
    let base = ClusterSpec::paper_cluster();

    let nj = scale_report(&measure("natural", calib), 40_000_000.0 / calib as f64);
    eprintln!("\n# Figure 3b — Natural Join strong scaling, 40M rows (simulated)");
    eprintln!("# nodes, seconds   [paper: ~13s @1 node .. ~8.5s @10 nodes]");
    for nodes in 1..=10 {
        let t = estimate(&nj, &base.with_nodes(nodes), &params).total();
        eprintln!("{nodes}, {t:.2}");
    }

    let ij = scale_report(&measure("interp", calib), 16_000_000.0 / calib as f64);
    eprintln!("\n# Figure 3d — Interpolation Join strong scaling, 16M rows (simulated)");
    eprintln!("# nodes, seconds   [paper: ~240s @1 node .. ~45s @10 nodes]");
    for nodes in 1..=10 {
        let t = estimate(&ij, &base.with_nodes(nodes), &params).total();
        eprintln!("{nodes}, {t:.2}");
    }
}

fn bench(c: &mut Criterion) {
    print_paper_series();
    let mut group = c.benchmark_group("fig3bd_strong_scaling_pipeline");
    group.sample_size(10);
    for join in ["natural", "interp"] {
        group.bench_with_input(BenchmarkId::from_parameter(join), &join, |b, &join| {
            b.iter(|| {
                let report = measure(join, 10_000);
                let base = ClusterSpec::paper_cluster();
                let params = CostParams::paper();
                (1..=10)
                    .map(|n| estimate(&report, &base.with_nodes(n), &params).total())
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
