//! Shard-scaling throughput: the same catalog behind 1, 2, and 4
//! `sjserved` workers fronted by one router.
//!
//! Four single-value datasets (power, temperature, humidity,
//! utilization — all keyed by `compute-node`) are spread round-robin
//! over the workers; every worker runs a single scheduler thread with a
//! seeded per-task delay injected through the fault plan, so a query
//! costs real wall-clock on whichever shard executes it (modelling
//! remote I/O on a one-core container, where sleep overlap — not CPU
//! parallelism — is what a sharded deployment buys). Closed-loop
//! clients then drive two mixes through `Router::handle`:
//!
//! - **shardable**: single-value queries, each answered by one shard
//!   (the router's single-shard fast path), values rotated so the load
//!   spreads across the fleet;
//! - **cross-shard**: all four values at once, which no single worker
//!   can serve once the catalog is split — the router scatter-gathers
//!   and merges.
//!
//! Every request carries a distinct row limit so nothing rides the
//! router's result cache: each query is a real dispatch. The run
//! asserts the 4-worker shardable mix clears 2x the 1-worker aggregate
//! throughput, verifies the 4-way scatter-gather merge is byte-identical
//! to single-worker execution, and writes throughput and latency
//! percentiles per configuration to `BENCH_shard.json`.
//!
//! Custom harness (`harness = false`); does nothing unless `--bench` is
//! on the command line, matching the vendored criterion's behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sjcore::catalog::Catalog;
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::{ClusterSpec, ExecCtx, FaultPlan};
use sjroute::{Router, RouterConfig};
use sjserve::protocol::{QuerySpec, Request, Response};
use sjserve::scheduler::SchedulerConfig;
use sjserve::server::{serve, wait_ready, ServerHandle};
use sjserve::service::{QueryService, ServiceConfig};

const NODES: usize = 36;
const CLIENTS: usize = 8;
const TASK_DELAY: Duration = Duration::from_millis(5);
const SHARDABLE_QUERIES: usize = 240;
const CROSS_QUERIES: usize = 80;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// (dataset, value field, value dimension, units)
const DATASETS: [(&str, &str, &str, &str); 4] = [
    ("node_power", "power", "power", "watts"),
    ("node_temp", "temp", "temperature", "celsius"),
    ("node_humidity", "hum", "humidity", "percent-rh"),
    ("node_util", "util", "utilization", "percent-util"),
];

fn dataset(ctx: &ExecCtx, which: usize) -> SjDataset {
    let (name, field, dim, units) = DATASETS[which];
    let schema = Schema::new(vec![
        FieldDef::new("NODEID", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new(field, FieldSemantics::value(dim, units)),
    ])
    .expect("bench schema");
    let rows = (0..NODES)
        .map(|i| {
            Row::new(vec![
                Value::str(format!("cab{i}")),
                Value::Float(100.0 * (which + 1) as f64 + i as f64),
            ])
        })
        .collect();
    SjDataset::from_rows(ctx, rows, schema, name, 1)
}

/// Boot `n` workers, datasets assigned round-robin, each strictly
/// serialized (one scheduler thread) with the per-task delay injected.
fn boot_fleet(n: usize) -> (Vec<ServerHandle>, Router) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|w| {
            let ctx = ExecCtx::new(ClusterSpec::new(1, 1).expect("cluster spec"));
            let mut catalog = Catalog::default_hpc();
            for (which, (name, _, _, _)) in DATASETS.iter().enumerate() {
                if which % n == w {
                    catalog
                        .register_dataset(name, dataset(&ctx, which))
                        .expect("register");
                }
            }
            let service = QueryService::new(
                ctx,
                catalog,
                ServiceConfig {
                    scheduler: SchedulerConfig {
                        workers: 1,
                        max_queue: 512,
                        default_timeout: Duration::from_secs(30),
                    },
                    result_cache_bytes: 0,
                    shard_id: Some(format!("shard-{w}")),
                    faults: Some(FaultPlan::seeded(w as u64 + 1).with_delays(1.0, TASK_DELAY)),
                    ..ServiceConfig::default()
                },
            );
            let handle = serve(service, "127.0.0.1:0").expect("bind worker");
            assert!(wait_ready(handle.addr, Duration::from_secs(5)));
            handle
        })
        .collect();
    let addrs = handles.iter().map(|h| h.addr.to_string()).collect();
    let router = Router::new(
        addrs,
        RouterConfig {
            scheduler: SchedulerConfig {
                workers: CLIENTS,
                max_queue: 512,
                default_timeout: Duration::from_secs(30),
            },
            // No background probes mid-measurement.
            heartbeat: Duration::from_secs(600),
            ..RouterConfig::default()
        },
    )
    .expect("router boots");
    (handles, router)
}

/// A query nothing can cache: the limit is unique per request, so the
/// router must dispatch every single one.
fn query(seq: usize, values: &[&'static str]) -> Request {
    let mut spec = QuerySpec::new(["compute-node"], values.iter().copied());
    spec.limit = Some(10_000 + seq);
    Request::query(&format!("q{seq}"), "bench", spec)
}

struct MixResult {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Closed-loop clients hammer the router until `total` queries finish.
fn drive(
    router: &Router,
    total: usize,
    seq: &AtomicUsize,
    values_for: fn(usize) -> Vec<&'static str>,
) -> MixResult {
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let done = &done;
                let router = router.clone();
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let turn = done.fetch_add(1, Ordering::Relaxed);
                        if turn >= total {
                            break;
                        }
                        let s = seq.fetch_add(1, Ordering::Relaxed);
                        let values = values_for(s);
                        let at = Instant::now();
                        let resp = router.handle(query(s, &values));
                        assert!(resp.is_ok(), "bench query {s} failed: {:?}", resp.error);
                        assert_eq!(resp.result.as_ref().map(|r| r.row_count), Some(NODES));
                        mine.push(at.elapsed());
                    }
                    mine
                })
            })
            .collect();
        let mut all = Vec::with_capacity(total);
        for h in handles {
            all.extend(h.join().expect("bench client"));
        }
        all
    });
    let elapsed = started.elapsed();
    let mut sorted = latencies.clone();
    sorted.sort();
    let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize].as_secs_f64() * 1e3;
    MixResult {
        qps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
    }
}

/// Canonical bytes of a response's result, the router-merge way: same
/// canonicalization on both sides of a comparison.
fn canonical(resp: &Response) -> String {
    let mut result = resp.result.clone().expect("result");
    sjroute::merge::canonicalize(&mut result, &[]);
    sjroute::merge::canonical_csv(&result)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }

    let all_values: Vec<&str> = DATASETS.iter().map(|d| d.2).collect();
    let seq = Arc::new(AtomicUsize::new(0));
    let mut configs = Vec::new();
    let mut shardable_qps = Vec::new();
    let mut cross_qps = Vec::new();
    let mut reference: Option<String> = None;
    let mut cross_verified = true;

    for &n in &WORKER_COUNTS {
        let (handles, router) = boot_fleet(n);

        // Byte-identity check before the clock starts: the same
        // four-value query must canonicalize identically at every
        // fleet width (1 worker executes it whole; 4 scatter-gather).
        let mut probe = query(seq.fetch_add(1, Ordering::Relaxed), &all_values);
        probe.id = format!("probe-{n}");
        let resp = router.handle(probe);
        assert!(
            resp.is_ok(),
            "probe at {n} workers failed: {:?}",
            resp.error
        );
        let bytes = canonical(&resp);
        match &reference {
            None => reference = Some(bytes),
            Some(want) => cross_verified &= &bytes == want,
        }

        let shardable = drive(&router, SHARDABLE_QUERIES, &seq, |s| {
            vec![DATASETS[s % DATASETS.len()].2]
        });
        let cross = drive(&router, CROSS_QUERIES, &seq, |_| {
            DATASETS.iter().map(|d| d.2).collect()
        });
        let stats = router.shutdown();
        assert_eq!(stats.timeouts, 0, "bench queries timed out: {stats:?}");
        for handle in handles {
            handle.stop();
        }

        println!(
            "{n} worker(s): shardable {:.1} q/s (p99 {:.1}ms), cross-shard {:.1} q/s \
             (p99 {:.1}ms), {} scatter-gathered",
            shardable.qps, shardable.p99_ms, cross.qps, cross.p99_ms, stats.scatter_gather_queries
        );
        for (mix, r, total) in [
            ("shardable", &shardable, SHARDABLE_QUERIES),
            ("cross_shard", &cross, CROSS_QUERIES),
        ] {
            configs.push(format!(
                "    {{\"workers\": {n}, \"mix\": \"{mix}\", \"queries\": {total}, \
                 \"qps\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}",
                r.qps, r.p50_ms, r.p99_ms
            ));
        }
        shardable_qps.push(shardable.qps);
        cross_qps.push(cross.qps);
    }

    assert!(
        cross_verified,
        "scatter-gather bytes diverged from single-worker execution"
    );
    let shardable_speedup = shardable_qps[2] / shardable_qps[0];
    let cross_speedup = cross_qps[2] / cross_qps[0];
    assert!(
        shardable_speedup >= 2.0,
        "4 workers must clear 2x 1-worker throughput on the shardable mix \
         (got {shardable_speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"clients\": {CLIENTS},\n  \
         \"task_delay_ms\": {},\n  \"nodes\": {NODES},\n  \"configs\": [\n{}\n  ],\n  \
         \"shardable_speedup_4w\": {:.2},\n  \"cross_shard_speedup_4w\": {:.2},\n  \
         \"speedup_floor_4w\": 2.0,\n  \"cross_shard_verified\": {}\n}}\n",
        TASK_DELAY.as_millis(),
        configs.join(",\n"),
        shardable_speedup,
        cross_speedup,
        cross_verified,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(out, &json).expect("write BENCH_shard.json");
    println!(
        "shard_scaling: shardable {shardable_speedup:.2}x, cross-shard {cross_speedup:.2}x \
         at 4 workers (floor 2.0x) -> BENCH_shard.json"
    );
}
