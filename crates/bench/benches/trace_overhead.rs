//! Tracing overhead on the lineage-reuse workload.
//!
//! The tracer is always compiled in; its disabled cost is one relaxed
//! atomic load per instrumentation site. This bench quantifies both
//! modes on the shuffle-bearing lineage from `lineage_reuse`:
//!
//! - "disabled": tracing compiled in but off — the production default,
//!   whose evals/sec must stay within the 3% overhead budget of the
//!   pre-instrumentation baseline tracked in `BENCH_lineage.json`;
//! - "enabled": every job/wave/task/shuffle span recorded and drained
//!   per evaluation.
//!
//! Rounds interleave the two modes so frequency scaling and cache state
//! bias neither side. The run asserts the enabled trace parses as
//! Chrome trace-event JSON with the expected span vocabulary and that
//! recording costs less than half the workload's throughput, then
//! writes both rates to `BENCH_trace.json` for CI to archive.
//!
//! Custom harness (`harness = false`); does nothing unless `--bench` is
//! on the command line, matching the vendored criterion's behaviour.

use scrubjay_bench::bench_ctx;
use sjdf::{ExecCtx, Rdd};
use sjtrace::export::ChromeTrace;
use std::time::{Duration, Instant};

const PARTS: usize = 8;
const PAIRS_PER_PART: u64 = 10_000;
const ROUNDS: usize = 10;

/// The measured lineage (same shape as `lineage_reuse`): a generated
/// pair source into a shuffle and a narrow map. Rebuilt per evaluation
/// so every pass records the full job/wave/task/shuffle span tree.
fn build_lineage(ctx: &ExecCtx) -> Rdd<(u64, u64)> {
    Rdd::generate(ctx, PARTS, |i| {
        let base = i as u64 * PAIRS_PER_PART;
        (base..base + PAIRS_PER_PART)
            .map(|x| (x % 512, x))
            .collect()
    })
    .reduce_by_key(PARTS, |a, b| a + b)
    .map(|(k, v)| (k, v / 2))
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }

    let disabled_ctx = bench_ctx();
    let enabled_ctx = bench_ctx();
    enabled_ctx.tracer().enable();
    let expected = build_lineage(&disabled_ctx).count().expect("warm-up eval");

    let mut disabled_time = Duration::ZERO;
    let mut enabled_time = Duration::ZERO;
    let mut spans_per_eval = 0usize;
    let mut last_trace: Vec<sjtrace::SpanEvent> = Vec::new();
    for _ in 0..ROUNDS {
        let start = Instant::now();
        assert_eq!(
            build_lineage(&disabled_ctx).count().expect("disabled eval"),
            expected
        );
        disabled_time += start.elapsed();
        assert!(
            disabled_ctx.tracer().is_empty(),
            "a disabled tracer must record nothing"
        );

        let start = Instant::now();
        assert_eq!(
            build_lineage(&enabled_ctx).count().expect("enabled eval"),
            expected
        );
        enabled_time += start.elapsed();
        last_trace = enabled_ctx.tracer().drain();
        spans_per_eval = last_trace.len();
        assert!(spans_per_eval > 0, "an enabled tracer must record spans");
    }

    // The recorded tree must be well formed and export as loadable
    // Chrome trace-event JSON carrying the span vocabulary the ISSUE's
    // acceptance gate greps for.
    sjtrace::validate(&last_trace).expect("span tree invariants");
    let json = sjtrace::export::chrome_trace_json(
        &last_trace,
        &enabled_ctx.tracer().thread_names(),
        "bench",
    );
    let chrome: ChromeTrace = serde_json::from_str(&json).expect("chrome trace parses");
    for name in ["job", "wave", "task", "shuffle_fetch"] {
        assert!(
            chrome.traceEvents.iter().any(|e| e.name.starts_with(name)),
            "chrome trace lacks `{name}` spans"
        );
    }

    let disabled_rate = ROUNDS as f64 / disabled_time.as_secs_f64().max(1e-9);
    let enabled_rate = ROUNDS as f64 / enabled_time.as_secs_f64().max(1e-9);
    let overhead_pct = (disabled_rate / enabled_rate - 1.0) * 100.0;
    assert!(
        enabled_rate > 0.5 * disabled_rate,
        "recording spans must cost less than half the throughput \
         (disabled {disabled_rate:.1}/s, enabled {enabled_rate:.1}/s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"pairs\": {},\n  \"partitions\": {},\n  \
         \"rounds\": {},\n  \"untraced_evals_per_sec\": {:.3},\n  \
         \"traced_evals_per_sec\": {:.3},\n  \"enabled_overhead_pct\": {:.2},\n  \
         \"spans_per_eval\": {},\n  \"disabled_budget_pct\": 3.0\n}}\n",
        PARTS as u64 * PAIRS_PER_PART,
        PARTS,
        ROUNDS,
        disabled_rate,
        enabled_rate,
        overhead_pct,
        spans_per_eval,
    );
    // Anchor the output at the workspace root regardless of the cwd
    // cargo picked for the bench binary.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, &json).expect("write BENCH_trace.json");
    println!(
        "trace_overhead: disabled {disabled_rate:.1} evals/s, enabled {enabled_rate:.1} evals/s \
         ({overhead_pct:+.1}% to record {spans_per_eval} spans) -> BENCH_trace.json"
    );
}
