//! Ablation: the LRU intermediate-result cache (§5.4).
//!
//! Two derivation sequences performing the same expensive derivation
//! should compute it only once. Compares repeated plan execution with the
//! result cache enabled vs disabled on the rack-heat case-study plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrubjay_bench::bench_ctx;
use sjcore::cache::ResultCache;
use sjcore::engine::{Query, QueryEngine, QueryValue};
use sjdata::{dat1, Dat1Config};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    let (catalog, _) = dat1(
        &ctx,
        &Dat1Config {
            racks: 6,
            nodes_per_rack: 4,
            amg_rack_index: 3,
            amg_nodes: 3,
            background_jobs: 4,
            duration_secs: 3600,
            ..Dat1Config::default()
        },
    )
    .expect("dat1");
    let query = Query::new(
        ["job", "rack"],
        vec![QueryValue::dim("application"), QueryValue::dim("heat")],
    );
    let plan = QueryEngine::new(&catalog).solve(&query).expect("solvable");

    let mut group = c.benchmark_group("ablation_result_cache");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("cache_off"), |b| {
        b.iter(|| {
            // Three executions, all paying full price.
            for _ in 0..3 {
                plan.execute(&catalog, None)
                    .expect("execute")
                    .count()
                    .expect("count");
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("cache_on"), |b| {
        b.iter(|| {
            // Three executions; the second and third hit the cache.
            let cache = ResultCache::new(256 << 20);
            for _ in 0..3 {
                plan.execute(&catalog, Some(&cache))
                    .expect("execute")
                    .count()
                    .expect("count");
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
