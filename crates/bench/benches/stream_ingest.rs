//! Streaming maintenance benchmark: incremental window evaluation
//! against full-prefix recomputation on the standing derive-rate +
//! interpolation-join query.
//!
//! Both sides replay the same seeded disarray schedule through a
//! [`StreamEngine`] subscription. The **incremental** number is the
//! whole replay wall time — ingest, watermark accounting, cache
//! invalidation, and every window emitted from its horizon slice. The
//! **full-recompute** number is what a system without incremental
//! maintenance would pay for the *same* emission schedule: every
//! emitted window answered by a cold batch solve over the entire
//! accepted prefix at that point in the stream
//! ([`StreamEngine::cold_window`]). The cold side grows with the
//! prefix; the incremental side touches only the horizon around each
//! window, so the gap widens as the stream runs.
//!
//! The run asserts the incremental path wins by at least 5x, and a
//! correctness probe first checks one replay's emissions byte-match
//! their cold solves (the tentpole equivalence guarantee — a speedup
//! measured against a divergent baseline would be meaningless).
//!
//! Results land in `BENCH_stream.json` (committed; CI re-runs the bench
//! and fails on a >10% regression of the headline speedup). Custom
//! harness (`harness = false`); does nothing unless `--bench` is on the
//! command line.

use sjcore::engine::{EngineConfig, Query, QueryValue};
use sjdata::{disarray_schedule, stream_catalog, Disarray};
use sjdf::ExecCtx;
use sjstream::{AppendBatch, StreamConfig, StreamEngine};
use std::time::Instant;

const SEED: u64 = 42;
const STEPS: usize = 400;
const EVALS: usize = 3;

fn standing_query() -> Query {
    Query::new(
        ["compute-node", "time"],
        vec![
            QueryValue::with_units("instructions", "instructions-per-ms"),
            QueryValue::dim("temperature"),
        ],
    )
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        window_secs: 60.0,
        allowed_lateness_secs: 120.0,
        horizon_secs: 150.0,
        eval_parts: 1,
        ..StreamConfig::default()
    }
}

fn fresh_engine(ctx: &ExecCtx) -> StreamEngine {
    let catalog = stream_catalog(ctx).expect("stream catalog");
    let mut engine = StreamEngine::new(ctx, catalog, stream_config(), EngineConfig::default());
    engine
        .subscribe("q-bench", "bench", &standing_query())
        .expect("subscribe");
    engine
}

/// Incremental side: wall time for the whole replay. Returns
/// (seconds, emissions).
fn incremental_secs(ctx: &ExecCtx, schedule: &[AppendBatch]) -> (f64, usize) {
    let mut engine = fresh_engine(ctx);
    let start = Instant::now();
    let mut emissions = 0usize;
    for batch in schedule {
        let out = engine.append(batch).expect("append");
        assert!(out.failures.is_empty(), "subscription torn down mid-bench");
        emissions += out.emissions.len();
    }
    (start.elapsed().as_secs_f64(), emissions)
}

/// Full-recompute side: replay the same schedule, but answer every
/// emission with a cold batch solve over the entire accepted prefix.
/// Only the cold solves are timed — ingest is free for the baseline.
fn full_recompute_secs(ctx: &ExecCtx, schedule: &[AppendBatch]) -> f64 {
    let mut engine = fresh_engine(ctx);
    let mut cold = 0.0f64;
    for batch in schedule {
        let out = engine.append(batch).expect("append");
        for e in &out.emissions {
            let start = Instant::now();
            engine
                .cold_window("q-bench", e.window_id)
                .expect("cold solve");
            cold += start.elapsed().as_secs_f64();
        }
    }
    cold
}

fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    if !std::env::args().any(|a| a == "--bench") {
        return;
    }
    let ctx = ExecCtx::local();
    let schedule = disarray_schedule(Disarray::LateDuplicates, SEED, STEPS);

    // Correctness probe before timing: the incremental emissions must
    // byte-match their cold solves on this exact schedule.
    let mut engine = fresh_engine(&ctx);
    let mut probed = 0usize;
    for batch in &schedule {
        let out = engine.append(batch).expect("append");
        for e in &out.emissions {
            let (cols, rows) = engine.cold_window("q-bench", e.window_id).expect("cold");
            assert_eq!(e.columns, cols, "probe: window {} diverged", e.window_id);
            assert_eq!(e.rows, rows, "probe: window {} diverged", e.window_id);
            probed += 1;
        }
    }
    assert!(probed > 0, "probe replay emitted nothing");
    drop(engine);

    let (incremental, emissions) = {
        let runs: Vec<(f64, usize)> = (0..EVALS)
            .map(|_| incremental_secs(&ctx, &schedule))
            .collect();
        let emissions = runs[0].1;
        (best(runs.into_iter().map(|(s, _)| s).collect()), emissions)
    };
    let full = best(
        (0..EVALS)
            .map(|_| full_recompute_secs(&ctx, &schedule))
            .collect(),
    );
    let speedup = full / incremental.max(1e-9);
    println!(
        "stream_ingest: {} batches, {emissions} emissions: incremental {incremental:.4}s, \
         full recompute {full:.4}s ({speedup:.2}x)",
        schedule.len()
    );
    assert!(
        speedup >= 5.0,
        "incremental maintenance must beat full recomputation by >=5x, got {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"stream_ingest\",\n  \"schedule\": \"late_duplicates\",\n  \
         \"seed\": {SEED},\n  \"steps\": {STEPS},\n  \"batches\": {},\n  \
         \"emissions\": {emissions},\n  \"evals\": {EVALS},\n  \
         \"incremental_best_secs\": {incremental:.4},\n  \
         \"full_recompute_best_secs\": {full:.4},\n  \
         \"speedup\": {speedup:.2},\n  \"equivalence_probe\": \"pass\"\n}}\n",
        schedule.len()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(out, &json).expect("write BENCH_stream.json");
    println!("stream_ingest: {speedup:.2}x -> BENCH_stream.json");
}
