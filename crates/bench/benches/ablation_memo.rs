//! Ablation: memoization in the derivation search (§5.2).
//!
//! The paper memoizes `CombinePair`/`CombineSet` results because at each
//! widening iteration the search re-tests mostly-identical pairs. This
//! bench compares repeated query solving with memoization enabled vs
//! disabled on catalogs large enough to need widening.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scrubjay_bench::{bench_ctx, synthetic_catalog};
use sjcore::engine::{EngineConfig, Query, QueryEngine, QueryValue};

fn bench(c: &mut Criterion) {
    let ctx = bench_ctx();
    let catalog = synthetic_catalog(&ctx, 16);
    let queries: Vec<Query> = vec![
        Query::new(
            ["node", "rack"],
            vec![QueryValue::dim("temperature"), QueryValue::dim("power")],
        ),
        Query::new(
            ["cpu", "socket"],
            vec![QueryValue::dim("humidity"), QueryValue::dim("power")],
        ),
        Query::new(["job", "node"], vec![QueryValue::dim("thermal-margin")]),
    ];

    let mut group = c.benchmark_group("ablation_search_memoization");
    group.sample_size(20);
    for memoize in [true, false] {
        let label = if memoize { "memo_on" } else { "memo_off" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &memoize,
            |b, &memoize| {
                b.iter(|| {
                    // One engine across a query batch — the memo pays off
                    // within and across queries.
                    let engine = QueryEngine::with_config(
                        &catalog,
                        EngineConfig {
                            memoize,
                            ..EngineConfig::default()
                        },
                    );
                    for q in &queries {
                        engine.solve(q).expect("solvable");
                        engine.solve(q).expect("solvable");
                    }
                    engine.stats().pair_tests
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
