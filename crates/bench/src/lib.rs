//! Shared helpers for the ScrubJay benchmark harness.
//!
//! One bench target exists per figure in the paper's evaluation (§6,
//! Figure 3) plus the §5.2 "interactive rates" claim and ablations of the
//! design choices DESIGN.md calls out. Criterion measures the real local
//! algorithms; the paper-scale series (10-node cluster) are produced by
//! costing the recorded task metrics with `sjdf::simtime` and printed by
//! the benches' setup code so `cargo bench` regenerates every panel.

#![forbid(unsafe_code)]

use sjcore::catalog::Catalog;
use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, Timestamp, Value};
use sjdata::synth::JoinWorkload;
use sjdf::{ClusterSpec, ExecCtx};

/// Execution context for benches: a small fixed-thread local cluster so
/// results are comparable across machines.
pub fn bench_ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 2).expect("bench cluster"))
}

/// The natural-join workload of Figure 3 (exactly matching timestamps).
///
/// The time range grows with the row count so the sample *density* —
/// and therefore the per-row match multiplicity and per-row cost — is
/// constant across the sweep. This is what makes the paper's
/// time-vs-rows curves linear, and what lets metrics measured at one
/// size extrapolate linearly to another.
pub fn natural_workload(rows: usize) -> JoinWorkload {
    JoinWorkload {
        rows,
        nodes: 500,
        time_range_secs: ((rows as f64 * 0.36) as i64).max(600),
        partitions: 8,
        seed: 42,
    }
}

/// The interpolation-join workload of Figure 3: dense in time, so each
/// left element matches several right samples inside the window.
/// Density-constant across the sweep, like [`natural_workload`].
pub fn interp_workload(rows: usize) -> JoinWorkload {
    JoinWorkload {
        rows,
        nodes: 100,
        time_range_secs: ((rows as f64 * 0.18) as i64).max(600),
        partitions: 8,
        seed: 42,
    }
}

/// Interpolation-join window used throughout the harness (seconds).
pub const INTERP_WINDOW_SECS: f64 = 60.0;

/// A synthetic catalog with `n` datasets for derivation-engine benches.
///
/// Dataset `i` carries domain dimensions picked from a pool so that
/// neighbouring datasets share domains (making multi-step plans
/// necessary), plus one unique value column.
pub fn synthetic_catalog(ctx: &ExecCtx, n: usize) -> Catalog {
    let mut catalog = Catalog::default_hpc();
    let domain_pool = [
        ("node", "compute-node", "node-id"),
        ("rack", "rack", "rack-id"),
        ("cpu", "cpu", "cpu-id"),
        ("socket", "socket", "socket-id"),
        ("job", "job", "job-id"),
    ];
    let value_pool = [
        ("temperature", "celsius"),
        ("power", "watts"),
        ("humidity", "percent-rh"),
        ("thermal-margin", "margin-celsius"),
    ];
    for i in 0..n {
        let (d1n, d1d, d1u) = domain_pool[i % domain_pool.len()];
        let (d2n, d2d, d2u) = domain_pool[(i + 1) % domain_pool.len()];
        let (vd, vu) = value_pool[i % value_pool.len()];
        let schema = Schema::new(vec![
            FieldDef::new(d1n, FieldSemantics::domain(d1d, d1u)),
            FieldDef::new(d2n, FieldSemantics::domain(d2d, d2u)),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(&format!("v{i}"), FieldSemantics::value(vd, vu)),
        ])
        .expect("synthetic schema");
        let rows: Vec<Row> = (0..16)
            .map(|k| {
                Row::new(vec![
                    Value::str(format!("a{k}")),
                    Value::str(format!("b{k}")),
                    Value::Time(Timestamp::from_secs(k)),
                    Value::Float(k as f64),
                ])
            })
            .collect();
        catalog
            .register_dataset(
                &format!("ds{i}"),
                SjDataset::from_rows(ctx, rows, schema, format!("ds{i}"), 2),
            )
            .expect("register synthetic dataset");
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_catalog_builds() {
        let ctx = bench_ctx();
        let c = synthetic_catalog(&ctx, 5);
        assert_eq!(c.dataset_names().len(), 5);
    }

    #[test]
    fn workloads_differ_in_density() {
        let a = natural_workload(40_000);
        let b = interp_workload(40_000);
        assert!(b.nodes < a.nodes);
        assert!(b.time_range_secs < a.time_range_secs);
        // Density (rows per second) is constant across the sweep, so
        // per-row cost stays constant and metrics extrapolate linearly.
        let big = interp_workload(80_000);
        assert_eq!(big.time_range_secs, 2 * b.time_range_secs);
    }
}
