//! Shared helpers for the ScrubJay benchmark harness.
//!
//! One bench target exists per figure in the paper's evaluation (§6,
//! Figure 3) plus the §5.2 "interactive rates" claim and ablations of the
//! design choices DESIGN.md calls out. Criterion measures the real local
//! algorithms; the paper-scale series (10-node cluster) are produced by
//! costing the recorded task metrics with `sjdf::simtime` and printed by
//! the benches' setup code so `cargo bench` regenerates every panel.

#![forbid(unsafe_code)]

use sjcore::catalog::Catalog;
use sjcore::{FieldDef, FieldSemantics, Row, Schema, SjDataset, Timestamp, Value};
use sjdata::synth::JoinWorkload;
use sjdf::{ClusterSpec, ExecCtx};

/// Execution context for benches: a small fixed-thread local cluster so
/// results are comparable across machines.
pub fn bench_ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 2).expect("bench cluster"))
}

/// The natural-join workload of Figure 3 (exactly matching timestamps).
///
/// The time range grows with the row count so the sample *density* —
/// and therefore the per-row match multiplicity and per-row cost — is
/// constant across the sweep. This is what makes the paper's
/// time-vs-rows curves linear, and what lets metrics measured at one
/// size extrapolate linearly to another.
pub fn natural_workload(rows: usize) -> JoinWorkload {
    JoinWorkload {
        rows,
        nodes: 500,
        time_range_secs: ((rows as f64 * 0.36) as i64).max(600),
        partitions: 8,
        seed: 42,
    }
}

/// The interpolation-join workload of Figure 3: dense in time, so each
/// left element matches several right samples inside the window.
/// Density-constant across the sweep, like [`natural_workload`].
pub fn interp_workload(rows: usize) -> JoinWorkload {
    JoinWorkload {
        rows,
        nodes: 100,
        time_range_secs: ((rows as f64 * 0.18) as i64).max(600),
        partitions: 8,
        seed: 42,
    }
}

/// Interpolation-join window used throughout the harness (seconds).
pub const INTERP_WINDOW_SECS: f64 = 60.0;

/// A synthetic catalog with `n` datasets for derivation-engine benches.
///
/// Dataset `i` carries domain dimensions picked from a pool so that
/// neighbouring datasets share domains (making multi-step plans
/// necessary), plus one unique value column.
pub fn synthetic_catalog(ctx: &ExecCtx, n: usize) -> Catalog {
    let mut catalog = Catalog::default_hpc();
    let domain_pool = [
        ("node", "compute-node", "node-id"),
        ("rack", "rack", "rack-id"),
        ("cpu", "cpu", "cpu-id"),
        ("socket", "socket", "socket-id"),
        ("job", "job", "job-id"),
    ];
    let value_pool = [
        ("temperature", "celsius"),
        ("power", "watts"),
        ("humidity", "percent-rh"),
        ("thermal-margin", "margin-celsius"),
    ];
    for i in 0..n {
        let (d1n, d1d, d1u) = domain_pool[i % domain_pool.len()];
        let (d2n, d2d, d2u) = domain_pool[(i + 1) % domain_pool.len()];
        let (vd, vu) = value_pool[i % value_pool.len()];
        let schema = Schema::new(vec![
            FieldDef::new(d1n, FieldSemantics::domain(d1d, d1u)),
            FieldDef::new(d2n, FieldSemantics::domain(d2d, d2u)),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(&format!("v{i}"), FieldSemantics::value(vd, vu)),
        ])
        .expect("synthetic schema");
        let rows: Vec<Row> = (0..16)
            .map(|k| {
                Row::new(vec![
                    Value::str(format!("a{k}")),
                    Value::str(format!("b{k}")),
                    Value::Time(Timestamp::from_secs(k)),
                    Value::Float(k as f64),
                ])
            })
            .collect();
        catalog
            .register_dataset(
                &format!("ds{i}"),
                SjDataset::from_rows(ctx, rows, schema, format!("ds{i}"), 2),
            )
            .expect("register synthetic dataset");
    }
    catalog
}

/// A catalog with `n` datasets over *rare* dimensions, for planner
/// scaling sweeps.
///
/// [`synthetic_catalog`] draws from a pool of five domains, so at large
/// `n` every domain appears in ~2n/5 datasets and any planner must
/// wade through most of the catalog. Real HPC catalogs are the
/// opposite — thousands of tables, each touching a handful of the
/// site's many dimensions — so here `n/2` zone dimensions and `n/4`
/// metric dimensions are registered into the dictionary and dataset
/// `i` records `metric-(i%M)` against zones `i%P` and `(i+1)%P`. Each
/// zone appears in ~2 datasets and each metric in ~4, which is what
/// lets a guided planner touch O(relevant) datasets per query while an
/// exhaustive one still scans all `n`.
pub fn planner_catalog(ctx: &ExecCtx, n: usize) -> Catalog {
    use sjcore::semantics::DimensionDef;
    use sjcore::units::{UnitKind, UnitsDef};

    let zones = (n / 2).max(1);
    let metrics = (n / 4).max(1);
    let mut catalog = Catalog::default_hpc();
    let dict = catalog.dict_mut();
    for z in 0..zones {
        dict.register_dimension(DimensionDef::identifier(&format!("zone-{z}")))
            .expect("zone dimension");
        dict.register_units(UnitsDef::new(
            &format!("zone-{z}-id"),
            &format!("zone-{z}"),
            UnitKind::Identifier,
        ))
        .expect("zone units");
    }
    for m in 0..metrics {
        dict.register_dimension(DimensionDef::continuous(&format!("metric-{m}")))
            .expect("metric dimension");
        dict.register_units(UnitsDef::new(
            &format!("metric-{m}-units"),
            &format!("metric-{m}"),
            UnitKind::Scalar {
                factor: 1.0,
                offset: 0.0,
            },
        ))
        .expect("metric units");
    }
    for i in 0..n {
        let (z1, z2, m) = (i % zones, (i + 1) % zones, i % metrics);
        let schema = Schema::new(vec![
            FieldDef::new(
                "a",
                FieldSemantics::domain(&format!("zone-{z1}"), &format!("zone-{z1}-id")),
            ),
            FieldDef::new(
                "b",
                FieldSemantics::domain(&format!("zone-{z2}"), &format!("zone-{z2}-id")),
            ),
            FieldDef::new("t", FieldSemantics::domain("time", "datetime")),
            FieldDef::new(
                "v",
                FieldSemantics::value(&format!("metric-{m}"), &format!("metric-{m}-units")),
            ),
        ])
        .expect("planner schema");
        let rows: Vec<Row> = (0..4)
            .map(|k| {
                Row::new(vec![
                    Value::str(format!("z{z1}-{k}")),
                    Value::str(format!("z{z2}-{k}")),
                    Value::Time(Timestamp::from_secs(k)),
                    Value::Float(k as f64),
                ])
            })
            .collect();
        catalog
            .register_dataset(
                &format!("ds{i}"),
                SjDataset::from_rows(ctx, rows, schema, format!("ds{i}"), 1),
            )
            .expect("register planner dataset");
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_catalog_builds_rare_dimensions() {
        let ctx = bench_ctx();
        let c = planner_catalog(&ctx, 12);
        assert_eq!(c.dataset_names().len(), 12);
        // zone-0 lives in exactly two datasets (ds0 primary, ds11
        // secondary via (11+1) % 6 == 0).
        use sjcore::engine::{Query, QueryEngine, QueryValue};
        let q = Query {
            domains: vec!["zone-0".into()],
            values: vec![QueryValue::dim("metric-0")],
        };
        assert!(QueryEngine::new(&c).solve(&q).is_ok());
    }

    #[test]
    fn synthetic_catalog_builds() {
        let ctx = bench_ctx();
        let c = synthetic_catalog(&ctx, 5);
        assert_eq!(c.dataset_names().len(), 5);
    }

    #[test]
    fn workloads_differ_in_density() {
        let a = natural_workload(40_000);
        let b = interp_workload(40_000);
        assert!(b.nodes < a.nodes);
        assert!(b.time_range_secs < a.time_range_secs);
        // Density (rows per second) is constant across the sweep, so
        // per-row cost stays constant and metrics extrapolate linearly.
        let big = interp_workload(80_000);
        assert_eq!(big.time_range_secs, 2 * b.time_range_secs);
    }
}
