//! The router: one [`Router`] fronts N `sjserved` workers.
//!
//! A routed query goes through the same admission discipline as a worker
//! (bounded per-tenant queues, round-robin dispatch, deadlines — the
//! scheduler is literally [`sjserve::scheduler`]), then:
//!
//! 1. the query is canonicalized and solved against the **combined
//!    planning catalog** (every worker's schemas, zero rows), through a
//!    plan cache — proving the fleet can answer at all, without
//!    touching data;
//! 2. if some live worker's **own** catalog derives the whole query
//!    with that same plan (fingerprint equality, see
//!    [`crate::topology`]), it is forwarded there (single-shard route),
//!    with one failover retry to the next capable worker in ring order;
//! 3. otherwise the query is split per value dimension, each sub-query
//!    routed to a worker that locally reproduces *its* reference
//!    derivation, fanned out concurrently, and the partial tables are
//!    merged by a natural join on the query's domain columns
//!    (scatter-gather);
//! 4. merged `ok` responses land in a bounded route cache, invalidated
//!    wholesale whenever any worker's catalog epoch changes.
//!
//! A background heartbeat probes `health` on every worker: consecutive
//! failures mark a worker down (routing skips it until it answers
//! again), and an epoch change triggers a catalog refetch plus cache
//! invalidation. When the client asks for a trace, each worker's span
//! tree (shipped on its response) is grafted under the router's
//! `worker_call` span, so one timeline covers router queue, per-worker
//! execution, and merge.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sjcore::engine::{EngineConfig, Plan, Query, QueryEngine, QueryValue};
use sjcore::SjError;
use sjdf::ExecCtx;
use sjserve::cache::{PlanCacheLayer, PlanKey};
use sjserve::client::{Client, ClientError};
use sjserve::metrics::RouterStatsReport;
use sjserve::protocol::{
    codes, CatalogInfo, ErrorBody, HealthReport, PlanInfo, QuerySpec, Request, Response,
    SubscriptionAck, TraceSummary, Verb, PROTO_VERSION,
};
use sjserve::scheduler::{AdmissionError, Job, ResponseSlot, Scheduler, SchedulerConfig};
use sjserve::server::{EmissionSink, RequestHandler};
use sjtrace::{EventKind, RecordedSpan, SpanEvent, SpanId};

use crate::cache::RouteCache;
use crate::metrics::RouterMetrics;
use crate::stream::RouterStreams;
use crate::topology::Topology;

/// Router-wide tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Admission and route-worker sizing (same discipline as a worker).
    pub scheduler: SchedulerConfig,
    /// Engine defaults for the routing-level solve. Must match the
    /// workers' engine configuration, or the router's predicted covers
    /// can disagree with what workers actually execute.
    pub engine: EngineConfig,
    /// Rows returned per query when the request has no `limit`.
    pub default_limit: usize,
    /// Row budget per scatter-gather sub-query: partials must not be
    /// truncated before the merge, so this is deliberately large.
    pub fanout_limit: usize,
    /// Bounded route-cache entries (merged `ok` responses).
    pub route_cache_entries: usize,
    /// Heartbeat period.
    pub heartbeat: Duration,
    /// Read timeout on heartbeat probes and boot-time catalog fetches.
    pub probe_timeout: Duration,
    /// Consecutive failed calls/probes before a worker is marked down.
    pub markdown_after: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            scheduler: SchedulerConfig::default(),
            engine: EngineConfig::default(),
            default_limit: 1000,
            fanout_limit: 100_000,
            route_cache_entries: 256,
            heartbeat: Duration::from_secs(2),
            probe_timeout: Duration::from_millis(500),
            markdown_after: 2,
        }
    }
}

pub(crate) struct RouterInner {
    pub(crate) config: RouterConfig,
    pub(crate) topology: Topology,
    /// Planning-only context: hosts the zero-row catalog datasets and
    /// the router's tracer. No query data flows through it.
    pub(crate) ctx: ExecCtx,
    pub(crate) plan_cache: PlanCacheLayer,
    pub(crate) route_cache: RouteCache,
    pub(crate) metrics: RouterMetrics,
    /// Standing queries routed across the fleet (see [`crate::stream`]).
    pub(crate) streams: RouterStreams,
    scheduler: Scheduler,
    route_workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    heartbeat_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    stop: AtomicBool,
    query_seq: AtomicU64,
}

/// A running router. Cheap to clone; all clones share one topology,
/// scheduler, and cache.
#[derive(Clone)]
pub struct Router {
    inner: Arc<RouterInner>,
}

impl Router {
    /// Probe every worker's `catalog`, build the planning state, and
    /// start the route-worker pool and heartbeat. Unreachable workers
    /// start marked down (the heartbeat keeps trying); zero reachable
    /// workers is an error.
    pub fn new(worker_addrs: Vec<String>, config: RouterConfig) -> Result<Router, String> {
        if worker_addrs.is_empty() {
            return Err("router needs at least one worker address".into());
        }
        let route_cache = RouteCache::new(config.route_cache_entries);
        let inner = Arc::new(RouterInner {
            topology: Topology::new(worker_addrs),
            ctx: ExecCtx::local(),
            plan_cache: PlanCacheLayer::new(),
            route_cache,
            metrics: RouterMetrics::new(),
            streams: RouterStreams::new(),
            scheduler: Scheduler::new(config.scheduler.clone()),
            route_workers: Mutex::new(Vec::new()),
            heartbeat_thread: Mutex::new(None),
            stop: AtomicBool::new(false),
            query_seq: AtomicU64::new(0),
            config,
        });
        let mut reachable = 0;
        let mut last_err = String::new();
        for idx in 0..inner.topology.workers.len() {
            match fetch_catalog(&inner, idx) {
                Ok(info) => {
                    inner.topology.refresh(idx, info, &inner.ctx);
                    reachable += 1;
                }
                Err(e) => last_err = e,
            }
        }
        if reachable == 0 {
            return Err(format!("no reachable workers ({last_err})"));
        }
        let router = Router { inner };
        router.start_workers();
        router.start_heartbeat();
        Ok(router)
    }

    fn start_workers(&self) {
        let mut workers = self.inner.route_workers.lock();
        for i in 0..self.inner.config.scheduler.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sjroute-worker-{i}"))
                    .spawn(move || route_worker_loop(&inner))
                    .expect("spawn route worker"),
            );
        }
    }

    fn start_heartbeat(&self) {
        let inner = Arc::clone(&self.inner);
        *self.inner.heartbeat_thread.lock() = Some(
            std::thread::Builder::new()
                .name("sjroute-heartbeat".into())
                .spawn(move || heartbeat_loop(&inner))
                .expect("spawn heartbeat"),
        );
    }

    /// Handle one request end to end (the TCP front end and in-process
    /// embedders both enter here).
    pub fn handle(&self, request: Request) -> Response {
        let inner = &self.inner;
        let started = Instant::now();
        let mut response = match request.proto_version {
            Some(v) if v != PROTO_VERSION => Response::fail(
                &request.id,
                ErrorBody::new(
                    codes::PROTO_MISMATCH,
                    format!("peer speaks protocol v{v}, this router speaks v{PROTO_VERSION}"),
                ),
            ),
            _ => match request.verb {
                Verb::Stats => {
                    let mut r = Response::ok(&request.id);
                    r.router_stats = Some(self.stats_report());
                    r
                }
                Verb::Health => {
                    let mut r = Response::ok(&request.id);
                    let all_up = inner.topology.workers.iter().all(|w| w.healthy());
                    r.health = Some(HealthReport {
                        status: if all_up { "ok" } else { "degraded" }.into(),
                        datasets: inner.topology.all_datasets(),
                        uptime_ms: inner.metrics.uptime().as_millis() as u64,
                        shard_id: None,
                        catalog_epoch: Some(inner.topology.combined_epoch()),
                        stage_cache_bytes: None,
                    });
                    r
                }
                Verb::Catalog => {
                    let mut r = Response::ok(&request.id);
                    r.catalog = Some(CatalogInfo {
                        shard_id: None,
                        epoch: inner.topology.combined_epoch(),
                        datasets: inner.topology.combined_datasets(),
                    });
                    r
                }
                Verb::Shutdown => Response::ok(&request.id),
                // Appends run inline on the connection thread (same as
                // a worker) so forwarded batches stay ordered per
                // connection — the lockstep frame merge depends on
                // every fed worker seeing the same accepted prefix.
                Verb::Append => self.handle_append(&request),
                // A subscription needs a streaming-capable transport; a
                // plain `handle` has no sink to push frames to.
                Verb::Query if request.subscribe == Some(true) => Response::fail(
                    &request.id,
                    ErrorBody::new(
                        codes::STREAM_UNSUPPORTED,
                        "standing queries (`subscribe: true`) need a streaming-capable \
                         connection; this path cannot deliver pushed frames",
                    ),
                ),
                Verb::Query | Verb::Explain => self.enqueue_and_wait(request, started),
            },
        };
        response.proto_version = Some(PROTO_VERSION);
        response
    }

    /// Handle one request on a streaming-capable transport: like
    /// [`Router::handle`], but `subscribe: true` opens a fleet-wide
    /// standing query whose merged window frames are pushed to `sink`
    /// for the rest of the connection's life.
    pub fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        if request.verb != Verb::Query || request.subscribe != Some(true) {
            return self.handle(request);
        }
        let mut response = match request.proto_version {
            Some(v) if v != PROTO_VERSION => Response::fail(
                &request.id,
                ErrorBody::new(
                    codes::PROTO_MISMATCH,
                    format!("peer speaks protocol v{v}, this router speaks v{PROTO_VERSION}"),
                ),
            ),
            _ => self.handle_subscribe(&request, sink),
        };
        response.proto_version = Some(PROTO_VERSION);
        response
    }

    /// Drop every routed subscription bound to `sink` (its connection
    /// ended).
    pub fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        self.inner.streams.connection_closed(&self.inner, sink);
    }

    /// Forward one append batch to **every** live worker holding the
    /// dataset. All owners must ingest the same prefix in the same
    /// order, or their standing-query emissions diverge; a worker that
    /// misses a batch is treated as lost by every routed subscription
    /// it feeds (see [`crate::stream`]).
    fn handle_append(&self, request: &Request) -> Response {
        let inner = &self.inner;
        let id = &request.id;
        let batch = match &request.append {
            Some(batch) => batch,
            None => {
                return Response::fail(
                    id,
                    ErrorBody::new(codes::BAD_REQUEST, "append requires an `append` payload"),
                )
            }
        };
        let owners: Vec<usize> = inner
            .topology
            .planning()
            .owners
            .get(&batch.dataset)
            .cloned()
            .unwrap_or_default();
        if owners.is_empty() {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::NO_ROUTE,
                    format!("no worker holds dataset `{}`", batch.dataset),
                ),
            );
        }
        let live: Vec<usize> = owners
            .iter()
            .copied()
            .filter(|&w| inner.topology.workers[w].healthy())
            .collect();
        if live.is_empty() {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::WORKER_UNAVAILABLE,
                    format!("every worker holding `{}` is marked down", batch.dataset),
                ),
            );
        }
        let timeout = request
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(inner.config.scheduler.default_timeout);
        let deadline = Instant::now() + timeout;
        let mut ack: Option<Response> = None;
        let mut worker_error: Option<Response> = None;
        let mut refused: Vec<usize> = Vec::new();
        let mut lost: Vec<usize> = Vec::new();
        let mut errors: Vec<String> = Vec::new();
        let mut forwarded = 0usize;
        for &idx in &live {
            let mut sub = Request::append(&format!("{id}.a{idx}"), &request.tenant, batch.clone())
                .with_proto();
            sub.bulk = request.bulk;
            sub.timeout_ms = Some(timeout.as_millis() as u64);
            match dispatch(inner, idx, &sub, deadline) {
                Ok(resp) if resp.is_ok() && resp.append.is_some() => {
                    forwarded += 1;
                    if ack.is_none() {
                        ack = Some(resp);
                    }
                }
                Ok(resp) => {
                    // A structured refusal: this worker did not ingest
                    // the batch. If others did, its prefix diverged.
                    errors.push(format!(
                        "worker {}: {}",
                        inner.topology.workers[idx].addr,
                        resp.error
                            .as_ref()
                            .map(|e| format!("{}: {}", e.code, e.message))
                            .unwrap_or_else(|| resp.status.clone())
                    ));
                    if worker_error.is_none() {
                        worker_error = Some(resp);
                    }
                    refused.push(idx);
                }
                Err(e) => {
                    errors.push(e);
                    lost.push(idx);
                }
            }
        }
        inner.metrics.appends_forwarded(forwarded);
        // A transport failure means the worker may be gone entirely: its
        // feeds cannot be trusted even if nobody else ingested the batch
        // (retrying the append later would diverge its prefix anyway).
        for &idx in &lost {
            inner.streams.worker_lost(idx);
        }
        if forwarded > 0 {
            // Partial ingestion: workers that *refused* the batch while
            // others accepted it can no longer feed lockstep merges
            // either.
            for idx in refused {
                inner.streams.worker_lost(idx);
            }
            let mut r = Response::ok(id);
            // Replica acks are identical over an identical accepted
            // prefix; relay the first.
            r.append = ack.and_then(|a| a.append);
            return r;
        }
        // Nobody ingested it. A structured worker refusal (bad payload,
        // unknown source...) is more useful than a transport summary.
        if let Some(mut resp) = worker_error {
            resp.id = id.clone();
            return resp;
        }
        Response::fail(
            id,
            ErrorBody::new(
                codes::WORKER_UNAVAILABLE,
                format!(
                    "append to `{}` reached no worker: {}",
                    batch.dataset,
                    errors.join("; ")
                ),
            ),
        )
    }

    /// Register a fleet-wide standing query: subscribe on every live
    /// worker that reproduces the reference plan locally, then merge
    /// their frame streams in lockstep (see [`crate::stream`]).
    fn handle_subscribe(&self, request: &Request, sink: &Arc<dyn EmissionSink>) -> Response {
        let inner = &self.inner;
        let id = &request.id;
        let spec = match &request.query {
            Some(spec) => spec.clone(),
            None => {
                return Response::fail(
                    id,
                    ErrorBody::new(codes::BAD_REQUEST, "subscribe requires a `query` payload"),
                )
            }
        };
        if spec.domains.is_empty() || spec.values.is_empty() {
            return Response::fail(
                id,
                ErrorBody::new(codes::BAD_REQUEST, "query needs domains and values"),
            );
        }
        let window = spec
            .window_secs
            .unwrap_or(inner.config.engine.interp_window_secs);
        let step = spec
            .step_secs
            .unwrap_or(inner.config.engine.explode_step_secs);
        if !window.is_finite() || window < 0.0 || !step.is_finite() || step < 0.0 {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::BAD_REQUEST,
                    format!(
                        "window_secs and step_secs must be finite and non-negative \
                         (got window={window}, step={step})"
                    ),
                ),
            );
        }
        let route_engine = EngineConfig {
            interp_window_secs: window,
            explode_step_secs: step,
            ..inner.config.engine.clone()
        };
        let query = Query {
            domains: spec.domains.clone(),
            values: spec
                .values
                .iter()
                .map(|v| QueryValue {
                    dimension: v.dimension.clone(),
                    units: v.units.clone(),
                })
                .collect(),
        };
        let (canonical, plan, _) = match solve_reference(inner, &query, window, step, &route_engine)
        {
            Ok(t) => t,
            Err(body) => return Response::fail(id, body),
        };
        let cover: Vec<String> = plan.loads().iter().map(|s| s.to_string()).collect();
        let cover_key = {
            let mut sorted = cover.clone();
            sorted.sort_unstable();
            sorted.join(",")
        };
        let (live, all) =
            inner
                .topology
                .local_solvers(&canonical, &route_engine, plan.fingerprint(), &cover_key);
        if live.is_empty() {
            return if all.is_empty() {
                Response::fail(
                    id,
                    ErrorBody::new(
                        codes::NO_ROUTE,
                        format!(
                            "a standing query over {cover:?} needs a worker reproducing \
                             the reference derivation locally, and none does"
                        ),
                    ),
                )
            } else {
                Response::fail(
                    id,
                    ErrorBody::new(
                        codes::WORKER_UNAVAILABLE,
                        "every worker able to serve this standing query is marked down",
                    ),
                )
            };
        }
        let query_id = format!(
            "rs{:06}-{}",
            inner.query_seq.fetch_add(1, Ordering::Relaxed),
            id
        );
        // Subscribe upstream on every live local solver. Workers that
        // refuse are skipped (and counted against); the merge runs over
        // whoever acked.
        let mut feeds: Vec<(usize, Client)> = Vec::new();
        let mut ack: Option<SubscriptionAck> = None;
        let mut errors: Vec<String> = Vec::new();
        for &idx in &live {
            let addr = inner.topology.workers[idx].addr.clone();
            let attempt = (|| -> Result<(Client, SubscriptionAck), String> {
                let mut client = Client::connect_as(addr.as_str(), &request.tenant)
                    .map_err(|e| format!("worker {addr}: {e}"))?;
                let sub = Request::subscribe(
                    &format!("{query_id}.w{idx}"),
                    &request.tenant,
                    spec.clone(),
                )
                .with_proto();
                let resp = client
                    .call(&sub)
                    .map_err(|e| format!("worker {addr}: {e}"))?;
                match resp.subscription {
                    Some(ack) if resp.is_ok() => Ok((client, ack)),
                    _ => Err(format!(
                        "worker {addr}: subscribe refused: {}",
                        resp.error
                            .map(|e| format!("{}: {}", e.code, e.message))
                            .unwrap_or(resp.status)
                    )),
                }
            })();
            match attempt {
                Ok((client, worker_ack)) => {
                    ack.get_or_insert(worker_ack);
                    feeds.push((idx, client));
                }
                Err(e) => {
                    note_failure(inner, idx);
                    errors.push(e);
                }
            }
        }
        if feeds.is_empty() {
            return Response::fail(
                id,
                ErrorBody::new(
                    codes::WORKER_UNAVAILABLE,
                    format!(
                        "no worker accepted the standing query: {}",
                        errors.join("; ")
                    ),
                ),
            );
        }
        let ack = ack.expect("at least one feed acked");
        RouterStreams::open(&self.inner, query_id.clone(), id.clone(), sink, feeds);
        let mut r = Response::ok(id);
        r.query_id = Some(query_id.clone());
        r.subscription = Some(SubscriptionAck {
            query_id,
            window_secs: ack.window_secs,
            allowed_lateness_secs: ack.allowed_lateness_secs,
        });
        r
    }

    fn enqueue_and_wait(&self, request: Request, started: Instant) -> Response {
        let inner = &self.inner;
        let id = request.id.clone();
        let tenant = request.tenant.clone();
        let query_id = format!(
            "r{:06}-{}",
            inner.query_seq.fetch_add(1, Ordering::Relaxed),
            id
        );
        if request.wants_trace() {
            inner.ctx.tracer().enable();
        }
        let timeout = request
            .timeout_ms
            .map(Duration::from_millis)
            .unwrap_or(inner.config.scheduler.default_timeout);
        let deadline = started + timeout;
        let slot = ResponseSlot::new();
        let job = Job {
            request,
            tenant: tenant.clone(),
            enqueued: started,
            deadline,
            slot: Arc::clone(&slot),
            query_id: query_id.clone(),
        };
        match inner.scheduler.submit(job) {
            Ok(depth) => {
                inner.metrics.admitted(&tenant);
                inner.metrics.queue_depth_changed(depth);
            }
            Err(AdmissionError::QueueFull { depth, capacity }) => {
                inner.metrics.rejected_full(&tenant);
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::QUEUE_FULL,
                        format!("router queue at capacity ({depth}/{capacity}); retry later"),
                    ),
                );
                r.query_id = Some(query_id);
                return r;
            }
            Err(AdmissionError::ShuttingDown) => {
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(codes::SHUTDOWN, "router is shutting down"),
                );
                r.query_id = Some(query_id);
                return r;
            }
        }
        let response = match slot.wait_until(deadline) {
            Some(response) => response,
            None => {
                inner.metrics.timed_out();
                let mut r = Response::fail(
                    &id,
                    ErrorBody::new(
                        codes::TIMEOUT,
                        format!("deadline of {}ms elapsed", timeout.as_millis()),
                    ),
                );
                r.query_id = Some(query_id);
                r
            }
        };
        inner.metrics.completed(&tenant);
        inner.metrics.route_finished(started.elapsed());
        response
    }

    /// Current router metrics (the `stats` verb payload).
    pub fn stats_report(&self) -> RouterStatsReport {
        let inner = &self.inner;
        inner.metrics.queue_depth_changed(inner.scheduler.depth());
        inner.metrics.snapshot(
            inner.route_cache.hits(),
            inner.route_cache.len() as u64,
            inner.topology.summaries(),
        )
    }

    /// The fleet as the router currently sees it (test/observability
    /// hook).
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// Force an immediate heartbeat pass (test hook: markdown and epoch
    /// detection without waiting out the heartbeat period).
    pub fn probe_now(&self) {
        probe_all(&self.inner);
    }

    /// Stop heartbeat and route workers, answering still-queued jobs
    /// with a shutdown error, and return the final metrics snapshot.
    pub fn shutdown(&self) -> RouterStatsReport {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.streams.shutdown_all(&self.inner);
        if let Some(handle) = self.inner.heartbeat_thread.lock().take() {
            let _ = handle.join();
        }
        for job in self.inner.scheduler.shutdown() {
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::SHUTDOWN, "router is shutting down"),
            ));
        }
        let workers = std::mem::take(&mut *self.inner.route_workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats_report()
    }
}

impl RequestHandler for Router {
    type Summary = RouterStatsReport;

    fn handle(&self, request: Request) -> Response {
        Router::handle(self, request)
    }

    fn handle_streaming(&self, request: Request, sink: &Arc<dyn EmissionSink>) -> Response {
        Router::handle_streaming(self, request, sink)
    }

    fn connection_closed(&self, sink: &Arc<dyn EmissionSink>) {
        Router::connection_closed(self, sink)
    }

    fn protocol_request(&self, binary: bool) {
        self.inner.metrics.protocol_request(binary)
    }

    fn shutdown(&self) -> RouterStatsReport {
        Router::shutdown(self)
    }
}

/// Canonicalize `query` and solve it against the combined planning
/// catalog through the plan cache — the **reference plan** all routing
/// decisions compare against. The planning read guard is held for the
/// solve but never across a network call. Returns `(canonical query,
/// plan, cache hit)`.
fn solve_reference(
    inner: &RouterInner,
    query: &Query,
    window: f64,
    step: f64,
    route_engine: &EngineConfig,
) -> Result<(Query, std::sync::Arc<Plan>, bool), ErrorBody> {
    let planning = inner.topology.planning();
    let canonical = query
        .canonicalize(planning.catalog.dict())
        .map_err(|e| ErrorBody::new(codes::BAD_REQUEST, e.to_string()))?;
    let key = PlanKey::new(&canonical, window, step)
        .ok_or_else(|| ErrorBody::new(codes::BAD_REQUEST, "window/step do not form a plan key"))?;
    if let Some(plan) = inner.plan_cache.get(&key) {
        return Ok((canonical, plan, true));
    }
    let engine = QueryEngine::with_config(&planning.catalog, route_engine.clone());
    match engine.solve(&canonical) {
        Ok(plan) => {
            let plan = inner.plan_cache.insert(key, plan);
            Ok((canonical, plan, false))
        }
        Err(SjError::NoSolution(msg)) => Err(ErrorBody::new(codes::NO_SOLUTION, msg)),
        Err(e @ SjError::SearchTruncated { .. }) => {
            Err(ErrorBody::new(codes::SEARCH_TRUNCATED, e.to_string()))
        }
        Err(e) => Err(ErrorBody::new(codes::BAD_REQUEST, e.to_string())),
    }
}

fn route_worker_loop(inner: &RouterInner) {
    while let Some((job, depth)) = inner.scheduler.next_job() {
        inner.metrics.queue_depth_changed(depth);
        if job.slot.is_cancelled() {
            continue;
        }
        if Instant::now() >= job.deadline {
            inner.metrics.timed_out();
            job.slot.fulfill(Response::fail(
                &job.request.id,
                ErrorBody::new(codes::TIMEOUT, "deadline elapsed while queued"),
            ));
            continue;
        }
        let response = route_execute(inner, &job);
        job.slot.fulfill(response);
    }
}

/// Worker span trees to graft, keyed by the `worker_call` span each hangs
/// under.
type Guests = Vec<(SpanId, Vec<SpanEvent>)>;

fn stamp_query_id(response: &mut Response, query_id: &str) {
    response.query_id = Some(query_id.to_string());
    if let Some(failure) = response.failure.as_mut() {
        failure.query_id = Some(query_id.to_string());
    }
}

/// Abandoned spans older than this are pruned after each request (same
/// retention as the worker side).
const TRACE_RETENTION_US: u64 = 300_000_000;

/// Route one job under its request-scoped trace: a retroactive `route`
/// root opened at admission, a `queue_wait` child, a `worker_call` span
/// per remote call, and each worker's own span tree grafted under the
/// call that fetched it — one timeline across the hop.
fn route_execute(inner: &RouterInner, job: &Job) -> Response {
    let tracer = inner.ctx.tracer().clone();
    if !tracer.enabled() {
        let (mut response, _) = route_query(inner, job, None);
        stamp_query_id(&mut response, &job.query_id);
        return response;
    }
    let now = tracer.now_us();
    let queued_us = job.enqueued.elapsed().as_micros() as u64;
    let start = now.saturating_sub(queued_us);
    let mut root = tracer.span_at("route", start);
    let root_id = root.root();
    if root.is_recording() {
        root.set_detail(format!("query_id={} tenant={}", job.query_id, job.tenant));
        tracer.record_span(RecordedSpan {
            name: "queue_wait",
            detail: format!("{queued_us}us queued"),
            parent: root.id(),
            root: root_id,
            start_us: start,
            end_us: now,
            failed: false,
            kind: EventKind::Span,
        });
    }
    let (mut response, guests) = route_query(inner, job, Some((root.id(), root_id)));
    stamp_query_id(&mut response, &job.query_id);
    if !response.is_ok() {
        root.fail();
    }
    drop(root);

    let mut events = tracer.take_root(root_id);
    tracer.prune_before(tracer.now_us().saturating_sub(TRACE_RETENTION_US));
    for (attach, spans) in guests {
        // Grafting is best-effort: a worker that shipped a malformed
        // tree must not fail the query its spans describe.
        let _ = sjtrace::graft(&mut events, attach, &spans);
    }
    events.sort_by_key(|e| (e.start_us, e.id));

    if job.request.wants_trace() {
        let thread_names = tracer.thread_names();
        response.trace = Some(TraceSummary {
            query_id: job.query_id.clone(),
            span_count: events.len() as u64,
            dropped_spans: tracer.dropped(),
            timeline: sjtrace::timeline::render(&events),
            chrome_json: Some(sjtrace::export::chrome_trace_json(
                &events,
                &thread_names,
                "sjroute",
            )),
            spans: Some(events),
        });
    }
    response
}

/// Solve, route, fan out, merge. Returns the response plus any worker
/// span trees for the caller to graft.
fn route_query(
    inner: &RouterInner,
    job: &Job,
    trace: Option<(SpanId, SpanId)>,
) -> (Response, Guests) {
    let mut guests: Guests = Vec::new();
    let id = job.request.id.clone();
    let fail = |body: ErrorBody, guests: Guests| (Response::fail(&id, body), guests);

    let spec = match &job.request.query {
        Some(spec) => spec.clone(),
        None => {
            return fail(
                ErrorBody::new(
                    codes::BAD_REQUEST,
                    "query/explain requires a `query` payload",
                ),
                guests,
            )
        }
    };
    if spec.domains.is_empty() || spec.values.is_empty() {
        return fail(
            ErrorBody::new(codes::BAD_REQUEST, "query needs domains and values"),
            guests,
        );
    }
    let window = spec
        .window_secs
        .unwrap_or(inner.config.engine.interp_window_secs);
    let step = spec
        .step_secs
        .unwrap_or(inner.config.engine.explode_step_secs);
    if !window.is_finite() || window < 0.0 || !step.is_finite() || step < 0.0 {
        return fail(
            ErrorBody::new(
                codes::BAD_REQUEST,
                format!(
                    "window_secs and step_secs must be finite and non-negative \
                     (got window={window}, step={step})"
                ),
            ),
            guests,
        );
    }

    let route_engine = EngineConfig {
        interp_window_secs: window,
        explode_step_secs: step,
        ..inner.config.engine.clone()
    };
    let query = Query {
        domains: spec.domains.clone(),
        values: spec
            .values
            .iter()
            .map(|v| QueryValue {
                dimension: v.dimension.clone(),
                units: v.units.clone(),
            })
            .collect(),
    };

    // Solve against the planning catalog (schemas only) through the plan
    // cache.
    let (canonical, plan, plan_cache_hit) =
        match solve_reference(inner, &query, window, step, &route_engine) {
            Ok(t) => t,
            Err(body) => return fail(body, guests),
        };

    if job.request.verb == Verb::Explain {
        let mut r = Response::ok(&id);
        r.plan = Some(PlanInfo {
            plan_json: plan.to_json(),
            plan_text: plan.describe(),
            fingerprint: plan.fingerprint(),
            plan_cache_hit,
        });
        return (r, guests);
    }

    let limit = spec.limit.unwrap_or(inner.config.default_limit);
    let cache_key = RouteCache::key(plan.fingerprint(), limit);
    // Traced requests bypass the cache: the client asked to watch the
    // hop actually happen.
    let caching = !job.request.wants_trace();
    if caching {
        if let Some(mut hit) = inner.route_cache.get(&cache_key) {
            hit.id = id.clone();
            if let Some(result) = hit.result.as_mut() {
                result.result_cache_hit = true;
            }
            return (hit, guests);
        }
    }

    inner.metrics.routed();
    let cover: Vec<String> = plan.loads().iter().map(|s| s.to_string()).collect();

    // Single-shard fast path: some live worker's own catalog derives the
    // whole query with the reference plan. Keyed on the sorted combined
    // cover so the choice among equally capable workers is
    // deterministic per query shape.
    let cover_key = {
        let mut sorted = cover.clone();
        sorted.sort_unstable();
        sorted.join(",")
    };
    let (live, _) =
        inner
            .topology
            .local_solvers(&canonical, &route_engine, plan.fingerprint(), &cover_key);
    if !live.is_empty() {
        let mut sub_spec = spec.clone();
        sub_spec.limit = Some(limit);
        let sub = sub_request(job, &format!("{}.w", job.query_id), sub_spec);
        return match call_with_failover(inner, &live, &sub, job.deadline, trace, &mut guests) {
            Ok(mut resp) => {
                resp.id = id.clone();
                if resp.is_degraded() {
                    inner.metrics.degraded();
                }
                if caching && resp.is_ok() {
                    let mut cached = resp.clone();
                    cached.trace = None;
                    inner.route_cache.put(cache_key, cached);
                }
                (resp, guests)
            }
            Err(e) => fail(
                ErrorBody::new(
                    codes::WORKER_UNAVAILABLE,
                    format!("no worker holding {cover:?} answered: {e}"),
                ),
                guests,
            ),
        };
    }

    // Scatter-gather: split per value dimension, grouping values whose
    // sub-covers land on the same worker.
    struct Group {
        /// Failover-ordered candidate workers able to answer every value
        /// in the group (the chosen primary is first).
        candidates: Vec<usize>,
        /// Indices into `spec.values`.
        values: Vec<usize>,
    }
    let mut groups: Vec<Group> = Vec::new();
    for (vi, value) in canonical.values.iter().enumerate() {
        let sub_query = Query {
            domains: canonical.domains.clone(),
            values: vec![value.clone()],
        };
        // Reference sub-plan on the combined catalog: what a single
        // process would derive for this value alone.
        let sub_plan = {
            let planning = inner.topology.planning();
            let key = match PlanKey::new(&sub_query, window, step) {
                Some(key) => key,
                None => unreachable!("knobs validated above"),
            };
            match inner.plan_cache.get(&key) {
                Some(plan) => plan,
                None => {
                    let engine = QueryEngine::with_config(&planning.catalog, route_engine.clone());
                    match engine.solve(&sub_query) {
                        Ok(plan) => inner.plan_cache.insert(key, plan),
                        Err(e) => {
                            return fail(
                                ErrorBody::new(
                                    codes::NO_ROUTE,
                                    format!(
                                        "value `{}` is not derivable on its own: {e}",
                                        value.dimension
                                    ),
                                ),
                                guests,
                            )
                        }
                    }
                }
            }
        };
        // Routability: which workers reproduce that exact plan from
        // their own shard (plan-fingerprint equality, not merely
        // holding the cover — see `topology`).
        let sub_key = format!("{}|{}", canonical.domains.join(","), value.dimension);
        let (sub_live, sub_any) = inner.topology.local_solvers(
            &sub_query,
            &route_engine,
            sub_plan.fingerprint(),
            &sub_key,
        );
        if sub_live.is_empty() {
            return if sub_any.is_empty() {
                let sub_cover: Vec<&str> = sub_plan.loads();
                fail(
                    ErrorBody::new(
                        codes::NO_ROUTE,
                        format!(
                            "deriving value `{}` needs datasets {sub_cover:?} on one worker, \
                             but no shard reproduces that derivation locally; co-locate them \
                             or raise the partitioner's --replicas",
                            value.dimension
                        ),
                    ),
                    guests,
                )
            } else {
                fail(
                    ErrorBody::new(
                        codes::WORKER_UNAVAILABLE,
                        format!(
                            "every worker able to derive value `{}` is marked down",
                            value.dimension
                        ),
                    ),
                    guests,
                )
            };
        }
        // Prefer a worker already receiving a sub-query, minimizing
        // fan-out width.
        let chosen = sub_live
            .iter()
            .copied()
            .find(|w| groups.iter().any(|g| g.candidates.first() == Some(w)))
            .unwrap_or(sub_live[0]);
        match groups
            .iter_mut()
            .find(|g| g.candidates.first() == Some(&chosen))
        {
            Some(group) => {
                group.values.push(vi);
                // A failover target must be able to answer the whole
                // group: intersect with this value's live holders.
                group
                    .candidates
                    .retain(|c| *c == chosen || sub_live.contains(c));
            }
            None => {
                let mut candidates = vec![chosen];
                candidates.extend(sub_live.into_iter().filter(|w| *w != chosen));
                groups.push(Group {
                    candidates,
                    values: vec![vi],
                });
            }
        }
    }

    if groups.len() > 1 {
        inner.metrics.scatter_gather();
    }

    // Fan out: one thread per group, each with its own failover budget.
    let results: Vec<(Result<Response, String>, Guests)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .iter()
            .enumerate()
            .map(|(gi, group)| {
                let spec = &spec;
                scope.spawn(move || {
                    let mut sub_spec = QuerySpec {
                        domains: spec.domains.clone(),
                        values: group
                            .values
                            .iter()
                            .map(|&vi| spec.values[vi].clone())
                            .collect(),
                        window_secs: spec.window_secs,
                        step_secs: spec.step_secs,
                        limit: Some(inner.config.fanout_limit),
                    };
                    sub_spec.window_secs = Some(window);
                    sub_spec.step_secs = Some(step);
                    let sub = sub_request(job, &format!("{}.g{gi}", job.query_id), sub_spec);
                    let mut guests = Guests::new();
                    let result = call_with_failover(
                        inner,
                        &group.candidates,
                        &sub,
                        job.deadline,
                        trace,
                        &mut guests,
                    );
                    (result, guests)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fan-out thread"))
            .collect()
    });

    let mut partials = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut worst_failure: Option<sjdf::FailureReport> = None;
    let mut any_degraded = false;
    for (gi, (result, sub_guests)) in results.into_iter().enumerate() {
        guests.extend(sub_guests);
        match result {
            Ok(resp) => {
                if resp.is_degraded() {
                    any_degraded = true;
                }
                if let Some(f) = resp.failure {
                    worst_failure = Some(f);
                }
                match resp.result {
                    Some(result) => partials.push(result),
                    None => failures.push(format!(
                        "sub-query {gi}: {}",
                        resp.error
                            .map(|e| format!("{}: {}", e.code, e.message))
                            .unwrap_or_else(|| resp.status.clone())
                    )),
                }
            }
            Err(e) => failures.push(format!("sub-query {gi}: {e}")),
        }
    }

    if partials.is_empty() {
        return fail(
            ErrorBody::new(
                codes::WORKER_UNAVAILABLE,
                format!(
                    "all scatter-gather sub-queries failed: {}",
                    failures.join("; ")
                ),
            ),
            guests,
        );
    }

    let mut merged = match crate::merge::natural_join(partials) {
        Ok(merged) => merged,
        Err(e) => {
            return fail(
                ErrorBody::new(codes::EXEC_FAILED, format!("scatter-gather merge: {e}")),
                guests,
            )
        }
    };
    // Canonical order: the query's domains first, then its values, rows
    // sorted — deterministic regardless of which worker answered first.
    let mut preferred = canonical.domains.clone();
    preferred.extend(canonical.values.iter().map(|v| v.dimension.clone()));
    crate::merge::canonicalize(&mut merged, &preferred);
    merged.row_count = merged.rows.len();
    if merged.rows.len() > limit {
        merged.rows.truncate(limit);
        merged.truncated = true;
    }
    merged.elapsed_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;

    let response = if failures.is_empty() && !any_degraded {
        let mut r = Response::ok(&id);
        r.result = Some(merged);
        if caching {
            inner.route_cache.put(cache_key, r.clone());
        }
        r
    } else {
        inner.metrics.degraded();
        let detail = if failures.is_empty() {
            "a shard answered degraded".to_string()
        } else {
            failures.join("; ")
        };
        let mut r = Response::degraded(
            &id,
            ErrorBody::new(codes::DEGRADED, format!("partial merge: {detail}")),
            worst_failure.unwrap_or_default(),
        );
        r.result = Some(merged);
        r
    };
    (response, guests)
}

/// Build the request forwarded to a worker: fresh id under the router's
/// query id, the client's tenant, remaining deadline, propagated trace
/// flag, and the router's protocol stamp.
fn sub_request(job: &Job, sub_id: &str, spec: QuerySpec) -> Request {
    let remaining = job
        .deadline
        .saturating_duration_since(Instant::now())
        .as_millis() as u64;
    let mut sub = Request::query(sub_id, &job.tenant, spec).with_proto();
    sub.timeout_ms = Some(remaining.max(1));
    sub.trace = if job.request.wants_trace() {
        Some(true)
    } else {
        None
    };
    sub
}

/// Try candidates in order (primary, then one replica — single-retry
/// failover). Transport and framing errors advance to the next
/// candidate; any structured response (ok, degraded, or a worker-side
/// error) is final and passes through.
fn call_with_failover(
    inner: &RouterInner,
    candidates: &[usize],
    request: &Request,
    deadline: Instant,
    trace: Option<(SpanId, SpanId)>,
    guests: &mut Guests,
) -> Result<Response, String> {
    let tracer = inner.ctx.tracer();
    let mut last_err = "no candidate workers".to_string();
    for (attempt, &idx) in candidates.iter().take(2).enumerate() {
        if attempt > 0 {
            inner.metrics.failover();
        }
        let mut span = trace.map(|(parent, root)| tracer.child_span("worker_call", parent, root));
        if let Some(s) = span.as_mut() {
            s.set_detail(format!(
                "worker={idx} addr={} attempt={attempt}",
                inner.topology.workers[idx].addr
            ));
        }
        match dispatch(inner, idx, request, deadline) {
            Ok(mut resp) => {
                let worker_spans = resp.trace.take().and_then(|t| t.spans);
                if let Some(s) = span.as_mut() {
                    if !resp.is_ok() {
                        s.fail();
                    }
                    if let Some(spans) = worker_spans {
                        guests.push((s.id(), spans));
                    }
                }
                return Ok(resp);
            }
            Err(e) => {
                if let Some(s) = span.as_mut() {
                    s.fail();
                }
                last_err = e;
            }
        }
    }
    Err(last_err)
}

/// One remote call. A transport or framing failure counts against the
/// worker (possibly marking it down); any parsed response resets its
/// failure streak.
fn dispatch(
    inner: &RouterInner,
    idx: usize,
    request: &Request,
    deadline: Instant,
) -> Result<Response, String> {
    let addr = inner.topology.workers[idx].addr.clone();
    let remaining = deadline.saturating_duration_since(Instant::now());
    let attempt = (|| -> Result<Response, ClientError> {
        let mut client = Client::connect_as(addr.as_str(), &request.tenant)?;
        client.set_read_timeout(Some(remaining + Duration::from_millis(500)))?;
        client.call(request)
    })();
    match attempt {
        Ok(resp) => {
            inner.topology.record_success(idx);
            Ok(resp)
        }
        Err(e) => {
            note_failure(inner, idx);
            Err(format!("worker {addr}: {e}"))
        }
    }
}

fn note_failure(inner: &RouterInner, idx: usize) {
    if inner
        .topology
        .record_failure(idx, inner.config.markdown_after)
    {
        inner.metrics.markdown();
    }
}

/// Fetch a worker's `catalog` manifest with the probe timeout.
fn fetch_catalog(inner: &RouterInner, idx: usize) -> Result<CatalogInfo, String> {
    let addr = inner.topology.workers[idx].addr.clone();
    let fetch = (|| -> Result<Response, ClientError> {
        let mut client = Client::connect_as(addr.as_str(), "")?;
        client.set_read_timeout(Some(inner.config.probe_timeout))?;
        client.catalog()
    })();
    match fetch {
        Ok(resp) => resp
            .catalog
            .ok_or_else(|| format!("worker {addr}: catalog response without payload")),
        Err(e) => Err(format!("worker {addr}: {e}")),
    }
}

fn heartbeat_loop(inner: &Arc<RouterInner>) {
    let mut next = Instant::now() + inner.config.heartbeat;
    while !inner.stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(20));
        if Instant::now() < next {
            continue;
        }
        next = Instant::now() + inner.config.heartbeat;
        probe_all(inner);
    }
}

/// One heartbeat pass: probe `health` on every worker. A successful
/// probe whose epoch moved (or that resurrects a marked-down worker)
/// triggers a catalog refetch and wholesale cache invalidation; failed
/// probes count toward mark-down.
fn probe_all(inner: &RouterInner) {
    for idx in 0..inner.topology.workers.len() {
        let worker = &inner.topology.workers[idx];
        let addr = worker.addr.clone();
        let was_healthy = worker.healthy();
        let known_epoch = worker.epoch();
        let probe = (|| -> Result<Option<u64>, ClientError> {
            let mut client = Client::connect_as(addr.as_str(), "")?;
            client.set_read_timeout(Some(inner.config.probe_timeout))?;
            let resp = client.health()?;
            Ok(resp.health.and_then(|h| h.catalog_epoch))
        })();
        match probe {
            Ok(epoch) => {
                let changed = epoch.is_some_and(|e| e != known_epoch);
                if was_healthy && !changed {
                    inner.topology.record_success(idx);
                    continue;
                }
                // Mark-up or epoch change: the shard's contents may
                // differ from what the planning catalog assumes.
                if let Ok(info) = fetch_catalog(inner, idx) {
                    inner.topology.refresh(idx, info, &inner.ctx);
                    if was_healthy && changed {
                        inner.metrics.epoch_invalidation();
                    }
                    inner.route_cache.invalidate_all();
                    inner.plan_cache.clear();
                }
            }
            Err(_) => note_failure(inner, idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_empty_and_unreachable_fleets() {
        assert!(Router::new(Vec::new(), RouterConfig::default()).is_err());
        let config = RouterConfig {
            probe_timeout: Duration::from_millis(100),
            ..RouterConfig::default()
        };
        // A port from the TEST-NET-ish reserved loopback range nobody
        // listens on: connection refused, so the constructor fails fast.
        let err = match Router::new(vec!["127.0.0.1:1".into()], config) {
            Err(e) => e,
            Ok(_) => panic!("expected an unreachable-fleet error"),
        };
        assert!(err.contains("no reachable workers"), "{err}");
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = RouterConfig::default();
        assert!(c.fanout_limit >= c.default_limit);
        assert!(c.markdown_after >= 1);
        assert!(c.route_cache_entries > 0);
    }
}
