//! The router's live metrics registry.
//!
//! Same discipline as [`sjserve::metrics::ServiceMetrics`]: lock-free
//! atomics for counters, a short mutex around the latency histogram and
//! the per-tenant table. Snapshots serialize to the shared wire shape
//! [`RouterStatsReport`] so `sjq --stats` renders workers and routers
//! with one code path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sjserve::metrics::{Histogram, RouterStatsReport, TenantStats, WorkerSummary};

/// Counters every route path reports into.
#[derive(Debug)]
pub struct RouterMetrics {
    started: Instant,
    routed_queries: AtomicU64,
    scatter_gather_queries: AtomicU64,
    worker_markdowns: AtomicU64,
    failovers: AtomicU64,
    epoch_invalidations: AtomicU64,
    rejected_queue_full: AtomicU64,
    timeouts: AtomicU64,
    degraded: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    latency: Mutex<Histogram>,
    tenants: Mutex<BTreeMap<String, TenantStats>>,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        RouterMetrics {
            started: Instant::now(),
            routed_queries: AtomicU64::new(0),
            scatter_gather_queries: AtomicU64::new(0),
            worker_markdowns: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            epoch_invalidations: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            latency: Mutex::new(Histogram::default()),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }
}

impl RouterMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn routed(&self) {
        self.routed_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn scatter_gather(&self) {
        self.scatter_gather_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn markdown(&self) {
        self.worker_markdowns.fetch_add(1, Ordering::Relaxed);
    }

    pub fn failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub fn epoch_invalidation(&self) {
        self.epoch_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn timed_out(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn rejected_full(&self, tenant: &str) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        self.tenant_entry(tenant, |t| t.rejected += 1);
    }

    pub fn admitted(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.admitted += 1);
    }

    pub fn completed(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.completed += 1);
    }

    fn tenant_entry(&self, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
        let mut map = self.tenants.lock();
        let entry = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantStats {
                tenant: tenant.to_string(),
                ..TenantStats::default()
            });
        f(entry);
    }

    pub fn queue_depth_changed(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one routed request's end-to-end latency (queue + fan-out +
    /// merge).
    pub fn route_finished(&self, latency: Duration) {
        self.latency.lock().record(latency);
    }

    pub fn markdown_count(&self) -> u64 {
        self.worker_markdowns.load(Ordering::Relaxed)
    }

    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    pub fn epoch_invalidation_count(&self) -> u64 {
        self.epoch_invalidations.load(Ordering::Relaxed)
    }

    /// Snapshot everything; route-cache numbers and worker summaries are
    /// supplied by the router, which owns those structures.
    pub fn snapshot(
        &self,
        route_cache_hits: u64,
        route_cache_entries: u64,
        workers: Vec<WorkerSummary>,
    ) -> RouterStatsReport {
        let latency = self.latency.lock();
        let per_tenant = self.tenants.lock().values().cloned().collect();
        RouterStatsReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            routed_queries: self.routed_queries.load(Ordering::Relaxed),
            scatter_gather_queries: self.scatter_gather_queries.load(Ordering::Relaxed),
            worker_markdowns: self.worker_markdowns.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            epoch_invalidations: self.epoch_invalidations.load(Ordering::Relaxed),
            route_cache_hits,
            route_cache_entries,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            route_latency_count: latency.count(),
            route_latency_ms_p50: latency.quantile_ms(0.50),
            route_latency_ms_p99: latency.quantile_ms(0.99),
            route_latency_ms_max: latency.max_ms(),
            workers,
            per_tenant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reach_the_snapshot() {
        let m = RouterMetrics::new();
        m.routed();
        m.routed();
        m.scatter_gather();
        m.markdown();
        m.failover();
        m.epoch_invalidation();
        m.degraded();
        m.admitted("a");
        m.completed("a");
        m.rejected_full("b");
        m.queue_depth_changed(5);
        m.queue_depth_changed(1);
        m.route_finished(Duration::from_millis(8));
        let s = m.snapshot(3, 2, Vec::new());
        assert_eq!(s.routed_queries, 2);
        assert_eq!(s.scatter_gather_queries, 1);
        assert_eq!(s.worker_markdowns, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.epoch_invalidations, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.route_cache_hits, 3);
        assert_eq!(s.route_cache_entries, 2);
        assert_eq!(s.queue_depth_peak, 5);
        assert_eq!(s.route_latency_count, 1);
        assert!(s.route_latency_ms_p99 > 0.0);
        assert_eq!(s.per_tenant.len(), 2);
        assert!(s.render().contains("scatter-gather"));
    }
}
