//! The router's live metrics registry.
//!
//! Same discipline as [`sjserve::metrics::ServiceMetrics`]: lock-free
//! atomics for counters, a short mutex around the latency histogram and
//! the per-tenant table. Snapshots serialize to the shared wire shape
//! [`RouterStatsReport`] so `sjq --stats` renders workers and routers
//! with one code path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sjserve::metrics::{Histogram, RouterStatsReport, TenantStats, WorkerSummary};

/// Counters every route path reports into.
#[derive(Debug)]
pub struct RouterMetrics {
    started: Instant,
    routed_queries: AtomicU64,
    scatter_gather_queries: AtomicU64,
    worker_markdowns: AtomicU64,
    failovers: AtomicU64,
    epoch_invalidations: AtomicU64,
    rejected_queue_full: AtomicU64,
    timeouts: AtomicU64,
    degraded: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    requests_json: AtomicU64,
    requests_binary: AtomicU64,
    streams_active: AtomicU64,
    stream_frames_pushed: AtomicU64,
    stream_worker_frames: AtomicU64,
    stream_re_emissions: AtomicU64,
    stream_appends_forwarded: AtomicU64,
    stream_worker_losses: AtomicU64,
    latency: Mutex<Histogram>,
    tenants: Mutex<BTreeMap<String, TenantStats>>,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        RouterMetrics {
            started: Instant::now(),
            routed_queries: AtomicU64::new(0),
            scatter_gather_queries: AtomicU64::new(0),
            worker_markdowns: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            epoch_invalidations: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            requests_json: AtomicU64::new(0),
            requests_binary: AtomicU64::new(0),
            streams_active: AtomicU64::new(0),
            stream_frames_pushed: AtomicU64::new(0),
            stream_worker_frames: AtomicU64::new(0),
            stream_re_emissions: AtomicU64::new(0),
            stream_appends_forwarded: AtomicU64::new(0),
            stream_worker_losses: AtomicU64::new(0),
            latency: Mutex::new(Histogram::default()),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }
}

impl RouterMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    pub fn routed(&self) {
        self.routed_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn scatter_gather(&self) {
        self.scatter_gather_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn markdown(&self) {
        self.worker_markdowns.fetch_add(1, Ordering::Relaxed);
    }

    pub fn failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub fn epoch_invalidation(&self) {
        self.epoch_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn timed_out(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub fn rejected_full(&self, tenant: &str) {
        self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
        self.tenant_entry(tenant, |t| t.rejected += 1);
    }

    pub fn admitted(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.admitted += 1);
    }

    pub fn completed(&self, tenant: &str) {
        self.tenant_entry(tenant, |t| t.completed += 1);
    }

    fn tenant_entry(&self, tenant: &str, f: impl FnOnce(&mut TenantStats)) {
        let mut map = self.tenants.lock();
        let entry = map
            .entry(tenant.to_string())
            .or_insert_with(|| TenantStats {
                tenant: tenant.to_string(),
                ..TenantStats::default()
            });
        f(entry);
    }

    /// One request arrived on a connection of the given transport.
    pub fn protocol_request(&self, binary: bool) {
        if binary {
            self.requests_binary.fetch_add(1, Ordering::Relaxed);
        } else {
            self.requests_json.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A streamed fan-out subscription opened on this router.
    pub fn stream_opened(&self) {
        self.streams_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A streamed fan-out subscription ended (client or teardown).
    pub fn stream_closed(&self) {
        // Saturating: teardown paths may race connection close.
        let _ = self
            .streams_active
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// One merged frame pushed to a router subscriber.
    pub fn frame_pushed(&self, re_emission: bool) {
        self.stream_frames_pushed.fetch_add(1, Ordering::Relaxed);
        if re_emission {
            self.stream_re_emissions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One window frame received from a worker subscription.
    pub fn worker_frame(&self) {
        self.stream_worker_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// One append batch forwarded to `n` workers.
    pub fn appends_forwarded(&self, n: usize) {
        self.stream_appends_forwarded
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// A worker died while a router subscription depended on it.
    pub fn stream_worker_lost(&self) {
        self.stream_worker_losses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn queue_depth_changed(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one routed request's end-to-end latency (queue + fan-out +
    /// merge).
    pub fn route_finished(&self, latency: Duration) {
        self.latency.lock().record(latency);
    }

    pub fn markdown_count(&self) -> u64 {
        self.worker_markdowns.load(Ordering::Relaxed)
    }

    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    pub fn epoch_invalidation_count(&self) -> u64 {
        self.epoch_invalidations.load(Ordering::Relaxed)
    }

    /// Snapshot everything; route-cache numbers and worker summaries are
    /// supplied by the router, which owns those structures.
    pub fn snapshot(
        &self,
        route_cache_hits: u64,
        route_cache_entries: u64,
        workers: Vec<WorkerSummary>,
    ) -> RouterStatsReport {
        let latency = self.latency.lock();
        let per_tenant = self.tenants.lock().values().cloned().collect();
        RouterStatsReport {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            routed_queries: self.routed_queries.load(Ordering::Relaxed),
            scatter_gather_queries: self.scatter_gather_queries.load(Ordering::Relaxed),
            worker_markdowns: self.worker_markdowns.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            epoch_invalidations: self.epoch_invalidations.load(Ordering::Relaxed),
            route_cache_hits,
            route_cache_entries,
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            route_latency_count: latency.count(),
            route_latency_ms_p50: latency.quantile_ms(0.50),
            route_latency_ms_p99: latency.quantile_ms(0.99),
            route_latency_ms_max: latency.max_ms(),
            requests_json: self.requests_json.load(Ordering::Relaxed),
            requests_binary: self.requests_binary.load(Ordering::Relaxed),
            streams_active: self.streams_active.load(Ordering::Relaxed),
            stream_frames_pushed: self.stream_frames_pushed.load(Ordering::Relaxed),
            stream_worker_frames: self.stream_worker_frames.load(Ordering::Relaxed),
            stream_re_emissions: self.stream_re_emissions.load(Ordering::Relaxed),
            stream_appends_forwarded: self.stream_appends_forwarded.load(Ordering::Relaxed),
            stream_worker_losses: self.stream_worker_losses.load(Ordering::Relaxed),
            workers,
            per_tenant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reach_the_snapshot() {
        let m = RouterMetrics::new();
        m.routed();
        m.routed();
        m.scatter_gather();
        m.markdown();
        m.failover();
        m.epoch_invalidation();
        m.degraded();
        m.admitted("a");
        m.completed("a");
        m.rejected_full("b");
        m.queue_depth_changed(5);
        m.queue_depth_changed(1);
        m.route_finished(Duration::from_millis(8));
        m.protocol_request(true);
        m.protocol_request(true);
        m.protocol_request(false);
        m.stream_opened();
        m.stream_opened();
        m.stream_closed();
        m.frame_pushed(false);
        m.frame_pushed(true);
        m.worker_frame();
        m.appends_forwarded(3);
        m.stream_worker_lost();
        let s = m.snapshot(3, 2, Vec::new());
        assert_eq!(s.routed_queries, 2);
        assert_eq!(s.requests_binary, 2);
        assert_eq!(s.requests_json, 1);
        assert_eq!(s.streams_active, 1);
        assert_eq!(s.stream_frames_pushed, 2);
        assert_eq!(s.stream_re_emissions, 1);
        assert_eq!(s.stream_worker_frames, 1);
        assert_eq!(s.stream_appends_forwarded, 3);
        assert_eq!(s.stream_worker_losses, 1);
        assert_eq!(s.scatter_gather_queries, 1);
        assert_eq!(s.worker_markdowns, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.epoch_invalidations, 1);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.route_cache_hits, 3);
        assert_eq!(s.route_cache_entries, 2);
        assert_eq!(s.queue_depth_peak, 5);
        assert_eq!(s.route_latency_count, 1);
        assert!(s.route_latency_ms_p99 > 0.0);
        assert_eq!(s.per_tenant.len(), 2);
        assert!(s.render().contains("scatter-gather"));
    }
}
