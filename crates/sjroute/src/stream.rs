//! Streamed fan-out: standing queries served *through* the router.
//!
//! A `subscribe: true` query arriving on the router opens one upstream
//! subscription per live worker whose own catalog reproduces the
//! reference plan (the same routability test batch queries use, so
//! every fed worker executes byte-identical derivations). Appends
//! forwarded by the router reach **all** live owners of the dataset in
//! the same order, so each fed worker sees the same accepted prefix and
//! — window evaluation being deterministic over that prefix — emits the
//! same frame sequence a single-node `sjserved` would.
//!
//! The router merges those per-worker frame streams in lockstep: one
//! reader thread per worker pushes incoming frames onto that worker's
//! queue, and a merge pass pops one frame from every live queue
//! whenever all of them are non-empty, forwarding a single copy to the
//! client (ids rewritten to the router-minted subscription id). Because
//! each worker's emission order is watermark-monotone, "pop when every
//! live queue has a head" *is* the fleet watermark rule: a frame goes
//! out exactly when the slowest live worker has reached it, i.e. the
//! fleet watermark — the minimum over live workers — has passed its
//! window.
//!
//! Worker loss mid-subscription (a dead feed connection, or an append
//! forward that failed and therefore broke that worker's accepted
//! prefix) marks the feed dead: it stops gating the merge and its
//! queued frames are discarded (the remaining live feeds carry
//! identical copies). When the *last* feed dies the client gets one
//! structured `worker_unavailable` error frame and the subscription is
//! torn down — degraded, never hung.

use std::collections::VecDeque;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sjserve::client::Client;
use sjserve::protocol::{codes, ErrorBody, Response};
use sjserve::server::EmissionSink;

use crate::router::RouterInner;

/// One worker's frame feed for one routed subscription.
pub(crate) struct WorkerFeed {
    /// Index into `Topology::workers`.
    pub(crate) idx: usize,
    /// Live = still gating the merge. Feeds only ever go live → dead:
    /// a worker that missed even one forwarded append has a diverged
    /// accepted prefix and can never rejoin the lockstep.
    alive: AtomicBool,
    /// Watermark of the last frame this worker delivered (µs).
    watermark_us: AtomicI64,
    /// Frames delivered but not yet merged.
    queue: Mutex<VecDeque<Response>>,
    /// Clone of the feed connection's socket, so teardown can unblock
    /// the reader thread's blocking read.
    socket: TcpStream,
}

impl WorkerFeed {
    fn alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }
}

/// One standing query routed across the fleet.
pub(crate) struct RouterSub {
    /// Router-minted subscription id (`rs…`); every frame the client
    /// sees carries this, never a worker's own id.
    pub(crate) query_id: String,
    /// The client's subscribe request id, echoed on every frame.
    request_id: String,
    /// The client connection's sink.
    sink: Arc<dyn EmissionSink>,
    feeds: Vec<Arc<WorkerFeed>>,
    /// Serializes merge passes across the reader threads.
    merge: Mutex<()>,
    closed: AtomicBool,
}

impl RouterSub {
    fn closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

/// Every routed subscription currently open.
pub(crate) struct RouterStreams {
    subs: Mutex<Vec<Arc<RouterSub>>>,
}

impl RouterStreams {
    pub(crate) fn new() -> Self {
        RouterStreams {
            subs: Mutex::new(Vec::new()),
        }
    }

    /// Open a routed subscription over already-subscribed worker
    /// clients and start its reader threads.
    pub(crate) fn open(
        inner: &Arc<RouterInner>,
        query_id: String,
        request_id: String,
        sink: &Arc<dyn EmissionSink>,
        workers: Vec<(usize, Client)>,
    ) -> Arc<RouterSub> {
        let mut feeds = Vec::with_capacity(workers.len());
        let mut readers = Vec::with_capacity(workers.len());
        for (idx, client) in workers {
            let socket = client
                .socket_handle()
                .expect("feed socket clones (just connected)");
            let feed = Arc::new(WorkerFeed {
                idx,
                alive: AtomicBool::new(true),
                watermark_us: AtomicI64::new(i64::MIN),
                queue: Mutex::new(VecDeque::new()),
                socket,
            });
            feeds.push(Arc::clone(&feed));
            readers.push((feed, client));
        }
        let sub = Arc::new(RouterSub {
            query_id,
            request_id,
            sink: Arc::clone(sink),
            feeds,
            merge: Mutex::new(()),
            closed: AtomicBool::new(false),
        });
        inner.streams.subs.lock().push(Arc::clone(&sub));
        inner.metrics.stream_opened();
        for (feed, client) in readers {
            let inner = Arc::clone(inner);
            let sub = Arc::clone(&sub);
            let name = format!("sjroute-feed-w{}", feed.idx);
            std::thread::Builder::new()
                .name(name)
                .spawn(move || reader_loop(&inner, &sub, &feed, client))
                .expect("spawn feed reader");
        }
        sub
    }

    /// A forwarded append failed against worker `idx`: its accepted
    /// prefix has diverged from the fleet's, so every subscription it
    /// feeds must stop trusting it. Shutting the feed socket makes the
    /// reader thread observe the loss and run the merge/teardown logic
    /// on its own path.
    pub(crate) fn worker_lost(&self, idx: usize) {
        let subs: Vec<Arc<RouterSub>> = self.subs.lock().clone();
        for sub in subs {
            for feed in &sub.feeds {
                if feed.idx == idx && feed.alive() {
                    let _ = feed.socket.shutdown(Shutdown::Both);
                }
            }
        }
    }

    /// The client connection owning `sink` ended: tear down every
    /// subscription bound to it.
    pub(crate) fn connection_closed(&self, inner: &RouterInner, sink: &Arc<dyn EmissionSink>) {
        let bound: Vec<Arc<RouterSub>> = self
            .subs
            .lock()
            .iter()
            .filter(|s| Arc::ptr_eq(&s.sink, sink))
            .cloned()
            .collect();
        for sub in bound {
            self.close(inner, &sub);
        }
    }

    /// Router shutdown: tear down everything.
    pub(crate) fn shutdown_all(&self, inner: &RouterInner) {
        let all: Vec<Arc<RouterSub>> = self.subs.lock().clone();
        for sub in all {
            self.close(inner, &sub);
        }
    }

    fn close(&self, inner: &RouterInner, sub: &Arc<RouterSub>) {
        if sub.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Shutting the sockets drops the worker-side subscriptions
        // (their connections close) and unblocks the reader threads.
        for feed in &sub.feeds {
            let _ = feed.socket.shutdown(Shutdown::Both);
        }
        self.subs.lock().retain(|s| !Arc::ptr_eq(s, sub));
        inner.metrics.stream_closed();
    }
}

/// One worker's feed: read frames until the connection dies or the
/// subscription closes, running a merge pass after every event.
fn reader_loop(
    inner: &Arc<RouterInner>,
    sub: &Arc<RouterSub>,
    feed: &Arc<WorkerFeed>,
    mut client: Client,
) {
    loop {
        if sub.closed() {
            return;
        }
        match client.next_frame() {
            Ok(frame) => {
                if let Some(w) = &frame.window {
                    feed.watermark_us.store(w.watermark_us, Ordering::Relaxed);
                }
                inner.metrics.worker_frame();
                feed.queue.lock().push_back(frame);
                pump(inner, sub);
            }
            Err(_) => {
                // Feed connection gone (worker died, or teardown shut
                // the socket). Mark the feed dead, let the merge
                // continue over the survivors, and if none remain give
                // the client a structured error instead of silence.
                let was_alive = feed.alive.swap(false, Ordering::AcqRel);
                if was_alive && !sub.closed() {
                    inner.metrics.stream_worker_lost();
                }
                pump(inner, sub);
                if !sub.closed() && !sub.feeds.iter().any(|f| f.alive()) {
                    let mut frame = Response::fail(
                        &sub.request_id,
                        ErrorBody::new(
                            codes::WORKER_UNAVAILABLE,
                            "every worker feeding this standing query is unreachable; \
                             subscription closed",
                        ),
                    );
                    frame.query_id = Some(sub.query_id.clone());
                    let _ = sub.sink.send(&frame);
                    inner.streams.close(inner, sub);
                }
                return;
            }
        }
    }
}

/// Merge pass: while every live feed has a queued frame, pop one from
/// each and forward a single copy (the feeds carry identical bytes —
/// that is the routability guarantee) with ids rewritten to the
/// router's. A frame without a `window` payload is a worker-side
/// subscription failure (the engine already dropped the standing
/// query): forward it and tear the routed subscription down, matching
/// single-node semantics.
fn pump(inner: &Arc<RouterInner>, sub: &Arc<RouterSub>) {
    let _guard = sub.merge.lock();
    loop {
        if sub.closed() {
            return;
        }
        let live: Vec<&Arc<WorkerFeed>> = sub.feeds.iter().filter(|f| f.alive()).collect();
        if live.is_empty() || live.iter().any(|f| f.queue.lock().is_empty()) {
            return;
        }
        let mut heads: Vec<Response> = live
            .iter()
            .map(|f| f.queue.lock().pop_front().expect("checked non-empty"))
            .collect();
        let mut frame = heads.swap_remove(0);
        frame.id = sub.request_id.clone();
        frame.query_id = Some(sub.query_id.clone());
        if let Some(w) = frame.window.as_mut() {
            w.query_id = sub.query_id.clone();
        }
        let re_emission = frame.window.as_ref().is_some_and(|w| w.re_emission);
        let tear_down = frame.window.is_none();
        if sub.sink.send(&frame).is_err() {
            // Client gone; the connection teardown will also land here
            // via `connection_closed`, but don't wait for it.
            inner.streams.close(inner, sub);
            return;
        }
        inner.metrics.frame_pushed(re_emission);
        if tear_down {
            inner.streams.close(inner, sub);
            return;
        }
    }
}
