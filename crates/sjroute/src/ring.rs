//! Consistent-hash shard placement.
//!
//! Datasets are placed on shards by hashing the *dataset name* onto a
//! ring of virtual nodes. Virtual-node identity is the shard **index**
//! (`shard-0` … `shard-N-1`), so the same `(name, shard_count)` pair maps
//! identically in every process — the offline partitioner
//! (`sjrouted --partition`) and the online router agree on placement
//! without ever talking to each other. Growing the fleet from N to N+1
//! shards moves only ~1/(N+1) of the datasets, which is the property that
//! makes incremental reshards cheap.
//!
//! The ring also defines the *failover order*: walking clockwise from a
//! key's position visits every shard exactly once, and the partitioner
//! places replicas on the next `r` distinct shards, so the router's
//! retry-on-replica is just "next live holder in preference order".

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Ring position of a byte string: FNV-1a plus a SplitMix64-style
/// finalizer. Raw FNV has weak avalanche in its high bits on short,
/// similar strings (exactly what vnode labels are), which clusters ring
/// positions; the finalizer spreads them.
fn position(bytes: &[u8]) -> u64 {
    let mut z = fnv1a(bytes);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Virtual nodes per shard. Enough that a handful of datasets spread
/// roughly evenly over a handful of shards.
pub const VNODES_PER_SHARD: usize = 256;

/// A consistent-hash ring over `shards` positional shard identities.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(hash, shard)` sorted by hash.
    vnodes: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    pub fn new(shards: usize) -> Self {
        Ring::with_vnodes(shards, VNODES_PER_SHARD)
    }

    pub fn with_vnodes(shards: usize, vnodes_per_shard: usize) -> Self {
        let mut vnodes = Vec::with_capacity(shards * vnodes_per_shard);
        for shard in 0..shards {
            for v in 0..vnodes_per_shard {
                vnodes.push((position(format!("shard-{shard}#{v}").as_bytes()), shard));
            }
        }
        vnodes.sort_unstable();
        Ring { vnodes, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Every shard, in clockwise ring order from `key`'s position: the
    /// primary holder first, then each successive failover replica.
    pub fn preference(&self, key: &str) -> Vec<usize> {
        if self.vnodes.is_empty() {
            return Vec::new();
        }
        let h = position(key.as_bytes());
        let start = self.vnodes.partition_point(|&(vh, _)| vh < h);
        let mut seen = vec![false; self.shards];
        let mut order = Vec::with_capacity(self.shards);
        for i in 0..self.vnodes.len() {
            let (_, shard) = self.vnodes[(start + i) % self.vnodes.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }

    /// The primary shard for `key`.
    pub fn owner(&self, key: &str) -> Option<usize> {
        self.preference(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for key in ["rack_temps", "job_queue_log", "node_layout", "ds7"] {
            assert_eq!(a.preference(key), b.preference(key));
        }
    }

    #[test]
    fn preference_visits_every_shard_once() {
        let ring = Ring::new(5);
        for key in ["a", "b", "c", "weird/name", ""] {
            let pref = ring.preference(key);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "key `{key}`: {pref:?}");
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[ring.owner(&format!("dataset-{i}")).unwrap()] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                (120..=400).contains(&n),
                "shard {shard} owns {n}/1000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_few_keys() {
        let four = Ring::new(4);
        let five = Ring::new(5);
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("dataset-{i}");
                four.owner(&key) != five.owner(&key)
            })
            .count();
        // Ideal is 1/5 = 200; allow generous slack for a small ring.
        assert!(moved < 450, "{moved}/1000 keys moved going 4 -> 5 shards");
    }

    #[test]
    fn single_shard_ring_owns_everything() {
        let ring = Ring::new(1);
        assert_eq!(ring.preference("anything"), vec![0]);
    }
}
