//! Offline shard planning: split one catalog directory into per-shard
//! directories that `sjserved --data` can load.
//!
//! Placement is a pure function of `(dataset name, shard count)` via the
//! consistent-hash [`Ring`], so the router can later predict every
//! worker's holdings without coordination. With `replicas > 0` each
//! dataset is additionally copied to the next `replicas` distinct shards
//! in ring order — the shards the router's failover will try when the
//! primary is marked down.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::ring::Ring;

/// Dataset-name → ordered holder shards (primary first, then replicas).
pub fn assign(datasets: &[String], shards: usize, replicas: usize) -> BTreeMap<String, Vec<usize>> {
    let ring = Ring::new(shards);
    datasets
        .iter()
        .map(|name| {
            let pref = ring.preference(name);
            let n = (1 + replicas).min(pref.len());
            (name.clone(), pref[..n].to_vec())
        })
        .collect()
}

/// One produced shard directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardDir {
    /// `out/shard-<index>`.
    pub path: PathBuf,
    /// Dataset names copied into it (primary or replica), sorted.
    pub datasets: Vec<String>,
}

/// Split the `<name>.csv` + `<name>.schema.json` pairs under `src` into
/// `shards` directories `out/shard-0` … `out/shard-N-1`.
///
/// A shard that the hash leaves empty is still created (its worker will
/// refuse to start on it — rebalance by renaming datasets or adding
/// replicas); callers should surface the returned per-shard counts so
/// that is visible before anything boots.
pub fn partition_dir(
    src: impl AsRef<Path>,
    out: impl AsRef<Path>,
    shards: usize,
    replicas: usize,
) -> std::io::Result<Vec<ShardDir>> {
    let src = src.as_ref();
    let out = out.as_ref();
    if shards == 0 {
        return Err(std::io::Error::other("need at least one shard"));
    }
    let mut names: Vec<String> = std::fs::read_dir(src)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(std::io::Error::other(format!(
            "no .csv datasets under {}",
            src.display()
        )));
    }

    let mut dirs: Vec<ShardDir> = (0..shards)
        .map(|i| ShardDir {
            path: out.join(format!("shard-{i}")),
            datasets: Vec::new(),
        })
        .collect();
    for dir in &dirs {
        std::fs::create_dir_all(&dir.path)?;
    }

    for (name, holders) in assign(&names, shards, replicas) {
        let csv = src.join(format!("{name}.csv"));
        let schema = src.join(format!("{name}.schema.json"));
        if !schema.exists() {
            return Err(std::io::Error::other(format!(
                "dataset `{name}` has no schema sidecar {}",
                schema.display()
            )));
        }
        for shard in holders {
            std::fs::copy(&csv, dirs[shard].path.join(format!("{name}.csv")))?;
            std::fs::copy(
                &schema,
                dirs[shard].path.join(format!("{name}.schema.json")),
            )?;
            dirs[shard].datasets.push(name.clone());
        }
    }
    for dir in &mut dirs {
        dir.datasets.sort();
    }
    Ok(dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sjroute-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_datasets(dir: &Path, names: &[&str]) {
        for name in names {
            std::fs::write(dir.join(format!("{name}.csv")), "a\n1\n").unwrap();
            std::fs::write(dir.join(format!("{name}.schema.json")), r#"{"fields":[]}"#).unwrap();
        }
    }

    #[test]
    fn assign_gives_each_dataset_one_primary_plus_replicas() {
        let names: Vec<String> = (0..10).map(|i| format!("ds{i}")).collect();
        let plan = assign(&names, 3, 1);
        for (name, holders) in &plan {
            assert_eq!(holders.len(), 2, "{name}: {holders:?}");
            assert_ne!(holders[0], holders[1], "{name}: replica must differ");
        }
        // Replicas capped by shard count.
        let solo = assign(&names, 1, 3);
        assert!(solo.values().all(|h| h == &vec![0]));
    }

    #[test]
    fn partition_copies_pairs_and_reports_holdings() {
        let src = tmp("part-src");
        let out = tmp("part-out");
        let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
        seed_datasets(&src, &names);
        let dirs = partition_dir(&src, &out, 2, 0).unwrap();
        assert_eq!(dirs.len(), 2);
        let total: usize = dirs.iter().map(|d| d.datasets.len()).sum();
        assert_eq!(total, names.len(), "each dataset on exactly one shard");
        for dir in &dirs {
            for name in &dir.datasets {
                assert!(dir.path.join(format!("{name}.csv")).exists());
                assert!(dir.path.join(format!("{name}.schema.json")).exists());
            }
        }
        // Placement must match what the router will compute on its own.
        let plan = assign(
            &names.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            2,
            0,
        );
        for (name, holders) in plan {
            assert!(dirs[holders[0]].datasets.contains(&name));
        }
    }

    #[test]
    fn partition_with_replicas_duplicates_datasets() {
        let src = tmp("repl-src");
        let out = tmp("repl-out");
        seed_datasets(&src, &["a", "b", "c", "d"]);
        let dirs = partition_dir(&src, &out, 3, 1).unwrap();
        let total: usize = dirs.iter().map(|d| d.datasets.len()).sum();
        assert_eq!(total, 8, "4 datasets x (1 primary + 1 replica)");
    }

    #[test]
    fn missing_sidecar_is_an_error() {
        let src = tmp("nosidecar");
        std::fs::write(src.join("lonely.csv"), "a\n1\n").unwrap();
        let out = tmp("nosidecar-out");
        assert!(partition_dir(&src, &out, 2, 0).is_err());
    }
}
