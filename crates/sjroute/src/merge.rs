//! Scatter-gather result merging.
//!
//! A cross-shard query is split per value dimension: every shard answers
//! `[domains] -> [its values]` over the datasets it holds, and the router
//! recombines the partial tables with a **natural join on the shared
//! domain columns** — the same composition the single-process engine
//! performs internally when it joins per-value derivations. The merged
//! table is then canonicalized (domain columns first, then values, rows
//! sorted), which both gives clients a deterministic order regardless of
//! which worker answered first and makes "byte-identical to
//! single-process execution" a string comparison.

use std::collections::HashMap;

use sjserve::protocol::QueryResult;

/// Natural-join a list of partial results into one table. Partials must
/// pairwise share at least one column (the query's domains guarantee
/// this: every partial carries all of them).
pub fn natural_join(mut parts: Vec<QueryResult>) -> Result<QueryResult, String> {
    if parts.is_empty() {
        return Err("nothing to merge".into());
    }
    let mut acc = parts.remove(0);
    for part in parts {
        acc = join2(acc, part)?;
    }
    Ok(acc)
}

fn join2(a: QueryResult, b: QueryResult) -> Result<QueryResult, String> {
    let shared: Vec<(usize, usize)> = a
        .columns
        .iter()
        .enumerate()
        .filter_map(|(i, col)| b.columns.iter().position(|c| c == col).map(|j| (i, j)))
        .collect();
    if shared.is_empty() {
        return Err(format!(
            "partial results share no columns ({:?} vs {:?})",
            a.columns, b.columns
        ));
    }
    let b_extra: Vec<usize> = (0..b.columns.len())
        .filter(|j| !shared.iter().any(|&(_, sj)| sj == *j))
        .collect();

    let mut index: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
    for (ri, row) in b.rows.iter().enumerate() {
        let key: Vec<&str> = shared.iter().map(|&(_, j)| row[j].as_str()).collect();
        index.entry(key).or_default().push(ri);
    }
    let mut rows = Vec::new();
    for arow in &a.rows {
        let key: Vec<&str> = shared.iter().map(|&(i, _)| arow[i].as_str()).collect();
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let mut row = arow.clone();
                row.extend(b_extra.iter().map(|&j| b.rows[ri][j].clone()));
                rows.push(row);
            }
        }
    }

    let mut columns = a.columns;
    columns.extend(b_extra.iter().map(|&j| b.columns[j].clone()));
    Ok(QueryResult {
        columns,
        row_count: rows.len(),
        rows,
        truncated: a.truncated || b.truncated,
        plan_cache_hit: a.plan_cache_hit && b.plan_cache_hit,
        result_cache_hit: a.result_cache_hit && b.result_cache_hit,
        elapsed_ms: a.elapsed_ms.max(b.elapsed_ms),
        // Per-worker engine metrics do not sum meaningfully across
        // processes; the router reports its own route latency instead.
        engine_metrics: None,
    })
}

/// Put a result in canonical form: columns reordered to `preferred`
/// order (columns not listed follow alphabetically), rows sorted
/// lexicographically. Idempotent, and independent of which worker
/// produced which column — two executions of the same query canonicalize
/// to the same bytes.
pub fn canonicalize(result: &mut QueryResult, preferred: &[String]) {
    let mut order: Vec<usize> = Vec::new();
    for name in preferred {
        if let Some(i) = result.columns.iter().position(|c| c == name) {
            if !order.contains(&i) {
                order.push(i);
            }
        }
    }
    let mut rest: Vec<usize> = (0..result.columns.len())
        .filter(|i| !order.contains(i))
        .collect();
    rest.sort_by(|&x, &y| result.columns[x].cmp(&result.columns[y]));
    order.extend(rest);

    result.columns = order.iter().map(|&i| result.columns[i].clone()).collect();
    for row in &mut result.rows {
        *row = order.iter().map(|&i| row[i].clone()).collect();
    }
    result.rows.sort();
}

/// Render a (canonicalized) result as CSV text — the byte-identity
/// witness the shard bench and tests compare across deployments.
pub fn canonical_csv(result: &QueryResult) -> String {
    let mut out = result.columns.join(",");
    out.push('\n');
    for row in &result.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(columns: &[&str], rows: &[&[&str]]) -> QueryResult {
        QueryResult {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
            row_count: rows.len(),
            truncated: false,
            plan_cache_hit: false,
            result_cache_hit: false,
            elapsed_ms: 1.0,
            engine_metrics: None,
        }
    }

    #[test]
    fn joins_on_shared_domain_columns() {
        let a = table(
            &["job", "time", "heat"],
            &[&["1001", "60", "2.5"], &["1002", "60", "3.0"]],
        );
        let b = table(
            &["job", "time", "power"],
            &[&["1001", "60", "90"], &["1003", "60", "85"]],
        );
        let merged = natural_join(vec![a, b]).unwrap();
        assert_eq!(merged.columns, vec!["job", "time", "heat", "power"]);
        assert_eq!(merged.rows, vec![vec!["1001", "60", "2.5", "90"]]);
        assert_eq!(merged.row_count, 1);
    }

    #[test]
    fn join_multiplies_on_duplicate_keys() {
        let a = table(&["k", "x"], &[&["1", "a"]]);
        let b = table(&["k", "y"], &[&["1", "p"], &["1", "q"]]);
        let merged = natural_join(vec![a, b]).unwrap();
        assert_eq!(merged.rows.len(), 2);
    }

    #[test]
    fn disjoint_columns_are_an_error_and_single_part_passes_through() {
        let a = table(&["x"], &[&["1"]]);
        let b = table(&["y"], &[&["2"]]);
        assert!(natural_join(vec![a.clone(), b]).is_err());
        assert_eq!(natural_join(vec![a.clone()]).unwrap(), a);
        assert!(natural_join(vec![]).is_err());
    }

    #[test]
    fn canonicalize_is_deterministic_across_column_and_row_order() {
        let mut a = table(
            &["heat", "job", "time"],
            &[&["3.0", "1002", "60"], &["2.5", "1001", "60"]],
        );
        let mut b = table(
            &["time", "heat", "job"],
            &[&["60", "2.5", "1001"], &["60", "3.0", "1002"]],
        );
        let preferred = vec!["job".to_string(), "time".to_string(), "heat".to_string()];
        canonicalize(&mut a, &preferred);
        canonicalize(&mut b, &preferred);
        assert_eq!(canonical_csv(&a), canonical_csv(&b));
        assert_eq!(a.columns, vec!["job", "time", "heat"]);
        assert_eq!(a.rows[0], vec!["1001", "60", "2.5"]);
    }

    #[test]
    fn canonicalize_appends_unlisted_columns_alphabetically() {
        let mut t = table(&["z", "job", "a"], &[&["1", "2", "3"]]);
        canonicalize(&mut t, &["job".to_string()]);
        assert_eq!(t.columns, vec!["job", "a", "z"]);
        assert_eq!(t.rows[0], vec!["2", "3", "1"]);
    }

    #[test]
    fn merged_truncation_flag_is_sticky() {
        let mut a = table(&["k", "x"], &[&["1", "a"]]);
        a.truncated = true;
        let b = table(&["k", "y"], &[&["1", "p"]]);
        assert!(natural_join(vec![a, b]).unwrap().truncated);
    }
}
