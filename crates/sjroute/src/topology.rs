//! The router's view of the worker fleet.
//!
//! Each worker is a [`WorkerState`]: address, health flag, consecutive
//! failure count, last-seen catalog epoch, and the shard manifest it
//! reported over the `catalog` verb. From those manifests the topology
//! maintains **planning catalogs** — every dataset registered with its
//! real schema but *zero rows* — which is all the derivation search
//! needs: solving is schema-level, so the router can compute the exact
//! plan a worker would, without holding a byte of data.
//!
//! Two planning views coexist. The *combined* catalog (union of every
//! manifest) answers "is this query solvable by the fleet at all?" and
//! fixes the **reference plan** — the derivation a single process over
//! the whole catalog would execute. A *per-worker* catalog answers
//! "does worker W derive this query with that same plan from what it
//! alone holds?" — the routability test ([`Topology::local_solvers`]).
//! Merely holding every dataset in the reference plan's cover is not
//! enough: the worker executes whatever *its own* solver picks, and a
//! shard's extra or missing datasets can steer the greedy search to a
//! different derivation (e.g. a looser join) whose rows disagree with
//! single-process execution. Plan-fingerprint equality is exactly
//! "same bytes as single-process".

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use sjcore::catalog::Catalog;
use sjcore::engine::{EngineConfig, Query, QueryEngine};
use sjcore::{Schema, SjDataset};
use sjdf::ExecCtx;
use sjserve::metrics::WorkerSummary;
use sjserve::protocol::{CatalogInfo, DatasetDesc};

use crate::ring::Ring;

/// Mutable manifest a worker last reported.
#[derive(Debug, Clone, Default)]
pub struct WorkerInfo {
    pub shard_id: Option<String>,
    pub datasets: Vec<DatasetDesc>,
}

/// One worker as the router tracks it.
#[derive(Debug)]
pub struct WorkerState {
    pub addr: String,
    healthy: AtomicBool,
    consecutive_failures: AtomicU64,
    catalog_epoch: AtomicU64,
    info: Mutex<WorkerInfo>,
}

impl WorkerState {
    fn new(addr: String) -> Self {
        WorkerState {
            addr,
            healthy: AtomicBool::new(false),
            consecutive_failures: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(0),
            info: Mutex::new(WorkerInfo::default()),
        }
    }

    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    pub fn epoch(&self) -> u64 {
        self.catalog_epoch.load(Ordering::Relaxed)
    }

    pub fn failures(&self) -> u64 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    pub fn dataset_names(&self) -> Vec<String> {
        self.info
            .lock()
            .datasets
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }

    pub fn summary(&self) -> WorkerSummary {
        let info = self.info.lock();
        WorkerSummary {
            addr: self.addr.clone(),
            shard_id: info.shard_id.clone(),
            healthy: self.healthy(),
            catalog_epoch: self.epoch(),
            datasets: info.datasets.iter().map(|d| d.name.clone()).collect(),
            consecutive_failures: self.failures(),
        }
    }
}

/// The schema-level planning state derived from every worker manifest.
pub struct Planning {
    /// Zero-row catalog over the union of every worker's datasets.
    pub catalog: Catalog,
    /// Dataset name → worker indices holding it, primary-first in ring
    /// preference order (so `[0]` is where the partitioner put the
    /// primary copy and the rest are failover replicas).
    pub owners: BTreeMap<String, Vec<usize>>,
    /// One zero-row catalog per worker (same index as
    /// [`Topology::workers`]), holding only that worker's datasets —
    /// the routability oracle: a worker can serve a (sub-)query iff its
    /// own catalog solves it.
    pub per_worker: Vec<Catalog>,
}

/// The fleet: worker states plus the planning catalog rebuilt from them.
pub struct Topology {
    pub workers: Vec<Arc<WorkerState>>,
    ring: Ring,
    planning: RwLock<Planning>,
}

impl Topology {
    pub fn new(addrs: Vec<String>) -> Self {
        let ring = Ring::new(addrs.len());
        Topology {
            workers: addrs
                .into_iter()
                .map(|a| Arc::new(WorkerState::new(a)))
                .collect(),
            ring,
            planning: RwLock::new(Planning {
                catalog: Catalog::default_hpc(),
                owners: BTreeMap::new(),
                per_worker: Vec::new(),
            }),
        }
    }

    /// Read access to the planning catalog and ownership map.
    pub fn planning(&self) -> RwLockReadGuard<'_, Planning> {
        self.planning.read()
    }

    /// Install a worker's freshly fetched manifest, mark it healthy, and
    /// rebuild the planning state. Returns errors for datasets whose
    /// schemas failed to register (the rest still plan).
    pub fn refresh(&self, idx: usize, info: CatalogInfo, ctx: &ExecCtx) -> Vec<String> {
        {
            let worker = &self.workers[idx];
            worker.catalog_epoch.store(info.epoch, Ordering::Relaxed);
            *worker.info.lock() = WorkerInfo {
                shard_id: info.shard_id,
                datasets: info.datasets,
            };
            worker.consecutive_failures.store(0, Ordering::Relaxed);
            worker.healthy.store(true, Ordering::Release);
        }
        self.rebuild(ctx)
    }

    /// Rebuild the planning catalog and owners map from every worker's
    /// last-known manifest (down workers included: their datasets remain
    /// plannable, and liveness is checked at routing time).
    pub fn rebuild(&self, ctx: &ExecCtx) -> Vec<String> {
        let mut errors = Vec::new();
        let mut schema_jsons: BTreeMap<String, String> = BTreeMap::new();
        let mut holders: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut manifests: Vec<Vec<String>> = Vec::with_capacity(self.workers.len());
        for (idx, worker) in self.workers.iter().enumerate() {
            let mut names = Vec::new();
            for ds in &worker.info.lock().datasets {
                schema_jsons
                    .entry(ds.name.clone())
                    .or_insert_with(|| ds.schema_json.clone());
                holders.entry(ds.name.clone()).or_default().push(idx);
                names.push(ds.name.clone());
            }
            manifests.push(names);
        }
        let mut schemas: BTreeMap<String, Schema> = BTreeMap::new();
        for (name, schema_json) in &schema_jsons {
            match serde_json::from_str::<Schema>(schema_json) {
                Ok(s) => {
                    schemas.insert(name.clone(), s);
                }
                Err(e) => errors.push(format!("dataset `{name}`: bad schema: {e}")),
            }
        }
        let mut catalog = Catalog::default_hpc();
        for (name, schema) in &schemas {
            let ds = SjDataset::from_rows(ctx, Vec::new(), schema.clone(), name.as_str(), 1);
            if let Err(e) = catalog.register_dataset(name, ds) {
                errors.push(format!("dataset `{name}`: {e}"));
            }
        }
        // Per-worker catalogs: registration errors were already reported
        // on the combined build, so failures here stay silent.
        let per_worker: Vec<Catalog> = manifests
            .iter()
            .map(|names| {
                let mut local = Catalog::default_hpc();
                for name in names {
                    if let Some(schema) = schemas.get(name) {
                        let ds =
                            SjDataset::from_rows(ctx, Vec::new(), schema.clone(), name.as_str(), 1);
                        let _ = local.register_dataset(name, ds);
                    }
                }
                local
            })
            .collect();
        // Order each dataset's holders by ring preference so the primary
        // (the shard the partitioner chose) is tried first and replicas
        // follow in failover order.
        let mut owners = BTreeMap::new();
        for (name, mut workers) in holders {
            let pref = self.ring.preference(&name);
            workers.sort_by_key(|w| pref.iter().position(|p| p == w).unwrap_or(usize::MAX));
            owners.insert(name, workers);
        }
        *self.planning.write() = Planning {
            catalog,
            owners,
            per_worker,
        };
        errors
    }

    /// Workers holding **every** dataset in `cover`, ordered by ring
    /// preference on the joined cover (deterministic spread across
    /// equally capable holders). `live_only` filters to healthy workers.
    pub fn holders(&self, cover: &[&str], live_only: bool) -> Vec<usize> {
        let planning = self.planning.read();
        let mut candidates: Option<Vec<usize>> = None;
        for name in cover {
            let holder_set = planning.owners.get(*name).cloned().unwrap_or_default();
            candidates = Some(match candidates {
                None => holder_set,
                Some(prev) => prev
                    .into_iter()
                    .filter(|w| holder_set.contains(w))
                    .collect(),
            });
        }
        drop(planning);
        let mut result: Vec<usize> = candidates
            .unwrap_or_default()
            .into_iter()
            .filter(|&w| !live_only || self.workers[w].healthy())
            .collect();
        let mut key = cover.to_vec();
        key.sort_unstable();
        let pref = self.ring.preference(&key.join(","));
        result.sort_by_key(|w| pref.iter().position(|p| p == w).unwrap_or(usize::MAX));
        result
    }

    /// Workers whose **own** catalogs derive `query` with the reference
    /// plan — schema-level derivation search on each per-worker planning
    /// catalog, accepted only when the local plan's fingerprint equals
    /// `reference` (the combined-catalog plan's). Local solvability
    /// alone is not enough: a worker missing a linking dataset can
    /// still "solve" the query with a *different* derivation (e.g. a
    /// looser join) whose result disagrees with single-process
    /// execution, and the router promises byte-identical answers.
    /// Returns `(live, all)`: healthy matches and every match
    /// regardless of health, both ordered by ring preference on `key`
    /// (a deterministic spread across equally capable workers).
    pub fn local_solvers(
        &self,
        query: &Query,
        config: &EngineConfig,
        reference: u64,
        key: &str,
    ) -> (Vec<usize>, Vec<usize>) {
        let planning = self.planning.read();
        let mut all: Vec<usize> = (0..self.workers.len())
            .filter(|&idx| {
                planning.per_worker.get(idx).is_some_and(|catalog| {
                    QueryEngine::with_config(catalog, config.clone())
                        .solve(query)
                        .is_ok_and(|plan| plan.fingerprint() == reference)
                })
            })
            .collect();
        drop(planning);
        let pref = self.ring.preference(key);
        all.sort_by_key(|w| pref.iter().position(|p| p == w).unwrap_or(usize::MAX));
        let live = all
            .iter()
            .copied()
            .filter(|&w| self.workers[w].healthy())
            .collect();
        (live, all)
    }

    /// Union of every worker's dataset names, sorted.
    pub fn all_datasets(&self) -> Vec<String> {
        self.planning.read().owners.keys().cloned().collect()
    }

    /// Union of every worker's dataset descriptions (first reporter's
    /// schema wins), sorted by name — the router's combined `catalog`
    /// payload.
    pub fn combined_datasets(&self) -> Vec<DatasetDesc> {
        let mut seen: BTreeMap<String, DatasetDesc> = BTreeMap::new();
        for worker in &self.workers {
            for ds in &worker.info.lock().datasets {
                seen.entry(ds.name.clone()).or_insert_with(|| ds.clone());
            }
        }
        seen.into_values().collect()
    }

    /// Count one failed probe or call against a worker; marks it down
    /// once `markdown_after` consecutive failures accumulate. Returns
    /// `true` exactly when this failure transitioned the worker to down.
    pub fn record_failure(&self, idx: usize, markdown_after: u64) -> bool {
        let worker = &self.workers[idx];
        let failures = worker.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if failures >= markdown_after && worker.healthy.swap(false, Ordering::AcqRel) {
            return true;
        }
        false
    }

    /// Reset a worker's failure streak after a successful call. Does not
    /// mark a down worker back up — that requires a fresh manifest (see
    /// [`Topology::refresh`]), because its catalog may have changed while
    /// it was away.
    pub fn record_success(&self, idx: usize) {
        self.workers[idx]
            .consecutive_failures
            .store(0, Ordering::Relaxed);
    }

    /// Fleet-wide epoch: a fingerprint over every worker's `(addr,
    /// epoch)`, so any shard reload changes the combined value.
    pub fn combined_epoch(&self) -> u64 {
        let mut h = crate::ring::fnv1a(b"fleet");
        for worker in &self.workers {
            h ^= crate::ring::fnv1a(worker.addr.as_bytes()) ^ worker.epoch().rotate_left(17);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn summaries(&self) -> Vec<WorkerSummary> {
        self.workers.iter().map(|w| w.summary()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjcore::{FieldDef, FieldSemantics};

    fn ctx() -> ExecCtx {
        ExecCtx::local()
    }

    fn desc(name: &str, dims: &[(&str, &str, &str)]) -> DatasetDesc {
        let schema = Schema::new(
            dims.iter()
                .map(|(field, dim, units)| FieldDef::new(field, FieldSemantics::domain(dim, units)))
                .collect(),
        )
        .unwrap();
        DatasetDesc {
            name: name.into(),
            schema_json: serde_json::to_string(&schema).unwrap(),
        }
    }

    fn info(shard: &str, epoch: u64, datasets: Vec<DatasetDesc>) -> CatalogInfo {
        CatalogInfo {
            shard_id: Some(shard.into()),
            epoch,
            datasets,
        }
    }

    #[test]
    fn refresh_builds_planning_catalog_and_owners() {
        let ctx = ctx();
        let topo = Topology::new(vec!["a:1".into(), "b:2".into()]);
        let errs = topo.refresh(
            0,
            info("w0", 7, vec![desc("left", &[("job", "job", "job-id")])]),
            &ctx,
        );
        assert!(errs.is_empty(), "{errs:?}");
        topo.refresh(
            1,
            info("w1", 9, vec![desc("right", &[("rack", "rack", "rack-id")])]),
            &ctx,
        );
        let planning = topo.planning();
        assert_eq!(
            planning.catalog.dataset_names().len(),
            2,
            "{:?}",
            planning.catalog.dataset_names()
        );
        assert_eq!(planning.owners.get("left"), Some(&vec![0]));
        assert_eq!(planning.owners.get("right"), Some(&vec![1]));
        drop(planning);
        assert!(topo.workers[0].healthy());
        assert_eq!(topo.workers[0].epoch(), 7);
        assert_eq!(topo.all_datasets(), vec!["left", "right"]);
    }

    #[test]
    fn holders_require_full_cover_and_liveness() {
        let ctx = ctx();
        let topo = Topology::new(vec!["a:1".into(), "b:2".into()]);
        topo.refresh(
            0,
            info(
                "w0",
                1,
                vec![
                    desc("x", &[("j", "job", "job-id")]),
                    desc("y", &[("r", "rack", "rack-id")]),
                ],
            ),
            &ctx,
        );
        topo.refresh(
            1,
            info("w1", 1, vec![desc("x", &[("j", "job", "job-id")])]),
            &ctx,
        );
        assert_eq!(topo.holders(&["x", "y"], true), vec![0]);
        let both = topo.holders(&["x"], true);
        assert_eq!(both.len(), 2);
        // Mark worker 0 down: it leaves live holder sets.
        assert!(!topo.record_failure(0, 2));
        assert!(
            topo.record_failure(0, 2),
            "second failure crosses threshold"
        );
        assert!(
            !topo.record_failure(0, 2),
            "already down: no new transition"
        );
        assert!(topo.holders(&["x", "y"], true).is_empty());
        assert_eq!(topo.holders(&["x", "y"], false), vec![0]);
        assert_eq!(topo.holders(&["x"], true), vec![1]);
        // Nonexistent dataset: nobody holds it.
        assert!(topo.holders(&["zz"], false).is_empty());
    }

    #[test]
    fn local_solvers_consult_each_workers_own_catalog() {
        let ctx = ctx();
        let measurement = |name: &str, value_dim: &str, units: &str| DatasetDesc {
            name: name.into(),
            schema_json: serde_json::to_string(
                &Schema::new(vec![
                    FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                    FieldDef::new("v", FieldSemantics::value(value_dim, units)),
                ])
                .unwrap(),
            )
            .unwrap(),
        };
        let topo = Topology::new(vec!["a:1".into(), "b:2".into()]);
        topo.refresh(
            0,
            info("w0", 1, vec![measurement("node_power", "power", "watts")]),
            &ctx,
        );
        topo.refresh(
            1,
            info(
                "w1",
                1,
                vec![measurement("node_temp", "temperature", "celsius")],
            ),
            &ctx,
        );
        let q = |values: &[&str]| Query {
            domains: vec!["compute-node".into()],
            values: values
                .iter()
                .map(|v| sjcore::engine::QueryValue {
                    dimension: (*v).into(),
                    units: None,
                })
                .collect(),
        };
        let cfg = EngineConfig::default();
        // Reference plans come from the combined catalog, the way the
        // router computes them.
        let reference = |query: &Query| {
            let planning = topo.planning();
            QueryEngine::with_config(&planning.catalog, cfg.clone())
                .solve(query)
                .unwrap()
                .fingerprint()
        };
        // Power is derivable only on worker 0, temperature only on 1.
        let power = q(&["power"]);
        let temp = q(&["temperature"]);
        assert_eq!(
            topo.local_solvers(&power, &cfg, reference(&power), "k").1,
            vec![0]
        );
        assert_eq!(
            topo.local_solvers(&temp, &cfg, reference(&temp), "k").1,
            vec![1]
        );
        // No single worker derives both, even though the fleet can.
        let both = q(&["power", "temperature"]);
        assert!(topo
            .local_solvers(&both, &cfg, reference(&both), "k")
            .1
            .is_empty());
        // A fingerprint nobody's local plan matches yields no solvers,
        // even where plain solvability would say yes.
        assert!(topo
            .local_solvers(&power, &cfg, 0xDEAD_BEEF, "k")
            .1
            .is_empty());
        // Liveness splits live from all.
        topo.record_failure(0, 1);
        let (live, all) = topo.local_solvers(&power, &cfg, reference(&power), "k");
        assert!(live.is_empty());
        assert_eq!(all, vec![0]);
    }

    /// Both planner kinds must compute the same reference fingerprint
    /// from the combined catalog and admit the same local solvers — a
    /// mixed fleet (router on one planner, workers on the other) would
    /// otherwise split plan caches and misroute scatter-gather covers.
    #[test]
    fn planner_kinds_route_identically() {
        use sjcore::engine::PlannerKind;
        let ctx = ctx();
        let dataset = |name: &str, fields: Vec<FieldDef>| DatasetDesc {
            name: name.into(),
            schema_json: serde_json::to_string(&Schema::new(fields).unwrap()).unwrap(),
        };
        let layout = || {
            dataset(
                "node_layout",
                vec![
                    FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
                    FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
                ],
            )
        };
        let temps = dataset(
            "rack_temps",
            vec![
                FieldDef::new("rack", FieldSemantics::domain("rack", "rack-id")),
                FieldDef::new("time", FieldSemantics::domain("time", "datetime")),
                FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
            ],
        );
        let topo = Topology::new(vec!["a:1".into(), "b:2".into()]);
        // Worker 0 holds the full cover; worker 1 only the layout.
        topo.refresh(0, info("w0", 1, vec![layout(), temps]), &ctx);
        topo.refresh(1, info("w1", 1, vec![layout()]), &ctx);
        let query = Query {
            domains: vec!["compute-node".into()],
            values: vec![sjcore::engine::QueryValue {
                dimension: "temperature".into(),
                units: None,
            }],
        };
        let run = |planner: PlannerKind| {
            let cfg = EngineConfig {
                planner,
                ..EngineConfig::default()
            };
            let planning = topo.planning();
            let reference = QueryEngine::with_config(&planning.catalog, cfg.clone())
                .solve(&query)
                .unwrap()
                .fingerprint();
            drop(planning);
            let (live, all) = topo.local_solvers(&query, &cfg, reference, "k");
            (reference, live, all)
        };
        let legacy = run(PlannerKind::Legacy);
        let constraint = run(PlannerKind::Constraint);
        assert_eq!(legacy, constraint, "planners routed differently");
        // And the routing decision itself is the expected one: only the
        // worker holding the whole cover plan-matches.
        assert_eq!(legacy.2, vec![0]);
    }

    #[test]
    fn success_resets_failures_but_not_health() {
        let ctx = ctx();
        let topo = Topology::new(vec!["a:1".into()]);
        topo.refresh(0, info("w0", 1, vec![]), &ctx);
        topo.record_failure(0, 3);
        assert_eq!(topo.workers[0].failures(), 1);
        topo.record_success(0);
        assert_eq!(topo.workers[0].failures(), 0);
        assert!(topo.workers[0].healthy());
        // Once down, success alone does not resurrect.
        topo.record_failure(0, 1);
        assert!(!topo.workers[0].healthy());
        topo.record_success(0);
        assert!(!topo.workers[0].healthy());
    }

    #[test]
    fn combined_epoch_tracks_any_worker_change() {
        let ctx = ctx();
        let topo = Topology::new(vec!["a:1".into(), "b:2".into()]);
        topo.refresh(0, info("w0", 1, vec![]), &ctx);
        topo.refresh(1, info("w1", 2, vec![]), &ctx);
        let before = topo.combined_epoch();
        topo.refresh(1, info("w1", 3, vec![]), &ctx);
        assert_ne!(before, topo.combined_epoch());
    }
}
