//! Deterministic whole-worker kill scheduling for chaos tests.
//!
//! The task-level chaos harness ([`sjdf::faults`]) injects failures
//! *inside* one process; a sharded deployment also has to survive losing
//! an entire worker. [`KillSchedule`] is the seeded coin the router
//! chaos tests flip each round: which worker dies, and whether this
//! round kills at all. Same seed → same kill sequence, so a failing
//! sweep replays exactly.

/// SplitMix64: tiny, well-distributed, and good enough for choosing
/// victims (same generator family as [`sjdf::faults::FaultPlan`]).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic schedule of worker kills.
#[derive(Debug, Clone, Copy)]
pub struct KillSchedule {
    seed: u64,
}

impl KillSchedule {
    pub fn seeded(seed: u64) -> Self {
        KillSchedule { seed }
    }

    /// The worker index (out of `n`) this round's kill targets.
    pub fn victim(&self, round: u64, n: usize) -> usize {
        assert!(n > 0, "victim() needs at least one worker");
        let mut state = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round);
        (splitmix64(&mut state) % n as u64) as usize
    }

    /// Whether this round kills at all, at probability `rate` in 0..=1.
    pub fn coin(&self, round: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut state = self
            .seed
            .wrapping_add(0x5851_f42d_4c95_7f2d)
            .wrapping_mul(round.wrapping_add(1));
        let draw = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        draw < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = KillSchedule::seeded(7);
        let b = KillSchedule::seeded(7);
        for round in 0..32 {
            assert_eq!(a.victim(round, 3), b.victim(round, 3));
            assert_eq!(a.coin(round, 0.5), b.coin(round, 0.5));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = KillSchedule::seeded(1);
        let b = KillSchedule::seeded(2);
        let differs = (0..64).any(|r| a.victim(r, 4) != b.victim(r, 4));
        assert!(differs, "seeds 1 and 2 produced identical kill sequences");
    }

    #[test]
    fn victims_cover_all_workers() {
        let s = KillSchedule::seeded(42);
        let mut seen = [false; 4];
        for round in 0..256 {
            seen[s.victim(round, 4)] = true;
        }
        assert!(seen.iter().all(|&v| v), "{seen:?}");
    }

    #[test]
    fn coin_respects_extremes_and_rough_rate() {
        let s = KillSchedule::seeded(9);
        assert!((0..50).all(|r| !s.coin(r, 0.0)));
        assert!((0..50).all(|r| s.coin(r, 1.0)));
        let hits = (0..1000).filter(|&r| s.coin(r, 0.3)).count();
        assert!((150..450).contains(&hits), "rate 0.3 produced {hits}/1000");
    }
}
