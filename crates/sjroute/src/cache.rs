//! The router's merged-result cache.
//!
//! Keyed by the solved plan's fingerprint plus the effective row limit —
//! everything that determines the merged bytes — and cleared wholesale
//! whenever any worker's catalog epoch changes (the router cannot know
//! which cached results the changed shard contributed to, and epochs
//! change rarely, so a full invalidation is both correct and cheap).
//! Bounded FIFO: the router's value is routing, not caching; workers
//! already keep the expensive levels (plans and materialized rows) warm.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use sjserve::protocol::Response;

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Response>,
    order: VecDeque<String>,
}

/// Bounded map of route-key → ready-to-send response.
#[derive(Debug)]
pub struct RouteCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
}

impl RouteCache {
    pub fn new(capacity: usize) -> Self {
        RouteCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
        }
    }

    /// Cache key for a routed query: the plan fingerprint identifies the
    /// derivation (canonical query + engine knobs), the limit the
    /// rendered row budget.
    pub fn key(plan_fingerprint: u64, limit: usize) -> String {
        format!("{plan_fingerprint:016x}:{limit}")
    }

    pub fn get(&self, key: &str) -> Option<Response> {
        let found = self.inner.lock().map.get(key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    pub fn put(&self, key: String, response: Response) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), response).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Epoch invalidation: drop everything.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: &str) -> Response {
        Response::ok(id)
    }

    #[test]
    fn caches_and_counts_hits() {
        let cache = RouteCache::new(4);
        let key = RouteCache::key(0xabc, 100);
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.hits(), 0);
        cache.put(key.clone(), resp("a"));
        assert_eq!(cache.get(&key).unwrap().id, "a");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let cache = RouteCache::new(2);
        cache.put("k1".into(), resp("1"));
        cache.put("k2".into(), resp("2"));
        cache.put("k3".into(), resp("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("k1").is_none(), "oldest entry evicted");
        assert!(cache.get("k3").is_some());
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let cache = RouteCache::new(8);
        cache.put("k1".into(), resp("1"));
        cache.put("k2".into(), resp("2"));
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert!(cache.get("k1").is_none());
    }

    #[test]
    fn keys_separate_fingerprint_and_limit() {
        assert_ne!(RouteCache::key(1, 10), RouteCache::key(1, 20));
        assert_ne!(RouteCache::key(1, 10), RouteCache::key(2, 10));
    }
}
