//! Sharded ScrubJay: a consistent-hash router over a fleet of workers.
//!
//! One `sjserved` process holds one catalog in memory; a deployment
//! whose data outgrows a single process splits the catalog into shards —
//! each worker loads a subset of the datasets — and puts a router
//! (`sjrouted`) in front. This crate is that router:
//!
//! - [`ring`] — the consistent-hash ring. Placement is a pure function
//!   of `(dataset name, shard count)`, so the offline partitioner and
//!   the online router agree without any coordination protocol.
//! - [`placement`] — offline partitioning: split a catalog directory
//!   into per-shard directories (plus replicas) that `sjserved --data`
//!   loads unchanged.
//! - [`topology`] — the router's fleet view: per-worker health, failure
//!   streaks, catalog epochs, and a zero-row **planning catalog** built
//!   from every worker's schemas, against which the router runs the
//!   same derivation search a worker would.
//! - [`router`] — the daemon core: admission via the sjserve scheduler,
//!   single-shard routing with single-retry failover, scatter-gather
//!   fan-out for queries whose dataset cover spans shards (merged by
//!   [`merge`]), heartbeat mark-down/mark-up, and epoch-driven cache
//!   invalidation ([`cache`]). Implements
//!   [`sjserve::server::RequestHandler`], so the stock JSON-lines TCP
//!   front end serves it unmodified.
//! - [`stream`] — streamed fan-out: `subscribe: true` through the
//!   router opens one upstream subscription per worker reproducing the
//!   reference plan and merges their (byte-identical) frame streams in
//!   lockstep; forwarded appends reach every live owner so the fleet's
//!   accepted prefix matches a single node's.
//! - [`chaos`] — seeded whole-worker kill schedules for the chaos
//!   tests.
//!
//! The wire protocol is unchanged: a client cannot tell a router from a
//! worker except by asking for `stats` (routers answer `router_stats`).
//! Traced queries yield one span tree across the hop: workers ship
//! their raw spans on the response and the router grafts them under its
//! own `worker_call` spans via [`sjtrace::graft`].

pub mod cache;
pub mod chaos;
pub mod merge;
pub mod metrics;
pub mod placement;
pub mod ring;
pub mod router;
pub(crate) mod stream;
pub mod topology;

pub use cache::RouteCache;
pub use chaos::KillSchedule;
pub use metrics::RouterMetrics;
pub use placement::{assign, partition_dir, ShardDir};
pub use ring::Ring;
pub use router::{Router, RouterConfig};
pub use topology::{Topology, WorkerState};
