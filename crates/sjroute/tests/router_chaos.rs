//! Whole-worker chaos: a seeded `KillSchedule` stops real worker
//! processes' TCP servers out from under the router mid-sweep. Whatever
//! the schedule does, every query must come back within its deadline as
//! `ok`, `degraded`, or a structured error — never a hang, never a
//! protocol break — and a revived worker must be marked up again and
//! serve.

mod common;

use std::time::{Duration, Instant};

use common::*;
use sjroute::KillSchedule;
use sjserve::protocol::{Request, Verb};
use sjserve::server::{serve, wait_ready, ServerHandle};

const ROUNDS: u64 = 8;
const TIMEOUT: Duration = Duration::from_secs(5);

/// Issue one query and assert the chaos contract: bounded latency and a
/// classifiable outcome. Returns whether it succeeded outright.
fn contract_query(router: &sjroute::Router, req: Request) -> bool {
    let id = req.id.clone();
    let started = Instant::now();
    let resp = router.handle(req);
    let elapsed = started.elapsed();
    assert!(
        elapsed < TIMEOUT + Duration::from_secs(2),
        "query {id} outlived its deadline ({elapsed:?})"
    );
    assert_eq!(resp.id, id);
    if resp.is_ok() {
        assert!(resp.result.is_some() || resp.health.is_some());
        return true;
    }
    if resp.is_degraded() {
        assert!(
            resp.error.is_some(),
            "degraded without error body: {resp:?}"
        );
        return false;
    }
    assert!(
        resp.code().is_some(),
        "error response without structured code: {resp:?}"
    );
    false
}

#[test]
fn worker_kill_sweep_never_hangs_and_recovers_on_revival() {
    let ctx = ctx();
    // Each dataset lives on two of three workers, so a single kill is
    // always survivable and a double kill can orphan a shard.
    let layouts: [&[&str]; 3] = [
        &["node_power"],
        &["node_power", "node_temp"],
        &["node_temp"],
    ];
    let mut handles: Vec<Option<ServerHandle>> = layouts
        .iter()
        .enumerate()
        .map(|(i, datasets)| Some(spawn(worker(&ctx, datasets, &format!("shard-{i}")))))
        .collect();
    let addrs: Vec<String> = handles
        .iter()
        .map(|h| h.as_ref().unwrap().addr.to_string())
        .collect();
    let router = sjroute::Router::new(addrs.clone(), router_config()).expect("router boots");

    let schedule = KillSchedule::seeded(0xC0FFEE);
    let mut ok_rounds = 0;
    for round in 0..ROUNDS {
        if schedule.coin(round, 0.6) {
            let victim = schedule.victim(round, layouts.len());
            let live = handles.iter().filter(|h| h.is_some()).count();
            if live > 1 {
                if let Some(handle) = handles[victim].take() {
                    handle.stop();
                    // Let the probe loop observe the death (two rounds
                    // crosses markdown_after).
                    router.probe_now();
                    router.probe_now();
                }
            }
        }

        let mut req = Request::query(&format!("k{round}-power"), "chaos", power_spec());
        req.timeout_ms = Some(TIMEOUT.as_millis() as u64);
        let power_ok = contract_query(&router, req);

        let mut req = Request::query(&format!("k{round}-cross"), "chaos", cross_shard_spec());
        req.timeout_ms = Some(TIMEOUT.as_millis() as u64);
        req.trace = Some(true);
        let started = Instant::now();
        let resp = router.handle(req);
        assert!(
            started.elapsed() < TIMEOUT + Duration::from_secs(2),
            "traced cross-shard query hung in round {round}"
        );
        let cross_ok = resp.is_ok();
        assert!(
            resp.is_ok() || resp.is_degraded() || resp.code().is_some(),
            "round {round}: unclassifiable outcome {resp:?}"
        );
        // Whenever tracing survives, the merged tree must be valid.
        if let Some(trace) = resp.trace {
            let events = trace.spans.expect("router trace ships spans");
            sjtrace::validate(&events)
                .unwrap_or_else(|e| panic!("round {round}: invalid span tree: {e}"));
        }

        // Health answers no matter what.
        assert!(contract_query(
            &router,
            Request::bare(&format!("k{round}-h"), Verb::Health)
        ));
        if power_ok && cross_ok {
            ok_rounds += 1;
        }
    }
    assert!(
        ok_rounds >= 1,
        "the replicated fleet never served a fully-ok round"
    );

    // Revive every dead worker on its original address; the next probes
    // must mark them up and full service must resume.
    for (i, slot) in handles.iter_mut().enumerate() {
        if slot.is_none() {
            let service = worker(&ctx, layouts[i], &format!("shard-{i}"));
            let deadline = Instant::now() + Duration::from_secs(5);
            let handle = loop {
                match serve(service.clone(), &addrs[i]) {
                    Ok(h) => break h,
                    Err(e) => {
                        assert!(
                            Instant::now() < deadline,
                            "could not rebind worker {i} on {}: {e}",
                            addrs[i]
                        );
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            };
            assert!(wait_ready(handle.addr, Duration::from_secs(5)));
            *slot = Some(handle);
        }
    }
    router.probe_now();

    let mut req = Request::query("revived", "chaos", cross_shard_spec());
    req.timeout_ms = Some(TIMEOUT.as_millis() as u64);
    let resp = router.handle(req);
    assert!(
        resp.is_ok(),
        "post-revival cross-shard query failed: {:?}",
        resp.error
    );
    assert_eq!(resp.result.unwrap().row_count, NODES.len());

    let health = router.handle(Request::bare("h-final", Verb::Health));
    assert_eq!(health.health.unwrap().status, "ok");

    let stats = router.shutdown();
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    assert!(
        stats.worker_markdowns >= 1,
        "the sweep never marked a worker down: {stats:?}"
    );
    for handle in handles.into_iter().flatten() {
        handle.stop();
    }
}
