//! Shared fixtures for the sjroute integration tests: a clean-split
//! two-shard catalog (power readings on one shard, temperatures on the
//! other, joined on `compute-node`) plus helpers to boot real TCP
//! workers and a router in front of them.
//!
//! The split is chosen so the engine combines the two datasets with a
//! `NaturalJoin` (their only shared domain, `compute-node`, is an
//! identifier): the router's scatter-gather merge is the same join, so
//! single-process and sharded execution must agree byte for byte.
#![allow(dead_code)]

use std::time::Duration;

use sjcore::catalog::Catalog;
use sjcore::row::Row;
use sjcore::schema::{FieldDef, Schema};
use sjcore::semantics::FieldSemantics;
use sjcore::value::Value;
use sjcore::SjDataset;
use sjdf::{ClusterSpec, ExecCtx};
use sjroute::{Router, RouterConfig};
use sjserve::protocol::{QuerySpec, Response};
use sjserve::scheduler::SchedulerConfig;
use sjserve::server::{serve, wait_ready, ServerHandle};
use sjserve::service::{QueryService, ServiceConfig};

pub const NODES: [&str; 6] = ["cab1", "cab2", "cab3", "cab4", "cab5", "cab6"];

pub fn ctx() -> ExecCtx {
    ExecCtx::new(ClusterSpec::new(1, 2).unwrap())
}

pub fn power_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("power", FieldSemantics::value("power", "watts")),
    ])
    .unwrap()
}

pub fn temp_schema() -> Schema {
    Schema::new(vec![
        FieldDef::new("node", FieldSemantics::domain("compute-node", "node-id")),
        FieldDef::new("temp", FieldSemantics::value("temperature", "celsius")),
    ])
    .unwrap()
}

pub fn power_dataset(ctx: &ExecCtx) -> SjDataset {
    let rows = NODES
        .iter()
        .enumerate()
        .map(|(i, node)| {
            Row::new(vec![
                Value::str(node),
                Value::Float(100.0 + 25.0 * i as f64),
            ])
        })
        .collect();
    SjDataset::from_rows(ctx, rows, power_schema(), "node_power", 2)
}

pub fn temp_dataset(ctx: &ExecCtx) -> SjDataset {
    let rows = NODES
        .iter()
        .enumerate()
        .map(|(i, node)| Row::new(vec![Value::str(node), Value::Float(20.0 + 1.5 * i as f64)]))
        .collect();
    SjDataset::from_rows(ctx, rows, temp_schema(), "node_temp", 2)
}

/// A catalog holding the named subset of the clean-split fixture.
pub fn catalog_with(ctx: &ExecCtx, datasets: &[&str]) -> Catalog {
    let mut c = Catalog::default_hpc();
    for &name in datasets {
        let ds = match name {
            "node_power" => power_dataset(ctx),
            "node_temp" => temp_dataset(ctx),
            other => panic!("unknown fixture dataset `{other}`"),
        };
        c.register_dataset(name, ds).unwrap();
    }
    c
}

/// A worker service over the given datasets. The result cache is off so
/// router-cache assertions are not confused by worker-side hits.
pub fn worker(ctx: &ExecCtx, datasets: &[&str], shard_id: &str) -> QueryService {
    QueryService::new(
        ctx.clone(),
        catalog_with(ctx, datasets),
        ServiceConfig {
            scheduler: SchedulerConfig {
                workers: 2,
                max_queue: 64,
                default_timeout: Duration::from_secs(10),
            },
            result_cache_bytes: 0,
            shard_id: Some(shard_id.to_string()),
            ..ServiceConfig::default()
        },
    )
}

/// Serve a worker on an ephemeral port and wait until it accepts.
pub fn spawn(service: QueryService) -> ServerHandle {
    let handle = serve(service, "127.0.0.1:0").expect("bind worker");
    assert!(
        wait_ready(handle.addr, Duration::from_secs(5)),
        "worker never came up on {}",
        handle.addr
    );
    handle
}

/// A router config tuned for tests: no background heartbeat surprises
/// (long period; tests drive probes with `probe_now`), fast probe
/// timeouts, mark-down after 2 consecutive failures.
pub fn router_config() -> RouterConfig {
    RouterConfig {
        scheduler: SchedulerConfig {
            workers: 2,
            max_queue: 64,
            default_timeout: Duration::from_secs(10),
        },
        heartbeat: Duration::from_secs(600),
        probe_timeout: Duration::from_millis(300),
        markdown_after: 2,
        ..RouterConfig::default()
    }
}

pub fn router_over(handles: &[&ServerHandle]) -> Router {
    let addrs = handles.iter().map(|h| h.addr.to_string()).collect();
    Router::new(addrs, router_config()).expect("router boots")
}

/// Power only: its cover is a single dataset, so the router takes the
/// single-shard path.
pub fn power_spec() -> QuerySpec {
    QuerySpec::new(["compute-node"], ["power"])
}

/// Power and temperature: on a clean split the cover spans both shards,
/// forcing scatter-gather.
pub fn cross_shard_spec() -> QuerySpec {
    QuerySpec::new(["compute-node"], ["power", "temperature"])
}

/// Canonical bytes of a result: same canonicalization the router applies
/// to merged results, so both sides of a comparison get identical
/// row/column ordering.
pub fn canonical_bytes(response: &Response) -> String {
    let mut result = response.result.clone().unwrap_or_else(|| {
        panic!(
            "response {} carries no result: {:?}",
            response.id, response.error
        )
    });
    sjroute::merge::canonicalize(&mut result, &[]);
    sjroute::merge::canonical_csv(&result)
}
