//! End-to-end router behavior over real TCP workers: single-shard
//! routing, cross-shard scatter-gather (byte-identical to single-process
//! execution), failover to a replica, mark-down health, and
//! epoch-driven cache invalidation.

mod common;

use common::*;
use sjserve::protocol::{codes, Request, Verb, PROTO_VERSION};

/// A power-only query's cover lives on one shard: the router proxies it
/// to the holder, the answer matches direct execution, and a repeat
/// rides the router's result cache.
#[test]
fn single_shard_query_routes_to_the_holder_and_caches() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let b = spawn(worker(&ctx, &["node_temp"], "shard-1"));
    let router = router_over(&[&a, &b]);

    let direct =
        worker(&ctx, &["node_power"], "direct").handle(Request::query("d1", "t", power_spec()));
    assert!(direct.is_ok(), "{:?}", direct.error);

    let first = router.handle(Request::query("q1", "t", power_spec()));
    assert!(first.is_ok(), "{:?}", first.error);
    assert_eq!(first.proto_version, Some(PROTO_VERSION));
    assert_eq!(canonical_bytes(&first), canonical_bytes(&direct));
    assert_eq!(first.result.as_ref().unwrap().row_count, NODES.len());

    let second = router.handle(Request::query("q2", "t", power_spec()));
    assert!(second.is_ok(), "{:?}", second.error);
    assert!(
        second.result.as_ref().unwrap().result_cache_hit,
        "second identical query should hit the route cache"
    );
    assert_eq!(canonical_bytes(&second), canonical_bytes(&first));

    let stats = router.shutdown();
    // The repeat is a cache hit, not a dispatch, so only one routed query.
    assert_eq!(stats.routed_queries, 1, "{stats:?}");
    assert_eq!(stats.scatter_gather_queries, 0, "{stats:?}");
    assert!(stats.route_cache_hits >= 1, "{stats:?}");
    a.stop();
    b.stop();
}

/// The acceptance check: a query whose cover spans both shards is
/// scatter-gathered and merged into exactly the bytes a single process
/// holding both datasets would produce.
#[test]
fn cross_shard_scatter_gather_matches_single_process() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let b = spawn(worker(&ctx, &["node_temp"], "shard-1"));
    let router = router_over(&[&a, &b]);

    let single = worker(&ctx, &["node_power", "node_temp"], "mono").handle(Request::query(
        "mono",
        "t",
        cross_shard_spec(),
    ));
    assert!(
        single.is_ok(),
        "single-process reference failed: {:?}",
        single.error
    );

    let routed = router.handle(Request::query("x1", "t", cross_shard_spec()));
    assert!(routed.is_ok(), "{:?}", routed.error);
    let result = routed.result.as_ref().unwrap();
    assert_eq!(result.row_count, NODES.len(), "{result:?}");
    assert_eq!(
        canonical_bytes(&routed),
        canonical_bytes(&single),
        "scatter-gather merge diverged from single-process execution"
    );

    let stats = router.shutdown();
    assert!(stats.scatter_gather_queries >= 1, "{stats:?}");
    a.stop();
    b.stop();
}

/// With every dataset replicated on both workers, killing the primary
/// holder mid-flight makes the router fail over to the replica; after
/// enough failed probes the dead worker is marked down and health turns
/// degraded.
#[test]
fn failover_to_replica_then_markdown() {
    let ctx = ctx();
    let full = ["node_power", "node_temp"];
    let a = spawn(worker(&ctx, &full, "shard-0"));
    let b = spawn(worker(&ctx, &full, "shard-1"));
    let router = router_over(&[&a, &b]);

    let primary = router.topology().holders(&["node_power"], true)[0];
    let (dead, live) = if primary == 0 { (a, b) } else { (b, a) };
    dead.stop();

    let resp = router.handle(Request::query("f1", "t", power_spec()));
    assert!(resp.is_ok(), "failover query failed: {:?}", resp.error);
    assert_eq!(resp.result.as_ref().unwrap().row_count, NODES.len());

    // Two probe rounds cross markdown_after=2; health then reports the
    // fleet degraded while queries keep succeeding on the replica.
    router.probe_now();
    router.probe_now();
    let health = router.handle(Request::bare("h", Verb::Health));
    assert!(health.is_ok());
    let report = health.health.expect("health payload");
    assert_eq!(report.status, "degraded", "{report:?}");

    let again = router.handle(Request::query("f2", "t", cross_shard_spec()));
    assert!(again.is_ok(), "{:?}", again.error);

    let stats = router.shutdown();
    assert!(stats.failovers >= 1, "{stats:?}");
    assert!(stats.worker_markdowns >= 1, "{stats:?}");
    assert!(
        stats.workers.iter().any(|w| !w.healthy),
        "no worker marked down: {:?}",
        stats.workers
    );
    live.stop();
}

/// A worker catalog-epoch change observed on a heartbeat flushes the
/// router's result cache: the next identical query re-executes.
#[test]
fn epoch_change_invalidates_the_route_cache() {
    let ctx = ctx();
    let service_a = worker(&ctx, &["node_power"], "shard-0");
    let a = spawn(service_a.clone());
    let b = spawn(worker(&ctx, &["node_temp"], "shard-1"));
    let router = router_over(&[&a, &b]);

    let first = router.handle(Request::query("e1", "t", power_spec()));
    assert!(first.is_ok(), "{:?}", first.error);
    let second = router.handle(Request::query("e2", "t", power_spec()));
    assert!(second.result.as_ref().unwrap().result_cache_hit);

    // The shard reloads (same schemas, new epoch); the next probe must
    // notice and drop every cached merged result.
    service_a.bump_catalog_epoch();
    router.probe_now();

    let third = router.handle(Request::query("e3", "t", power_spec()));
    assert!(third.is_ok(), "{:?}", third.error);
    assert!(
        !third.result.as_ref().unwrap().result_cache_hit,
        "epoch change did not invalidate the route cache"
    );
    assert_eq!(canonical_bytes(&third), canonical_bytes(&first));

    let stats = router.shutdown();
    assert!(stats.epoch_invalidations >= 1, "{stats:?}");
    a.stop();
    b.stop();
}

/// Protocol and planning errors come back structured, never as hangs or
/// dropped connections.
#[test]
fn structured_errors_for_bad_proto_and_unroutable_queries() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let router = router_over(&[&a]);

    let mut req = Request::query("p1", "t", power_spec());
    req.proto_version = Some(PROTO_VERSION + 99);
    let resp = router.handle(req);
    assert_eq!(resp.code(), Some(codes::PROTO_MISMATCH), "{resp:?}");

    // `utilization` is a real dimension no fixture dataset provides.
    let resp = router.handle(Request::query(
        "p2",
        "t",
        sjserve::protocol::QuerySpec::new(["compute-node"], ["utilization"]),
    ));
    assert_eq!(resp.code(), Some(codes::NO_SOLUTION), "{resp:?}");

    let resp = router.handle(Request::query(
        "p3",
        "t",
        sjserve::protocol::QuerySpec::new([], []),
    ));
    assert_eq!(resp.code(), Some(codes::BAD_REQUEST), "{resp:?}");

    router.shutdown();
    a.stop();
}

/// The router's catalog verb unions every worker's datasets, so a stock
/// client cannot tell the fleet from one big worker.
#[test]
fn catalog_unions_worker_shards() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let b = spawn(worker(&ctx, &["node_temp"], "shard-1"));
    let router = router_over(&[&a, &b]);

    let resp = router.handle(Request::bare("c", Verb::Catalog));
    assert!(resp.is_ok());
    let info = resp.catalog.expect("catalog payload");
    let names: Vec<&str> = info.datasets.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(names, vec!["node_power", "node_temp"]);

    router.shutdown();
    a.stop();
    b.stop();
}
