//! Per-tenant fairness through the router: one greedy tenant floods the
//! router's admission queue while a polite tenant sends a trickle. The
//! scheduler's round-robin rotation must interleave the polite tenant's
//! jobs ahead of the greedy backlog — the polite tenant finishes while
//! most of the flood is still queued, instead of being starved until the
//! end.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::*;
use sjdf::FaultPlan;
use sjroute::{Router, RouterConfig};
use sjserve::protocol::Request;
use sjserve::scheduler::SchedulerConfig;
use sjserve::service::{QueryService, ServiceConfig};

const GREEDY_CLIENTS: usize = 16;
const GREEDY_QUERIES_EACH: usize = 4;
const POLITE_QUERIES: usize = 10;

/// Distinct limit per request so no query rides the route cache — every
/// single one must be dispatched and pay the worker's injected latency.
fn uncached_query(id: &str, tenant: &str, seq: usize) -> Request {
    let mut spec = power_spec();
    spec.limit = Some(10_000 + seq);
    let mut req = Request::query(id, tenant, spec);
    req.timeout_ms = Some(20_000);
    req
}

#[test]
fn a_greedy_tenant_cannot_starve_a_polite_one() {
    let ctx = ctx();
    // Every task attempt on the worker sleeps ~4ms, so queries cost real
    // wall-clock and the router's queue actually builds up.
    let service = QueryService::new(
        ctx.clone(),
        catalog_with(&ctx, &["node_power", "node_temp"]),
        ServiceConfig {
            scheduler: SchedulerConfig {
                workers: 2,
                max_queue: 64,
                default_timeout: Duration::from_secs(20),
            },
            result_cache_bytes: 0,
            faults: Some(FaultPlan::seeded(3).with_delays(1.0, Duration::from_millis(4))),
            ..ServiceConfig::default()
        },
    );
    let handle = spawn(service);
    // A single route worker serializes dispatch: fairness is then purely
    // the scheduler's tenant rotation, which is what this test pins.
    let router = Router::new(
        vec![handle.addr.to_string()],
        RouterConfig {
            scheduler: SchedulerConfig {
                workers: 1,
                max_queue: 128,
                default_timeout: Duration::from_secs(20),
            },
            heartbeat: Duration::from_secs(600),
            ..RouterConfig::default()
        },
    )
    .expect("router boots");

    let greedy_done = Arc::new(AtomicU64::new(0));
    let greedy: Vec<_> = (0..GREEDY_CLIENTS)
        .map(|client| {
            let router = router.clone();
            let done = Arc::clone(&greedy_done);
            std::thread::spawn(move || {
                for q in 0..GREEDY_QUERIES_EACH {
                    let seq = client * GREEDY_QUERIES_EACH + q;
                    let resp = router.handle(uncached_query(&format!("g{seq}"), "greedy", seq));
                    assert!(
                        resp.is_ok() || resp.code().is_some(),
                        "greedy query got an unstructured outcome: {resp:?}"
                    );
                    done.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Let the flood stack up in the router queue before being polite.
    std::thread::sleep(Duration::from_millis(100));

    let mut latencies = Vec::with_capacity(POLITE_QUERIES);
    for q in 0..POLITE_QUERIES {
        let started = Instant::now();
        let resp = router.handle(uncached_query(&format!("p{q}"), "polite", 100_000 + q));
        assert!(resp.is_ok(), "polite query {q} failed: {:?}", resp.error);
        latencies.push(started.elapsed());
    }
    let greedy_still_pending =
        (GREEDY_CLIENTS * GREEDY_QUERIES_EACH) as u64 - greedy_done.load(Ordering::Relaxed);

    for t in greedy {
        t.join().expect("greedy client panicked");
    }

    // Starvation check: the polite tenant must NOT have waited out the
    // greedy backlog. With FIFO dispatch it would finish after nearly
    // all 64 greedy queries; with tenant rotation it finishes while a
    // healthy chunk of the flood is still queued.
    assert!(
        greedy_still_pending >= 8,
        "polite tenant only finished after the greedy backlog drained \
         ({greedy_still_pending} greedy queries still pending)"
    );

    // Bounded p99 inflation: no polite query may cost anything close to
    // a full drain of the greedy queue (which takes seconds); under
    // rotation each waits roughly one greedy job, not sixty.
    latencies.sort();
    let p99 = latencies[latencies.len() - 1];
    let total_flood: Duration = Duration::from_secs(3);
    assert!(
        p99 < total_flood,
        "polite p99 {p99:?} looks starved (flood drain scale)"
    );

    let stats = router.shutdown();
    let tenants: Vec<&str> = stats.per_tenant.iter().map(|t| t.tenant.as_str()).collect();
    assert!(
        tenants.contains(&"greedy") && tenants.contains(&"polite"),
        "{tenants:?}"
    );
    assert_eq!(stats.timeouts, 0, "{stats:?}");
    handle.stop();
}
