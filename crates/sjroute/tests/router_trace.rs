//! Trace propagation across the router hop: a traced scatter-gather
//! query must come back with ONE span tree — router queue wait and
//! worker calls at the top, each worker's own request/queue/execute
//! spans grafted underneath — that passes the sjtrace invariants.

mod common;

use common::*;
use sjserve::protocol::Request;

#[test]
fn traced_scatter_gather_yields_a_single_valid_span_tree() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let b = spawn(worker(&ctx, &["node_temp"], "shard-1"));
    let router = router_over(&[&a, &b]);

    let mut req = Request::query("tr1", "t", cross_shard_spec());
    req.trace = Some(true);
    let resp = router.handle(req);
    assert!(resp.is_ok(), "{:?}", resp.error);

    let trace = resp.trace.expect("traced response carries a trace");
    assert_eq!(trace.query_id, resp.query_id.clone().unwrap());
    assert!(trace.span_count > 0);
    let events = trace.spans.expect("router traces ship raw spans");

    // The merged event set must satisfy every structural invariant
    // (unique ids, parents present, children inside parents, ...).
    sjtrace::validate(&events).expect("grafted span tree is invariant-clean");

    // Exactly one root, and every span hangs off it: one tree, not a
    // forest of per-process fragments.
    let roots: Vec<_> = events.iter().filter(|e| e.parent == 0).collect();
    assert_eq!(roots.len(), 1, "expected one root: {roots:?}");
    let root_id = roots[0].id;
    assert_eq!(roots[0].name, "route");
    assert!(
        events.iter().all(|e| e.root == root_id),
        "spans escaped the root tree"
    );

    // Router-side structure: queue wait plus one worker_call per shard.
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"queue_wait"), "{names:?}");
    let worker_calls = events.iter().filter(|e| e.name == "worker_call").count();
    assert_eq!(worker_calls, 2, "one worker_call per shard: {names:?}");

    // Worker-side structure survived the graft: each worker ships its
    // own `request` root, re-parented under the router's worker_call.
    let grafted: Vec<_> = events.iter().filter(|e| e.name == "request").collect();
    assert_eq!(grafted.len(), 2, "both workers' spans grafted: {names:?}");
    for g in &grafted {
        let parent = events
            .iter()
            .find(|e| e.id == g.parent)
            .expect("grafted root's parent exists");
        assert_eq!(parent.name, "worker_call");
        assert!(g.detached, "grafted roots are marked detached");
    }

    // And the human renderings work on the merged tree.
    assert!(trace.timeline.contains("route"), "{}", trace.timeline);
    assert!(trace
        .chrome_json
        .expect("chrome export present")
        .contains("worker_call"));

    router.shutdown();
    a.stop();
    b.stop();
}

/// An untraced query stays untraced end to end (no trace payload, no
/// router-side tracer cost) — and tracing one query does not leak spans
/// into the next.
#[test]
fn tracing_is_per_query() {
    let ctx = ctx();
    let a = spawn(worker(&ctx, &["node_power"], "shard-0"));
    let router = router_over(&[&a]);

    let plain = router.handle(Request::query("u1", "t", power_spec()));
    assert!(plain.is_ok());
    assert!(plain.trace.is_none());

    let mut traced = Request::query("u2", "t", power_spec());
    traced.trace = Some(true);
    let resp = router.handle(traced);
    assert!(resp.is_ok(), "{:?}", resp.error);
    let events = resp.trace.expect("trace payload").spans.unwrap();
    sjtrace::validate(&events).unwrap();

    let plain2 = router.handle(Request::query("u3", "t", power_spec()));
    assert!(plain2.is_ok());
    assert!(plain2.trace.is_none());

    router.shutdown();
    a.stop();
}
