/root/repo/target/release/deps/case_study_dat1-889327c1cf784077.d: tests/case_study_dat1.rs

/root/repo/target/release/deps/case_study_dat1-889327c1cf784077: tests/case_study_dat1.rs

tests/case_study_dat1.rs:
