/root/repo/target/release/deps/ablation_memo-03d4fe1e687e19d5.d: crates/bench/benches/ablation_memo.rs Cargo.toml

/root/repo/target/release/deps/libablation_memo-03d4fe1e687e19d5.rmeta: crates/bench/benches/ablation_memo.rs Cargo.toml

crates/bench/benches/ablation_memo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
