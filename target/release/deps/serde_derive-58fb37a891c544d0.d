/root/repo/target/release/deps/serde_derive-58fb37a891c544d0.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-58fb37a891c544d0.rmeta: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
