/root/repo/target/release/deps/scrubjay-cf69d9bdca38ed3e.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/libscrubjay-cf69d9bdca38ed3e.rlib: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/libscrubjay-cf69d9bdca38ed3e.rmeta: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
