/root/repo/target/release/deps/rand_chacha-c5d3545e15eb4a4c.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-c5d3545e15eb4a4c: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
