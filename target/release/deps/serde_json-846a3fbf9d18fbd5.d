/root/repo/target/release/deps/serde_json-846a3fbf9d18fbd5.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/serde_json-846a3fbf9d18fbd5: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
