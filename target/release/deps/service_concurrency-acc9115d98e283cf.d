/root/repo/target/release/deps/service_concurrency-acc9115d98e283cf.d: tests/service_concurrency.rs

/root/repo/target/release/deps/service_concurrency-acc9115d98e283cf: tests/service_concurrency.rs

tests/service_concurrency.rs:
