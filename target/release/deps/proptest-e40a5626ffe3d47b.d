/root/repo/target/release/deps/proptest-e40a5626ffe3d47b.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-e40a5626ffe3d47b.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
