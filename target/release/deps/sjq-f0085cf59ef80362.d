/root/repo/target/release/deps/sjq-f0085cf59ef80362.d: src/bin/sjq.rs Cargo.toml

/root/repo/target/release/deps/libsjq-f0085cf59ef80362.rmeta: src/bin/sjq.rs Cargo.toml

src/bin/sjq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
