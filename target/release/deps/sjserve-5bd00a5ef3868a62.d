/root/repo/target/release/deps/sjserve-5bd00a5ef3868a62.d: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

/root/repo/target/release/deps/libsjserve-5bd00a5ef3868a62.rlib: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

/root/repo/target/release/deps/libsjserve-5bd00a5ef3868a62.rmeta: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

crates/sjserve/src/lib.rs:
crates/sjserve/src/cache.rs:
crates/sjserve/src/client.rs:
crates/sjserve/src/metrics.rs:
crates/sjserve/src/protocol.rs:
crates/sjserve/src/scheduler.rs:
crates/sjserve/src/server.rs:
crates/sjserve/src/service.rs:
