/root/repo/target/release/deps/serde_json-9de49ce882b8971d.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9de49ce882b8971d.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9de49ce882b8971d.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
