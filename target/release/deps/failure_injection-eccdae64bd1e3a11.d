/root/repo/target/release/deps/failure_injection-eccdae64bd1e3a11.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/release/deps/libfailure_injection-eccdae64bd1e3a11.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
