/root/repo/target/release/deps/fig3_series-eeb84f504a6c30ce.d: tests/fig3_series.rs Cargo.toml

/root/repo/target/release/deps/libfig3_series-eeb84f504a6c30ce.rmeta: tests/fig3_series.rs Cargo.toml

tests/fig3_series.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
