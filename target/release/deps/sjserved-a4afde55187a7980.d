/root/repo/target/release/deps/sjserved-a4afde55187a7980.d: src/bin/sjserved.rs Cargo.toml

/root/repo/target/release/deps/libsjserved-a4afde55187a7980.rmeta: src/bin/sjserved.rs Cargo.toml

src/bin/sjserved.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
