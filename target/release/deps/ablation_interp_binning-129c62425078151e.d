/root/repo/target/release/deps/ablation_interp_binning-129c62425078151e.d: crates/bench/benches/ablation_interp_binning.rs Cargo.toml

/root/repo/target/release/deps/libablation_interp_binning-129c62425078151e.rmeta: crates/bench/benches/ablation_interp_binning.rs Cargo.toml

crates/bench/benches/ablation_interp_binning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
