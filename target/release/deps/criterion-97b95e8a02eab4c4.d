/root/repo/target/release/deps/criterion-97b95e8a02eab4c4.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-97b95e8a02eab4c4.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
