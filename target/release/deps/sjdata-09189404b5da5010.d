/root/repo/target/release/deps/sjdata-09189404b5da5010.d: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

/root/repo/target/release/deps/sjdata-09189404b5da5010: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

crates/sjdata/src/lib.rs:
crates/sjdata/src/dat.rs:
crates/sjdata/src/facility.rs:
crates/sjdata/src/jobs.rs:
crates/sjdata/src/layout.rs:
crates/sjdata/src/sources.rs:
crates/sjdata/src/synth.rs:
crates/sjdata/src/workloads.rs:
