/root/repo/target/release/deps/sjq-cf05669a0f85d5d2.d: src/bin/sjq.rs

/root/repo/target/release/deps/sjq-cf05669a0f85d5d2: src/bin/sjq.rs

src/bin/sjq.rs:
