/root/repo/target/release/deps/rand-a3a6bc182c7f893a.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-a3a6bc182c7f893a.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
