/root/repo/target/release/deps/cache_concurrency-e1caf1d485ba5c7c.d: crates/sjcore/tests/cache_concurrency.rs

/root/repo/target/release/deps/cache_concurrency-e1caf1d485ba5c7c: crates/sjcore/tests/cache_concurrency.rs

crates/sjcore/tests/cache_concurrency.rs:
