/root/repo/target/release/deps/fig3_series-f0637a74e827a89b.d: tests/fig3_series.rs

/root/repo/target/release/deps/fig3_series-f0637a74e827a89b: tests/fig3_series.rs

tests/fig3_series.rs:
