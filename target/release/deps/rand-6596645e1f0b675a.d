/root/repo/target/release/deps/rand-6596645e1f0b675a.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-6596645e1f0b675a.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
