/root/repo/target/release/deps/sjdata-62f2fe9584b70c9d.d: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

/root/repo/target/release/deps/libsjdata-62f2fe9584b70c9d.rlib: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

/root/repo/target/release/deps/libsjdata-62f2fe9584b70c9d.rmeta: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

crates/sjdata/src/lib.rs:
crates/sjdata/src/dat.rs:
crates/sjdata/src/facility.rs:
crates/sjdata/src/jobs.rs:
crates/sjdata/src/layout.rs:
crates/sjdata/src/sources.rs:
crates/sjdata/src/synth.rs:
crates/sjdata/src/workloads.rs:
