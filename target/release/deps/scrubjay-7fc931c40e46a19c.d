/root/repo/target/release/deps/scrubjay-7fc931c40e46a19c.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/scrubjay-7fc931c40e46a19c: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
