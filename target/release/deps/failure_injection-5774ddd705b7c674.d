/root/repo/target/release/deps/failure_injection-5774ddd705b7c674.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-5774ddd705b7c674: tests/failure_injection.rs

tests/failure_injection.rs:
