/root/repo/target/release/deps/scrubjay_bench-71cd35d5ddebee68.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscrubjay_bench-71cd35d5ddebee68.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
