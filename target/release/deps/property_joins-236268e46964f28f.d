/root/repo/target/release/deps/property_joins-236268e46964f28f.d: tests/property_joins.rs Cargo.toml

/root/repo/target/release/deps/libproperty_joins-236268e46964f28f.rmeta: tests/property_joins.rs Cargo.toml

tests/property_joins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
