/root/repo/target/release/deps/caching_and_config-f6827b745379c4f2.d: tests/caching_and_config.rs

/root/repo/target/release/deps/caching_and_config-f6827b745379c4f2: tests/caching_and_config.rs

tests/caching_and_config.rs:
