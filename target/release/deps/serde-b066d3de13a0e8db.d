/root/repo/target/release/deps/serde-b066d3de13a0e8db.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/serde-b066d3de13a0e8db: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
