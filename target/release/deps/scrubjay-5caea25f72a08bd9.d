/root/repo/target/release/deps/scrubjay-5caea25f72a08bd9.d: src/lib.rs src/catalog_io.rs src/textplot.rs Cargo.toml

/root/repo/target/release/deps/libscrubjay-5caea25f72a08bd9.rmeta: src/lib.rs src/catalog_io.rs src/textplot.rs Cargo.toml

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
