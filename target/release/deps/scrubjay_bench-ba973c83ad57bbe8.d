/root/repo/target/release/deps/scrubjay_bench-ba973c83ad57bbe8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscrubjay_bench-ba973c83ad57bbe8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscrubjay_bench-ba973c83ad57bbe8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
