/root/repo/target/release/deps/sjq-d375026d060b8d21.d: src/bin/sjq.rs

/root/repo/target/release/deps/sjq-d375026d060b8d21: src/bin/sjq.rs

src/bin/sjq.rs:
