/root/repo/target/release/deps/scrubjay_bench-bf3c181913a5abb2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscrubjay_bench-bf3c181913a5abb2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
