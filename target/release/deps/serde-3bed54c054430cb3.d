/root/repo/target/release/deps/serde-3bed54c054430cb3.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-3bed54c054430cb3.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
