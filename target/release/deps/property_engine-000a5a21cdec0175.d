/root/repo/target/release/deps/property_engine-000a5a21cdec0175.d: tests/property_engine.rs

/root/repo/target/release/deps/property_engine-000a5a21cdec0175: tests/property_engine.rs

tests/property_engine.rs:
