/root/repo/target/release/deps/sjserved-29c53d578a636caa.d: src/bin/sjserved.rs Cargo.toml

/root/repo/target/release/deps/libsjserved-29c53d578a636caa.rmeta: src/bin/sjserved.rs Cargo.toml

src/bin/sjserved.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
