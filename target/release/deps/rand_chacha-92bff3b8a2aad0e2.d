/root/repo/target/release/deps/rand_chacha-92bff3b8a2aad0e2.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-92bff3b8a2aad0e2.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
