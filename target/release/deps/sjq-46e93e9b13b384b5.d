/root/repo/target/release/deps/sjq-46e93e9b13b384b5.d: src/bin/sjq.rs

/root/repo/target/release/deps/sjq-46e93e9b13b384b5: src/bin/sjq.rs

src/bin/sjq.rs:
