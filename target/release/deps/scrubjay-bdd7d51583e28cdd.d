/root/repo/target/release/deps/scrubjay-bdd7d51583e28cdd.d: src/lib.rs src/catalog_io.rs src/textplot.rs Cargo.toml

/root/repo/target/release/deps/libscrubjay-bdd7d51583e28cdd.rmeta: src/lib.rs src/catalog_io.rs src/textplot.rs Cargo.toml

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
