/root/repo/target/release/deps/crossbeam-d78fd760f6823e92.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-d78fd760f6823e92.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
