/root/repo/target/release/deps/serde_json-3ef689e9dfa13f8b.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-3ef689e9dfa13f8b.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
