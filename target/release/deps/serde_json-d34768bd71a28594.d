/root/repo/target/release/deps/serde_json-d34768bd71a28594.d: vendor/serde_json/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_json-d34768bd71a28594.rmeta: vendor/serde_json/src/lib.rs Cargo.toml

vendor/serde_json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
