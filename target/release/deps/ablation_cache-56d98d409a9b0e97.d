/root/repo/target/release/deps/ablation_cache-56d98d409a9b0e97.d: crates/bench/benches/ablation_cache.rs Cargo.toml

/root/repo/target/release/deps/libablation_cache-56d98d409a9b0e97.rmeta: crates/bench/benches/ablation_cache.rs Cargo.toml

crates/bench/benches/ablation_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
