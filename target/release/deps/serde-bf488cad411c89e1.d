/root/repo/target/release/deps/serde-bf488cad411c89e1.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-bf488cad411c89e1.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-bf488cad411c89e1.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
