/root/repo/target/release/deps/fig3_series-f8fe93e844e3f4fd.d: tests/fig3_series.rs

/root/repo/target/release/deps/fig3_series-f8fe93e844e3f4fd: tests/fig3_series.rs

tests/fig3_series.rs:
