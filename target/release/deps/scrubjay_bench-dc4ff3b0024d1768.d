/root/repo/target/release/deps/scrubjay_bench-dc4ff3b0024d1768.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/scrubjay_bench-dc4ff3b0024d1768: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
