/root/repo/target/release/deps/case_study_dat1-27e6859786a441cd.d: tests/case_study_dat1.rs Cargo.toml

/root/repo/target/release/deps/libcase_study_dat1-27e6859786a441cd.rmeta: tests/case_study_dat1.rs Cargo.toml

tests/case_study_dat1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
