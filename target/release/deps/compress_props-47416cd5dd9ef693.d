/root/repo/target/release/deps/compress_props-47416cd5dd9ef693.d: crates/sjcore/tests/compress_props.rs

/root/repo/target/release/deps/compress_props-47416cd5dd9ef693: crates/sjcore/tests/compress_props.rs

crates/sjcore/tests/compress_props.rs:
