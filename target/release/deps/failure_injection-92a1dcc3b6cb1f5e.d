/root/repo/target/release/deps/failure_injection-92a1dcc3b6cb1f5e.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-92a1dcc3b6cb1f5e: tests/failure_injection.rs

tests/failure_injection.rs:
