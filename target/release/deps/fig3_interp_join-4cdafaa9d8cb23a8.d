/root/repo/target/release/deps/fig3_interp_join-4cdafaa9d8cb23a8.d: crates/bench/benches/fig3_interp_join.rs Cargo.toml

/root/repo/target/release/deps/libfig3_interp_join-4cdafaa9d8cb23a8.rmeta: crates/bench/benches/fig3_interp_join.rs Cargo.toml

crates/bench/benches/fig3_interp_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
