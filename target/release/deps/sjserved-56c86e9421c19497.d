/root/repo/target/release/deps/sjserved-56c86e9421c19497.d: src/bin/sjserved.rs

/root/repo/target/release/deps/sjserved-56c86e9421c19497: src/bin/sjserved.rs

src/bin/sjserved.rs:
