/root/repo/target/release/deps/serde_derive-4e8927eabfe58048.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-4e8927eabfe58048.rmeta: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
