/root/repo/target/release/deps/fig3_strong_scaling-9a85f976e87aa47f.d: crates/bench/benches/fig3_strong_scaling.rs Cargo.toml

/root/repo/target/release/deps/libfig3_strong_scaling-9a85f976e87aa47f.rmeta: crates/bench/benches/fig3_strong_scaling.rs Cargo.toml

crates/bench/benches/fig3_strong_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
