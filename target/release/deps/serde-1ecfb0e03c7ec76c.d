/root/repo/target/release/deps/serde-1ecfb0e03c7ec76c.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-1ecfb0e03c7ec76c.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
