/root/repo/target/release/deps/engine_robustness-2a417fa04622acad.d: tests/engine_robustness.rs

/root/repo/target/release/deps/engine_robustness-2a417fa04622acad: tests/engine_robustness.rs

tests/engine_robustness.rs:
