/root/repo/target/release/deps/caching_and_config-ce22f30793b10505.d: tests/caching_and_config.rs

/root/repo/target/release/deps/caching_and_config-ce22f30793b10505: tests/caching_and_config.rs

tests/caching_and_config.rs:
