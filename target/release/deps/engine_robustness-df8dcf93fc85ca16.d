/root/repo/target/release/deps/engine_robustness-df8dcf93fc85ca16.d: tests/engine_robustness.rs Cargo.toml

/root/repo/target/release/deps/libengine_robustness-df8dcf93fc85ca16.rmeta: tests/engine_robustness.rs Cargo.toml

tests/engine_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
