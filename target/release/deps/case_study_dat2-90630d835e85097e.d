/root/repo/target/release/deps/case_study_dat2-90630d835e85097e.d: tests/case_study_dat2.rs Cargo.toml

/root/repo/target/release/deps/libcase_study_dat2-90630d835e85097e.rmeta: tests/case_study_dat2.rs Cargo.toml

tests/case_study_dat2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
