/root/repo/target/release/deps/fig3_natural_join-8c3823e32aea2261.d: crates/bench/benches/fig3_natural_join.rs Cargo.toml

/root/repo/target/release/deps/libfig3_natural_join-8c3823e32aea2261.rmeta: crates/bench/benches/fig3_natural_join.rs Cargo.toml

crates/bench/benches/fig3_natural_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
