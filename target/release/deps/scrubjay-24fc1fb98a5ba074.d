/root/repo/target/release/deps/scrubjay-24fc1fb98a5ba074.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/scrubjay-24fc1fb98a5ba074: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
