/root/repo/target/release/deps/case_study_dat1-5d630757c5609dec.d: tests/case_study_dat1.rs

/root/repo/target/release/deps/case_study_dat1-5d630757c5609dec: tests/case_study_dat1.rs

tests/case_study_dat1.rs:
