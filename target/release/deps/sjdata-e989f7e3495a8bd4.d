/root/repo/target/release/deps/sjdata-e989f7e3495a8bd4.d: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs Cargo.toml

/root/repo/target/release/deps/libsjdata-e989f7e3495a8bd4.rmeta: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs Cargo.toml

crates/sjdata/src/lib.rs:
crates/sjdata/src/dat.rs:
crates/sjdata/src/facility.rs:
crates/sjdata/src/jobs.rs:
crates/sjdata/src/layout.rs:
crates/sjdata/src/sources.rs:
crates/sjdata/src/synth.rs:
crates/sjdata/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
