/root/repo/target/release/deps/engine_robustness-1f163a21a57c6587.d: tests/engine_robustness.rs

/root/repo/target/release/deps/engine_robustness-1f163a21a57c6587: tests/engine_robustness.rs

tests/engine_robustness.rs:
