/root/repo/target/release/deps/caching_and_config-2e9656a3b1b05361.d: tests/caching_and_config.rs Cargo.toml

/root/repo/target/release/deps/libcaching_and_config-2e9656a3b1b05361.rmeta: tests/caching_and_config.rs Cargo.toml

tests/caching_and_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
