/root/repo/target/release/deps/sjdf-d4fb041595f9b71d.d: crates/sjdf/src/lib.rs crates/sjdf/src/bytesize.rs crates/sjdf/src/cluster.rs crates/sjdf/src/error.rs crates/sjdf/src/exec.rs crates/sjdf/src/metrics.rs crates/sjdf/src/ops/mod.rs crates/sjdf/src/ops/extra.rs crates/sjdf/src/ops/join.rs crates/sjdf/src/ops/shuffle.rs crates/sjdf/src/ops/sort.rs crates/sjdf/src/rdd.rs crates/sjdf/src/simtime.rs Cargo.toml

/root/repo/target/release/deps/libsjdf-d4fb041595f9b71d.rmeta: crates/sjdf/src/lib.rs crates/sjdf/src/bytesize.rs crates/sjdf/src/cluster.rs crates/sjdf/src/error.rs crates/sjdf/src/exec.rs crates/sjdf/src/metrics.rs crates/sjdf/src/ops/mod.rs crates/sjdf/src/ops/extra.rs crates/sjdf/src/ops/join.rs crates/sjdf/src/ops/shuffle.rs crates/sjdf/src/ops/sort.rs crates/sjdf/src/rdd.rs crates/sjdf/src/simtime.rs Cargo.toml

crates/sjdf/src/lib.rs:
crates/sjdf/src/bytesize.rs:
crates/sjdf/src/cluster.rs:
crates/sjdf/src/error.rs:
crates/sjdf/src/exec.rs:
crates/sjdf/src/metrics.rs:
crates/sjdf/src/ops/mod.rs:
crates/sjdf/src/ops/extra.rs:
crates/sjdf/src/ops/join.rs:
crates/sjdf/src/ops/shuffle.rs:
crates/sjdf/src/ops/sort.rs:
crates/sjdf/src/rdd.rs:
crates/sjdf/src/simtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
