/root/repo/target/release/deps/case_study_dat2-d09c2253f2f08405.d: tests/case_study_dat2.rs

/root/repo/target/release/deps/case_study_dat2-d09c2253f2f08405: tests/case_study_dat2.rs

tests/case_study_dat2.rs:
