/root/repo/target/release/deps/sjserve-7c1b8d75cacf2f8b.d: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs Cargo.toml

/root/repo/target/release/deps/libsjserve-7c1b8d75cacf2f8b.rmeta: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs Cargo.toml

crates/sjserve/src/lib.rs:
crates/sjserve/src/cache.rs:
crates/sjserve/src/client.rs:
crates/sjserve/src/metrics.rs:
crates/sjserve/src/protocol.rs:
crates/sjserve/src/scheduler.rs:
crates/sjserve/src/server.rs:
crates/sjserve/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
