/root/repo/target/release/deps/op_laws-bbfd8daf2e1578ac.d: crates/sjdf/tests/op_laws.rs Cargo.toml

/root/repo/target/release/deps/libop_laws-bbfd8daf2e1578ac.rmeta: crates/sjdf/tests/op_laws.rs Cargo.toml

crates/sjdf/tests/op_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
