/root/repo/target/release/deps/rand_chacha-d86702622b352e90.d: vendor/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-d86702622b352e90.rmeta: vendor/rand_chacha/src/lib.rs Cargo.toml

vendor/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
