/root/repo/target/release/deps/ablation_interp_window-ef299a64dc254582.d: crates/bench/benches/ablation_interp_window.rs Cargo.toml

/root/repo/target/release/deps/libablation_interp_window-ef299a64dc254582.rmeta: crates/bench/benches/ablation_interp_window.rs Cargo.toml

crates/bench/benches/ablation_interp_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
