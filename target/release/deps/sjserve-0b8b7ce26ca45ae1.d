/root/repo/target/release/deps/sjserve-0b8b7ce26ca45ae1.d: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

/root/repo/target/release/deps/sjserve-0b8b7ce26ca45ae1: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

crates/sjserve/src/lib.rs:
crates/sjserve/src/cache.rs:
crates/sjserve/src/client.rs:
crates/sjserve/src/metrics.rs:
crates/sjserve/src/protocol.rs:
crates/sjserve/src/scheduler.rs:
crates/sjserve/src/server.rs:
crates/sjserve/src/service.rs:
