/root/repo/target/release/deps/parking_lot-6541a588dda2eec1.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-6541a588dda2eec1.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
