/root/repo/target/release/deps/compress_props-41255f40b78bf9c7.d: crates/sjcore/tests/compress_props.rs Cargo.toml

/root/repo/target/release/deps/libcompress_props-41255f40b78bf9c7.rmeta: crates/sjcore/tests/compress_props.rs Cargo.toml

crates/sjcore/tests/compress_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
