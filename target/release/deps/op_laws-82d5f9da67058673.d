/root/repo/target/release/deps/op_laws-82d5f9da67058673.d: crates/sjdf/tests/op_laws.rs

/root/repo/target/release/deps/op_laws-82d5f9da67058673: crates/sjdf/tests/op_laws.rs

crates/sjdf/tests/op_laws.rs:
