/root/repo/target/release/deps/serde_derive-bb039224496dca87.d: vendor/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-bb039224496dca87.so: vendor/serde_derive/src/lib.rs Cargo.toml

vendor/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
