/root/repo/target/release/deps/criterion-f9c5b654bf5f8e05.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-f9c5b654bf5f8e05.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
