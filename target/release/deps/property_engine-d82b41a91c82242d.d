/root/repo/target/release/deps/property_engine-d82b41a91c82242d.d: tests/property_engine.rs Cargo.toml

/root/repo/target/release/deps/libproperty_engine-d82b41a91c82242d.rmeta: tests/property_engine.rs Cargo.toml

tests/property_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
