/root/repo/target/release/deps/query_latency-53c2cbf59ac73e3f.d: crates/bench/benches/query_latency.rs Cargo.toml

/root/repo/target/release/deps/libquery_latency-53c2cbf59ac73e3f.rmeta: crates/bench/benches/query_latency.rs Cargo.toml

crates/bench/benches/query_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
