/root/repo/target/release/deps/parking_lot-4adae1935370a1e1.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-4adae1935370a1e1.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
