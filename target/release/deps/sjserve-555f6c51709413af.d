/root/repo/target/release/deps/sjserve-555f6c51709413af.d: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs Cargo.toml

/root/repo/target/release/deps/libsjserve-555f6c51709413af.rmeta: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs Cargo.toml

crates/sjserve/src/lib.rs:
crates/sjserve/src/cache.rs:
crates/sjserve/src/client.rs:
crates/sjserve/src/metrics.rs:
crates/sjserve/src/protocol.rs:
crates/sjserve/src/scheduler.rs:
crates/sjserve/src/server.rs:
crates/sjserve/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
