/root/repo/target/release/deps/property_engine-995028bca031aace.d: tests/property_engine.rs

/root/repo/target/release/deps/property_engine-995028bca031aace: tests/property_engine.rs

tests/property_engine.rs:
