/root/repo/target/release/deps/proptest-660fec3b947181e7.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-660fec3b947181e7.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-660fec3b947181e7.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
