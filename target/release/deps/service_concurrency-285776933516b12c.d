/root/repo/target/release/deps/service_concurrency-285776933516b12c.d: tests/service_concurrency.rs Cargo.toml

/root/repo/target/release/deps/libservice_concurrency-285776933516b12c.rmeta: tests/service_concurrency.rs Cargo.toml

tests/service_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
