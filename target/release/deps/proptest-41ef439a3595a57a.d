/root/repo/target/release/deps/proptest-41ef439a3595a57a.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-41ef439a3595a57a.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
