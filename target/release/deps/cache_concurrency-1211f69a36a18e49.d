/root/repo/target/release/deps/cache_concurrency-1211f69a36a18e49.d: crates/sjcore/tests/cache_concurrency.rs Cargo.toml

/root/repo/target/release/deps/libcache_concurrency-1211f69a36a18e49.rmeta: crates/sjcore/tests/cache_concurrency.rs Cargo.toml

crates/sjcore/tests/cache_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
