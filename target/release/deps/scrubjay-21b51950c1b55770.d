/root/repo/target/release/deps/scrubjay-21b51950c1b55770.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/libscrubjay-21b51950c1b55770.rlib: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/release/deps/libscrubjay-21b51950c1b55770.rmeta: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
