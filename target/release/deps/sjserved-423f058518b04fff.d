/root/repo/target/release/deps/sjserved-423f058518b04fff.d: src/bin/sjserved.rs

/root/repo/target/release/deps/sjserved-423f058518b04fff: src/bin/sjserved.rs

src/bin/sjserved.rs:
