/root/repo/target/release/deps/case_study_dat2-800c960ee43a72f0.d: tests/case_study_dat2.rs

/root/repo/target/release/deps/case_study_dat2-800c960ee43a72f0: tests/case_study_dat2.rs

tests/case_study_dat2.rs:
