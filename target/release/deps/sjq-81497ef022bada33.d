/root/repo/target/release/deps/sjq-81497ef022bada33.d: src/bin/sjq.rs Cargo.toml

/root/repo/target/release/deps/libsjq-81497ef022bada33.rmeta: src/bin/sjq.rs Cargo.toml

src/bin/sjq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
