/root/repo/target/release/deps/sjq-a01450d3f567261e.d: src/bin/sjq.rs

/root/repo/target/release/deps/sjq-a01450d3f567261e: src/bin/sjq.rs

src/bin/sjq.rs:
