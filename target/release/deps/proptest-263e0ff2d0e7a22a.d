/root/repo/target/release/deps/proptest-263e0ff2d0e7a22a.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-263e0ff2d0e7a22a: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
