/root/repo/target/release/deps/rand_chacha-cbdf4946ada78e27.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-cbdf4946ada78e27.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-cbdf4946ada78e27.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
