/root/repo/target/release/deps/property_joins-428924111ebc44ea.d: tests/property_joins.rs

/root/repo/target/release/deps/property_joins-428924111ebc44ea: tests/property_joins.rs

tests/property_joins.rs:
