/root/repo/target/release/deps/crossbeam-4018f82bfa20f388.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-4018f82bfa20f388.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
