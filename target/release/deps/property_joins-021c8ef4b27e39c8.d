/root/repo/target/release/deps/property_joins-021c8ef4b27e39c8.d: tests/property_joins.rs

/root/repo/target/release/deps/property_joins-021c8ef4b27e39c8: tests/property_joins.rs

tests/property_joins.rs:
