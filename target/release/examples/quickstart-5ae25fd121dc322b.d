/root/repo/target/release/examples/quickstart-5ae25fd121dc322b.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-5ae25fd121dc322b.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
