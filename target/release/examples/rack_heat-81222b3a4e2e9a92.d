/root/repo/target/release/examples/rack_heat-81222b3a4e2e9a92.d: examples/rack_heat.rs

/root/repo/target/release/examples/rack_heat-81222b3a4e2e9a92: examples/rack_heat.rs

examples/rack_heat.rs:
