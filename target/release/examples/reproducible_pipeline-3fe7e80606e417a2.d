/root/repo/target/release/examples/reproducible_pipeline-3fe7e80606e417a2.d: examples/reproducible_pipeline.rs

/root/repo/target/release/examples/reproducible_pipeline-3fe7e80606e417a2: examples/reproducible_pipeline.rs

examples/reproducible_pipeline.rs:
