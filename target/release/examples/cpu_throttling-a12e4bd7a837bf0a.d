/root/repo/target/release/examples/cpu_throttling-a12e4bd7a837bf0a.d: examples/cpu_throttling.rs Cargo.toml

/root/repo/target/release/examples/libcpu_throttling-a12e4bd7a837bf0a.rmeta: examples/cpu_throttling.rs Cargo.toml

examples/cpu_throttling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
