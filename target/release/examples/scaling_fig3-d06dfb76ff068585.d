/root/repo/target/release/examples/scaling_fig3-d06dfb76ff068585.d: examples/scaling_fig3.rs

/root/repo/target/release/examples/scaling_fig3-d06dfb76ff068585: examples/scaling_fig3.rs

examples/scaling_fig3.rs:
