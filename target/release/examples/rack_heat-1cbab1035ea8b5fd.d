/root/repo/target/release/examples/rack_heat-1cbab1035ea8b5fd.d: examples/rack_heat.rs Cargo.toml

/root/repo/target/release/examples/librack_heat-1cbab1035ea8b5fd.rmeta: examples/rack_heat.rs Cargo.toml

examples/rack_heat.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
