/root/repo/target/release/examples/export_catalog-858a852052ef431c.d: examples/export_catalog.rs

/root/repo/target/release/examples/export_catalog-858a852052ef431c: examples/export_catalog.rs

examples/export_catalog.rs:
