/root/repo/target/release/examples/cpu_throttling-b03a20b2fc6ed2b3.d: examples/cpu_throttling.rs

/root/repo/target/release/examples/cpu_throttling-b03a20b2fc6ed2b3: examples/cpu_throttling.rs

examples/cpu_throttling.rs:
