/root/repo/target/release/examples/power_jobs-09eb15117ab555a8.d: examples/power_jobs.rs

/root/repo/target/release/examples/power_jobs-09eb15117ab555a8: examples/power_jobs.rs

examples/power_jobs.rs:
