/root/repo/target/release/examples/reproducible_pipeline-1662cc27af6dd95c.d: examples/reproducible_pipeline.rs

/root/repo/target/release/examples/reproducible_pipeline-1662cc27af6dd95c: examples/reproducible_pipeline.rs

examples/reproducible_pipeline.rs:
