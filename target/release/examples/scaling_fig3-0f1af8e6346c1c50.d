/root/repo/target/release/examples/scaling_fig3-0f1af8e6346c1c50.d: examples/scaling_fig3.rs

/root/repo/target/release/examples/scaling_fig3-0f1af8e6346c1c50: examples/scaling_fig3.rs

examples/scaling_fig3.rs:
