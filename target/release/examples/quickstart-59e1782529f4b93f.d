/root/repo/target/release/examples/quickstart-59e1782529f4b93f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-59e1782529f4b93f: examples/quickstart.rs

examples/quickstart.rs:
