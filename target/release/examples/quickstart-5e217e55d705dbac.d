/root/repo/target/release/examples/quickstart-5e217e55d705dbac.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5e217e55d705dbac: examples/quickstart.rs

examples/quickstart.rs:
