/root/repo/target/release/examples/scaling_fig3-9f83b436fd4b092d.d: examples/scaling_fig3.rs Cargo.toml

/root/repo/target/release/examples/libscaling_fig3-9f83b436fd4b092d.rmeta: examples/scaling_fig3.rs Cargo.toml

examples/scaling_fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
