/root/repo/target/release/examples/export_catalog-3d5966d07aff2a34.d: examples/export_catalog.rs Cargo.toml

/root/repo/target/release/examples/libexport_catalog-3d5966d07aff2a34.rmeta: examples/export_catalog.rs Cargo.toml

examples/export_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
