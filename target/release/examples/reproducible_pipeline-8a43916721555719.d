/root/repo/target/release/examples/reproducible_pipeline-8a43916721555719.d: examples/reproducible_pipeline.rs Cargo.toml

/root/repo/target/release/examples/libreproducible_pipeline-8a43916721555719.rmeta: examples/reproducible_pipeline.rs Cargo.toml

examples/reproducible_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
