/root/repo/target/release/examples/rack_heat-79f63c11342ae428.d: examples/rack_heat.rs

/root/repo/target/release/examples/rack_heat-79f63c11342ae428: examples/rack_heat.rs

examples/rack_heat.rs:
