/root/repo/target/release/examples/power_jobs-ed98db9f92298fff.d: examples/power_jobs.rs

/root/repo/target/release/examples/power_jobs-ed98db9f92298fff: examples/power_jobs.rs

examples/power_jobs.rs:
