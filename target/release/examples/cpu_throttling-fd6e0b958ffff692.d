/root/repo/target/release/examples/cpu_throttling-fd6e0b958ffff692.d: examples/cpu_throttling.rs

/root/repo/target/release/examples/cpu_throttling-fd6e0b958ffff692: examples/cpu_throttling.rs

examples/cpu_throttling.rs:
