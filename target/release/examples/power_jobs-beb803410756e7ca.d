/root/repo/target/release/examples/power_jobs-beb803410756e7ca.d: examples/power_jobs.rs Cargo.toml

/root/repo/target/release/examples/libpower_jobs-beb803410756e7ca.rmeta: examples/power_jobs.rs Cargo.toml

examples/power_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
