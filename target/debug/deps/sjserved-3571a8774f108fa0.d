/root/repo/target/debug/deps/sjserved-3571a8774f108fa0.d: src/bin/sjserved.rs

/root/repo/target/debug/deps/sjserved-3571a8774f108fa0: src/bin/sjserved.rs

src/bin/sjserved.rs:
