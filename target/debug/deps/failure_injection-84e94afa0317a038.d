/root/repo/target/debug/deps/failure_injection-84e94afa0317a038.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-84e94afa0317a038: tests/failure_injection.rs

tests/failure_injection.rs:
