/root/repo/target/debug/deps/property_joins-bbf0e735cc7dd244.d: tests/property_joins.rs

/root/repo/target/debug/deps/property_joins-bbf0e735cc7dd244: tests/property_joins.rs

tests/property_joins.rs:
