/root/repo/target/debug/deps/serde_json-489b3b0de51983ad.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-489b3b0de51983ad.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-489b3b0de51983ad.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
