/root/repo/target/debug/deps/sjserved-46dc118cb5ded76b.d: src/bin/sjserved.rs

/root/repo/target/debug/deps/sjserved-46dc118cb5ded76b: src/bin/sjserved.rs

src/bin/sjserved.rs:
