/root/repo/target/debug/deps/scrubjay-d6d42b85962b77c9.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/debug/deps/scrubjay-d6d42b85962b77c9: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
