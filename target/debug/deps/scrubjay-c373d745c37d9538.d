/root/repo/target/debug/deps/scrubjay-c373d745c37d9538.d: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/debug/deps/libscrubjay-c373d745c37d9538.rlib: src/lib.rs src/catalog_io.rs src/textplot.rs

/root/repo/target/debug/deps/libscrubjay-c373d745c37d9538.rmeta: src/lib.rs src/catalog_io.rs src/textplot.rs

src/lib.rs:
src/catalog_io.rs:
src/textplot.rs:
