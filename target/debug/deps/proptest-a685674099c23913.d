/root/repo/target/debug/deps/proptest-a685674099c23913.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a685674099c23913.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a685674099c23913.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
