/root/repo/target/debug/deps/fig3_series-dbe6701a10bc84ae.d: tests/fig3_series.rs

/root/repo/target/debug/deps/fig3_series-dbe6701a10bc84ae: tests/fig3_series.rs

tests/fig3_series.rs:
