/root/repo/target/debug/deps/caching_and_config-bc32cb58e617126d.d: tests/caching_and_config.rs

/root/repo/target/debug/deps/caching_and_config-bc32cb58e617126d: tests/caching_and_config.rs

tests/caching_and_config.rs:
