/root/repo/target/debug/deps/rand_chacha-f25cb89db5614bca.d: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f25cb89db5614bca.rlib: vendor/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-f25cb89db5614bca.rmeta: vendor/rand_chacha/src/lib.rs

vendor/rand_chacha/src/lib.rs:
