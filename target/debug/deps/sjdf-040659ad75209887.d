/root/repo/target/debug/deps/sjdf-040659ad75209887.d: crates/sjdf/src/lib.rs crates/sjdf/src/bytesize.rs crates/sjdf/src/cluster.rs crates/sjdf/src/error.rs crates/sjdf/src/exec.rs crates/sjdf/src/metrics.rs crates/sjdf/src/ops/mod.rs crates/sjdf/src/ops/extra.rs crates/sjdf/src/ops/join.rs crates/sjdf/src/ops/shuffle.rs crates/sjdf/src/ops/sort.rs crates/sjdf/src/rdd.rs crates/sjdf/src/simtime.rs

/root/repo/target/debug/deps/libsjdf-040659ad75209887.rlib: crates/sjdf/src/lib.rs crates/sjdf/src/bytesize.rs crates/sjdf/src/cluster.rs crates/sjdf/src/error.rs crates/sjdf/src/exec.rs crates/sjdf/src/metrics.rs crates/sjdf/src/ops/mod.rs crates/sjdf/src/ops/extra.rs crates/sjdf/src/ops/join.rs crates/sjdf/src/ops/shuffle.rs crates/sjdf/src/ops/sort.rs crates/sjdf/src/rdd.rs crates/sjdf/src/simtime.rs

/root/repo/target/debug/deps/libsjdf-040659ad75209887.rmeta: crates/sjdf/src/lib.rs crates/sjdf/src/bytesize.rs crates/sjdf/src/cluster.rs crates/sjdf/src/error.rs crates/sjdf/src/exec.rs crates/sjdf/src/metrics.rs crates/sjdf/src/ops/mod.rs crates/sjdf/src/ops/extra.rs crates/sjdf/src/ops/join.rs crates/sjdf/src/ops/shuffle.rs crates/sjdf/src/ops/sort.rs crates/sjdf/src/rdd.rs crates/sjdf/src/simtime.rs

crates/sjdf/src/lib.rs:
crates/sjdf/src/bytesize.rs:
crates/sjdf/src/cluster.rs:
crates/sjdf/src/error.rs:
crates/sjdf/src/exec.rs:
crates/sjdf/src/metrics.rs:
crates/sjdf/src/ops/mod.rs:
crates/sjdf/src/ops/extra.rs:
crates/sjdf/src/ops/join.rs:
crates/sjdf/src/ops/shuffle.rs:
crates/sjdf/src/ops/sort.rs:
crates/sjdf/src/rdd.rs:
crates/sjdf/src/simtime.rs:
