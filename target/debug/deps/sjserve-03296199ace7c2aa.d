/root/repo/target/debug/deps/sjserve-03296199ace7c2aa.d: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

/root/repo/target/debug/deps/libsjserve-03296199ace7c2aa.rlib: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

/root/repo/target/debug/deps/libsjserve-03296199ace7c2aa.rmeta: crates/sjserve/src/lib.rs crates/sjserve/src/cache.rs crates/sjserve/src/client.rs crates/sjserve/src/metrics.rs crates/sjserve/src/protocol.rs crates/sjserve/src/scheduler.rs crates/sjserve/src/server.rs crates/sjserve/src/service.rs

crates/sjserve/src/lib.rs:
crates/sjserve/src/cache.rs:
crates/sjserve/src/client.rs:
crates/sjserve/src/metrics.rs:
crates/sjserve/src/protocol.rs:
crates/sjserve/src/scheduler.rs:
crates/sjserve/src/server.rs:
crates/sjserve/src/service.rs:
