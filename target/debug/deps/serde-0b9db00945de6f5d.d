/root/repo/target/debug/deps/serde-0b9db00945de6f5d.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0b9db00945de6f5d.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-0b9db00945de6f5d.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
