/root/repo/target/debug/deps/service_concurrency-2293369aed49eadb.d: tests/service_concurrency.rs

/root/repo/target/debug/deps/service_concurrency-2293369aed49eadb: tests/service_concurrency.rs

tests/service_concurrency.rs:
