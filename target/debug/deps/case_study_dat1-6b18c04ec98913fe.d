/root/repo/target/debug/deps/case_study_dat1-6b18c04ec98913fe.d: tests/case_study_dat1.rs

/root/repo/target/debug/deps/case_study_dat1-6b18c04ec98913fe: tests/case_study_dat1.rs

tests/case_study_dat1.rs:
