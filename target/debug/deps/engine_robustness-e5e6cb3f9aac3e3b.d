/root/repo/target/debug/deps/engine_robustness-e5e6cb3f9aac3e3b.d: tests/engine_robustness.rs

/root/repo/target/debug/deps/engine_robustness-e5e6cb3f9aac3e3b: tests/engine_robustness.rs

tests/engine_robustness.rs:
