/root/repo/target/debug/deps/sjq-8fadc99ee31be16e.d: src/bin/sjq.rs

/root/repo/target/debug/deps/sjq-8fadc99ee31be16e: src/bin/sjq.rs

src/bin/sjq.rs:
