/root/repo/target/debug/deps/property_engine-db12be0767903974.d: tests/property_engine.rs

/root/repo/target/debug/deps/property_engine-db12be0767903974: tests/property_engine.rs

tests/property_engine.rs:
