/root/repo/target/debug/deps/case_study_dat2-5807930265d8f543.d: tests/case_study_dat2.rs

/root/repo/target/debug/deps/case_study_dat2-5807930265d8f543: tests/case_study_dat2.rs

tests/case_study_dat2.rs:
