/root/repo/target/debug/deps/sjcore-2e009828dc93f4b8.d: crates/sjcore/src/lib.rs crates/sjcore/src/cache.rs crates/sjcore/src/catalog.rs crates/sjcore/src/compress.rs crates/sjcore/src/dataset.rs crates/sjcore/src/derivations/mod.rs crates/sjcore/src/derivations/combine/mod.rs crates/sjcore/src/derivations/combine/common.rs crates/sjcore/src/derivations/combine/interp.rs crates/sjcore/src/derivations/combine/naive.rs crates/sjcore/src/derivations/combine/natural.rs crates/sjcore/src/derivations/transform/mod.rs crates/sjcore/src/derivations/transform/convert.rs crates/sjcore/src/derivations/transform/custom.rs crates/sjcore/src/derivations/transform/explode.rs crates/sjcore/src/derivations/transform/rate.rs crates/sjcore/src/engine/mod.rs crates/sjcore/src/engine/plan.rs crates/sjcore/src/engine/search.rs crates/sjcore/src/error.rs crates/sjcore/src/interop.rs crates/sjcore/src/row.rs crates/sjcore/src/schema.rs crates/sjcore/src/semantics/mod.rs crates/sjcore/src/semantics/dictionary.rs crates/sjcore/src/semantics/dimension.rs crates/sjcore/src/units/mod.rs crates/sjcore/src/units/time.rs crates/sjcore/src/value.rs crates/sjcore/src/wrappers/mod.rs crates/sjcore/src/wrappers/csv.rs crates/sjcore/src/wrappers/kvstore.rs

/root/repo/target/debug/deps/libsjcore-2e009828dc93f4b8.rlib: crates/sjcore/src/lib.rs crates/sjcore/src/cache.rs crates/sjcore/src/catalog.rs crates/sjcore/src/compress.rs crates/sjcore/src/dataset.rs crates/sjcore/src/derivations/mod.rs crates/sjcore/src/derivations/combine/mod.rs crates/sjcore/src/derivations/combine/common.rs crates/sjcore/src/derivations/combine/interp.rs crates/sjcore/src/derivations/combine/naive.rs crates/sjcore/src/derivations/combine/natural.rs crates/sjcore/src/derivations/transform/mod.rs crates/sjcore/src/derivations/transform/convert.rs crates/sjcore/src/derivations/transform/custom.rs crates/sjcore/src/derivations/transform/explode.rs crates/sjcore/src/derivations/transform/rate.rs crates/sjcore/src/engine/mod.rs crates/sjcore/src/engine/plan.rs crates/sjcore/src/engine/search.rs crates/sjcore/src/error.rs crates/sjcore/src/interop.rs crates/sjcore/src/row.rs crates/sjcore/src/schema.rs crates/sjcore/src/semantics/mod.rs crates/sjcore/src/semantics/dictionary.rs crates/sjcore/src/semantics/dimension.rs crates/sjcore/src/units/mod.rs crates/sjcore/src/units/time.rs crates/sjcore/src/value.rs crates/sjcore/src/wrappers/mod.rs crates/sjcore/src/wrappers/csv.rs crates/sjcore/src/wrappers/kvstore.rs

/root/repo/target/debug/deps/libsjcore-2e009828dc93f4b8.rmeta: crates/sjcore/src/lib.rs crates/sjcore/src/cache.rs crates/sjcore/src/catalog.rs crates/sjcore/src/compress.rs crates/sjcore/src/dataset.rs crates/sjcore/src/derivations/mod.rs crates/sjcore/src/derivations/combine/mod.rs crates/sjcore/src/derivations/combine/common.rs crates/sjcore/src/derivations/combine/interp.rs crates/sjcore/src/derivations/combine/naive.rs crates/sjcore/src/derivations/combine/natural.rs crates/sjcore/src/derivations/transform/mod.rs crates/sjcore/src/derivations/transform/convert.rs crates/sjcore/src/derivations/transform/custom.rs crates/sjcore/src/derivations/transform/explode.rs crates/sjcore/src/derivations/transform/rate.rs crates/sjcore/src/engine/mod.rs crates/sjcore/src/engine/plan.rs crates/sjcore/src/engine/search.rs crates/sjcore/src/error.rs crates/sjcore/src/interop.rs crates/sjcore/src/row.rs crates/sjcore/src/schema.rs crates/sjcore/src/semantics/mod.rs crates/sjcore/src/semantics/dictionary.rs crates/sjcore/src/semantics/dimension.rs crates/sjcore/src/units/mod.rs crates/sjcore/src/units/time.rs crates/sjcore/src/value.rs crates/sjcore/src/wrappers/mod.rs crates/sjcore/src/wrappers/csv.rs crates/sjcore/src/wrappers/kvstore.rs

crates/sjcore/src/lib.rs:
crates/sjcore/src/cache.rs:
crates/sjcore/src/catalog.rs:
crates/sjcore/src/compress.rs:
crates/sjcore/src/dataset.rs:
crates/sjcore/src/derivations/mod.rs:
crates/sjcore/src/derivations/combine/mod.rs:
crates/sjcore/src/derivations/combine/common.rs:
crates/sjcore/src/derivations/combine/interp.rs:
crates/sjcore/src/derivations/combine/naive.rs:
crates/sjcore/src/derivations/combine/natural.rs:
crates/sjcore/src/derivations/transform/mod.rs:
crates/sjcore/src/derivations/transform/convert.rs:
crates/sjcore/src/derivations/transform/custom.rs:
crates/sjcore/src/derivations/transform/explode.rs:
crates/sjcore/src/derivations/transform/rate.rs:
crates/sjcore/src/engine/mod.rs:
crates/sjcore/src/engine/plan.rs:
crates/sjcore/src/engine/search.rs:
crates/sjcore/src/error.rs:
crates/sjcore/src/interop.rs:
crates/sjcore/src/row.rs:
crates/sjcore/src/schema.rs:
crates/sjcore/src/semantics/mod.rs:
crates/sjcore/src/semantics/dictionary.rs:
crates/sjcore/src/semantics/dimension.rs:
crates/sjcore/src/units/mod.rs:
crates/sjcore/src/units/time.rs:
crates/sjcore/src/value.rs:
crates/sjcore/src/wrappers/mod.rs:
crates/sjcore/src/wrappers/csv.rs:
crates/sjcore/src/wrappers/kvstore.rs:
