/root/repo/target/debug/deps/sjq-0be45b59d560bf3b.d: src/bin/sjq.rs

/root/repo/target/debug/deps/sjq-0be45b59d560bf3b: src/bin/sjq.rs

src/bin/sjq.rs:
