/root/repo/target/debug/deps/sjdata-3fcb93a9665cdb92.d: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

/root/repo/target/debug/deps/libsjdata-3fcb93a9665cdb92.rlib: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

/root/repo/target/debug/deps/libsjdata-3fcb93a9665cdb92.rmeta: crates/sjdata/src/lib.rs crates/sjdata/src/dat.rs crates/sjdata/src/facility.rs crates/sjdata/src/jobs.rs crates/sjdata/src/layout.rs crates/sjdata/src/sources.rs crates/sjdata/src/synth.rs crates/sjdata/src/workloads.rs

crates/sjdata/src/lib.rs:
crates/sjdata/src/dat.rs:
crates/sjdata/src/facility.rs:
crates/sjdata/src/jobs.rs:
crates/sjdata/src/layout.rs:
crates/sjdata/src/sources.rs:
crates/sjdata/src/synth.rs:
crates/sjdata/src/workloads.rs:
