/root/repo/target/debug/examples/power_jobs-be0de778b27a44d1.d: examples/power_jobs.rs

/root/repo/target/debug/examples/power_jobs-be0de778b27a44d1: examples/power_jobs.rs

examples/power_jobs.rs:
