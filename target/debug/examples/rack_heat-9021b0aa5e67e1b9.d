/root/repo/target/debug/examples/rack_heat-9021b0aa5e67e1b9.d: examples/rack_heat.rs

/root/repo/target/debug/examples/rack_heat-9021b0aa5e67e1b9: examples/rack_heat.rs

examples/rack_heat.rs:
