/root/repo/target/debug/examples/scaling_fig3-45a8bb159687e2bc.d: examples/scaling_fig3.rs

/root/repo/target/debug/examples/scaling_fig3-45a8bb159687e2bc: examples/scaling_fig3.rs

examples/scaling_fig3.rs:
