/root/repo/target/debug/examples/cpu_throttling-2685024c2fdd2e6d.d: examples/cpu_throttling.rs

/root/repo/target/debug/examples/cpu_throttling-2685024c2fdd2e6d: examples/cpu_throttling.rs

examples/cpu_throttling.rs:
