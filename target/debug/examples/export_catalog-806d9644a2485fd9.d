/root/repo/target/debug/examples/export_catalog-806d9644a2485fd9.d: examples/export_catalog.rs

/root/repo/target/debug/examples/export_catalog-806d9644a2485fd9: examples/export_catalog.rs

examples/export_catalog.rs:
