/root/repo/target/debug/examples/quickstart-e8eec522fe3d534f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e8eec522fe3d534f: examples/quickstart.rs

examples/quickstart.rs:
