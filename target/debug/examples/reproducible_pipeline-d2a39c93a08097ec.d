/root/repo/target/debug/examples/reproducible_pipeline-d2a39c93a08097ec.d: examples/reproducible_pipeline.rs

/root/repo/target/debug/examples/reproducible_pipeline-d2a39c93a08097ec: examples/reproducible_pipeline.rs

examples/reproducible_pipeline.rs:
